#!/usr/bin/env python
"""Regenerate every figure of the paper's evaluation into results/.

Usage::

    python benchmarks/run_all.py [--only fig04,fig09] [--results DIR]

Environment knobs (see repro.bench.workloads): KOR_BENCH_QUERIES sets the
queries per set (default 12; the paper uses 50), KOR_BENCH_SCALE one of
small / default / paper.

Each experiment saves <figure>.json + <figure>.txt and prints its table;
the paper-vs-measured comparison lives in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench.experiments import all_experiments


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--only",
        default="",
        help="comma-separated figure prefixes to run (e.g. fig04,fig09)",
    )
    parser.add_argument(
        "--results",
        default=None,
        help="output directory (default benchmarks/results/<scale>)",
    )
    args = parser.parse_args(argv)
    wanted = [token for token in args.only.split(",") if token]

    if args.results is not None:
        results_dir = Path(args.results)
    else:
        from repro.bench.workloads import bench_scale

        results_dir = Path(__file__).parent / "results" / bench_scale()
    results_dir.mkdir(parents=True, exist_ok=True)

    total_begin = time.perf_counter()
    for experiment in all_experiments():
        name = experiment.__name__
        if wanted and not any(name.startswith(prefix) for prefix in wanted):
            continue
        begin = time.perf_counter()
        result = experiment()
        elapsed = time.perf_counter() - begin
        result.save(results_dir)
        print(result.to_table())
        print(f"[{name}: {elapsed:.1f}s]\n")
    print(f"total: {time.perf_counter() - total_begin:.1f}s -> {results_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
