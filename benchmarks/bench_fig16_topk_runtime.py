"""Figure 16 — KkR (top-k) runtime vs k.

Expected shape: both algorithms slow down as k grows (k-domination keeps
more labels alive); BucketBound stays faster than OSScaling.
"""

import pytest

from _helpers import emit_figure
from repro.bench.experiments import TOPK_KS, fig16_topk_runtime
from repro.bench.workloads import flickr_workload


@pytest.mark.parametrize("k", TOPK_KS)
@pytest.mark.parametrize("algorithm", ("osscaling", "bucketbound"))
def test_cell(benchmark, algorithm, k):
    """One top-k run over the (6 keywords, Delta=6) query set."""
    workload = flickr_workload()
    queries = workload.query_set(6, 6.0)

    def run():
        for query in queries:
            workload.engine.top_k(
                query.source,
                query.target,
                query.keywords,
                query.budget_limit,
                k=k,
                algorithm=algorithm,
            )

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_emit_figure(benchmark):
    """Assemble and save the Figure-16 series."""
    result = emit_figure(benchmark, fig16_topk_runtime)
    assert list(result.xs) == list(TOPK_KS)
