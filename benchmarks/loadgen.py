"""Open-loop Poisson load generator for the KOR HTTP serving tier.

Replays a dataset query set against the network front door at a
configurable Poisson arrival rate and reports what the *client* saw:
p50/p95/p99 latency, achieved vs offered qps, and the SLO error budget —
to stdout plus optional JSON and markdown artifacts (the shape CI
uploads, in the spirit of experiment-report artifacts).

Open loop means arrivals are scheduled by the Poisson clock alone —
request ``i`` fires at its scheduled instant whether or not earlier
requests completed, and latency is measured **from the scheduled
arrival**, so server-side queueing shows up in the percentiles instead
of silently slowing the offered load (no coordinated omission).

Transports:

* ``--transport stdlib`` (default) boots a
  :class:`repro.server.stdlib.StdlibServer` in-process and talks real
  HTTP/1.1 over sockets;
* ``--transport asgi`` drives the :class:`repro.server.app.KORApp`
  callable directly — the serving stack without kernel networking;
* ``--url http://host:port`` skips booting anything and load-tests an
  already-running server.

Every 200 response is checked against ``kor.route_result.v1``
(:func:`repro.server.schema.validate_route_result`); schema violations
are counted separately from transport and HTTP errors, and the CI smoke
job asserts that count is zero.

Examples::

    python benchmarks/loadgen.py --rate 50 --duration 5 --slo-ms 100
    python benchmarks/loadgen.py --transport asgi --rate 200 --adaptive-target 8
    python benchmarks/loadgen.py --url http://127.0.0.1:8080 --rate 25 \
        --json load_report.json --markdown load_report.md
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.workloads import flickr_workload, road_workload, road_default_size
from repro.server.client import asgi_request, http_request
from repro.server.schema import validate_route_result
from repro.service.stats import percentile

__all__ = ["run_load", "build_report", "render_markdown", "main"]


def _query_payload(query, algorithm: str) -> dict:
    return {
        "source": query.source,
        "target": query.target,
        "keywords": list(query.keywords),
        "budget_limit": query.budget_limit,
        "algorithm": algorithm,
    }


#: First-retry backoff; doubles per attempt, plus up to 100% jitter.
_RETRY_BASE_SECONDS = 0.05


async def _fire(
    send,
    payload: dict,
    at: float,
    outcome: dict,
    timeout: float,
    retries: int = 0,
    rng: random.Random | None = None,
) -> None:
    """One scheduled arrival: wait for its instant, send, classify.

    Only *transport-level* failures (connection refused/reset — the
    bare ``Exception`` arm) are retried, up to ``retries`` times with
    jittered exponential backoff.  Request timeouts and HTTP status
    errors are **never** retried: a 503 shed or a 4xx is the server
    answering, and retrying a timed-out request would double the load
    exactly when the server is slowest.  Latency stays measured from
    the scheduled arrival, so retry backoff shows up in the percentiles.
    """
    delay = at - time.perf_counter()
    if delay > 0:
        await asyncio.sleep(delay)
    attempt = 0
    while True:
        try:
            response = await asyncio.wait_for(send(payload), timeout)
        except asyncio.TimeoutError:
            outcome["timeout_errors"] += 1
            return
        except Exception:  # noqa: BLE001 - load tool: classify, keep going
            if attempt < retries:
                attempt += 1
                outcome["retries"] += 1
                backoff = _RETRY_BASE_SECONDS * (2 ** (attempt - 1))
                jitter = backoff * (rng.random() if rng is not None else 0.5)
                await asyncio.sleep(backoff + jitter)
                continue
            outcome["transport_errors"] += 1
            return
        break
    latency = time.perf_counter() - at
    if response.status != 200:
        outcome["http_errors"] += 1
        return
    try:
        validate_route_result(response.json())
    except Exception:  # noqa: BLE001 - any parse/schema failure counts
        outcome["schema_errors"] += 1
        return
    outcome["latencies"].append(latency)


async def run_load(
    send,
    queries,
    rate_qps: float,
    duration_seconds: float,
    algorithm: str = "bucketbound",
    seed: int = 0,
    request_timeout: float = 30.0,
    max_requests: int | None = None,
    retries: int = 0,
) -> dict:
    """Drive *send* with a Poisson arrival process; return raw outcomes.

    ``send`` is ``async payload -> HTTPResponse``.  Arrival instants are
    drawn up front from ``Expovariate(rate)`` and every request is its
    own task pinned to its instant — completions never gate arrivals.
    ``retries`` enables transport-level retries per request (see
    :func:`_fire`; timeouts and HTTP errors are never retried).
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if rate_qps <= 0:
        raise ValueError(f"rate_qps must be > 0, got {rate_qps}")
    if duration_seconds <= 0:
        raise ValueError(f"duration_seconds must be > 0, got {duration_seconds}")
    if not queries:
        raise ValueError("need at least one query to replay")
    rng = random.Random(seed)
    offsets: list[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate_qps)
        if t >= duration_seconds:
            break
        offsets.append(t)
        if max_requests is not None and len(offsets) >= max_requests:
            break
    outcome = {
        "latencies": [],
        "http_errors": 0,
        "schema_errors": 0,
        "timeout_errors": 0,
        "transport_errors": 0,
        "retries": 0,
    }
    start = time.perf_counter()
    tasks = [
        asyncio.create_task(
            _fire(
                send,
                _query_payload(queries[i % len(queries)], algorithm),
                start + offset,
                outcome,
                request_timeout,
                retries=retries,
                rng=rng,
            )
        )
        for i, offset in enumerate(offsets)
    ]
    if tasks:
        await asyncio.gather(*tasks)
    outcome["offered_requests"] = len(tasks)
    outcome["elapsed_seconds"] = max(time.perf_counter() - start, 1e-9)
    return outcome


def build_report(
    outcome: dict,
    rate_qps: float,
    slo_seconds: float,
    error_budget: float = 0.01,
    meta: dict | None = None,
) -> dict:
    """Aggregate raw outcomes into the JSON report artifact."""
    latencies = outcome["latencies"]
    completed = len(latencies)
    errors = {
        key: outcome[key]
        for key in ("http_errors", "schema_errors", "timeout_errors", "transport_errors")
    }
    # Retries are reported next to the errors but kept out of "total":
    # a request that succeeded on attempt two is not a failed request.
    retries = outcome.get("retries", 0)
    violations = sum(1 for latency in latencies if latency > slo_seconds)
    violation_rate = violations / completed if completed else 0.0
    return {
        "schema": "kor.load_report.v1",
        "meta": meta or {},
        "offered": {
            "rate_qps": rate_qps,
            "requests": outcome["offered_requests"],
        },
        "achieved": {
            "completed": completed,
            "qps": completed / outcome["elapsed_seconds"],
            "elapsed_seconds": outcome["elapsed_seconds"],
        },
        "errors": {**errors, "total": sum(errors.values()), "retries": retries},
        "latency_ms": {
            "p50": 1000.0 * percentile(latencies, 50.0),
            "p95": 1000.0 * percentile(latencies, 95.0),
            "p99": 1000.0 * percentile(latencies, 99.0),
            "mean": 1000.0 * (sum(latencies) / completed) if completed else 0.0,
            "max": 1000.0 * max(latencies) if completed else 0.0,
        },
        "slo": {
            "slo_ms": 1000.0 * slo_seconds,
            "violations": violations,
            "violation_rate": violation_rate,
            "error_budget": error_budget,
            # 1.0 = the whole budget is spent; >1.0 = in violation.
            "budget_used": violation_rate / error_budget if error_budget > 0 else 0.0,
        },
    }


def render_markdown(report: dict) -> str:
    """The report as a small markdown artifact (CI-friendly)."""
    latency = report["latency_ms"]
    slo = report["slo"]
    errors = report["errors"]
    meta = report["meta"]
    lines = [
        "# KOR load report",
        "",
        f"- workload: `{meta.get('workload', '?')}`, algorithm `{meta.get('algorithm', '?')}`, "
        f"transport `{meta.get('transport', '?')}`",
        f"- offered {report['offered']['rate_qps']:g} qps Poisson for "
        f"{report['achieved']['elapsed_seconds']:.1f}s "
        f"({report['offered']['requests']} requests)",
        "",
        "| metric | value |",
        "|---|---|",
        f"| completed | {report['achieved']['completed']} |",
        f"| achieved qps | {report['achieved']['qps']:.1f} |",
        f"| p50 latency | {latency['p50']:.2f} ms |",
        f"| p95 latency | {latency['p95']:.2f} ms |",
        f"| p99 latency | {latency['p99']:.2f} ms |",
        f"| errors (http/schema/timeout/transport) | {errors['http_errors']}/"
        f"{errors['schema_errors']}/{errors['timeout_errors']}/"
        f"{errors['transport_errors']} |",
        f"| transport retries | {errors.get('retries', 0)} |",
        f"| SLO | {slo['slo_ms']:.0f} ms |",
        f"| SLO violations | {slo['violations']} ({100.0 * slo['violation_rate']:.2f}%) |",
        f"| error budget used | {100.0 * slo['budget_used']:.1f}% of "
        f"{100.0 * slo['error_budget']:.1f}% budget |",
        "",
    ]
    return "\n".join(lines)


def _build_workload(name: str, scale: str | None):
    if name == "flickr":
        return flickr_workload(scale)
    if name == "road":
        return road_workload(road_default_size(scale), scale)
    raise SystemExit(f"unknown dataset {name!r}; expected flickr or road")


def _parse_args(argv) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--transport", choices=("stdlib", "asgi"), default="stdlib")
    parser.add_argument("--url", help="load-test a running server instead of booting one")
    parser.add_argument("--dataset", choices=("flickr", "road"), default="flickr")
    parser.add_argument("--scale", choices=("small", "default", "paper"), default="small")
    parser.add_argument("--keywords", type=int, default=2, help="keywords per query")
    parser.add_argument("--num-queries", type=int, default=24, help="query-set size")
    parser.add_argument("--algorithm", default="bucketbound")
    parser.add_argument("--rate", type=float, default=50.0, help="Poisson arrival qps")
    parser.add_argument("--duration", type=float, default=5.0, help="seconds of load")
    parser.add_argument("--max-requests", type=int, default=None)
    parser.add_argument("--slo-ms", type=float, default=100.0)
    parser.add_argument("--error-budget", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--request-timeout", type=float, default=30.0)
    parser.add_argument(
        "--retry",
        dest="retries",
        type=int,
        default=0,
        help="transport-level retries per request (jittered exponential "
        "backoff; timeouts and HTTP errors are never retried)",
    )
    parser.add_argument(
        "--adaptive-target",
        type=int,
        default=None,
        help="enable adaptive micro-batching with this target wave size",
    )
    parser.add_argument(
        "--tune",
        action="store_true",
        help="feed the configured rate to POST /tune before the run",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="serve over a 2-lane process backend with a seeded fault plan "
        "(worker kills, task delays, injected errors) installed for the "
        "whole run; faults may cost errors, never schema-invalid responses",
    )
    parser.add_argument("--json", dest="json_path", help="write the JSON report here")
    parser.add_argument(
        "--markdown", dest="markdown_path", help="write the markdown report here"
    )
    return parser.parse_args(argv)


async def _amain(args: argparse.Namespace) -> dict:
    from repro.server import KORApp, serve
    from repro.service import QueryService
    from repro.service.frontend import AsyncQueryService

    workload = _build_workload(args.dataset, args.scale)
    queries = workload.query_set(
        args.keywords, num_queries=args.num_queries, seed=args.seed
    )
    frontend_kwargs = {"slo_seconds": args.slo_ms / 1000.0}
    if args.adaptive_target is not None:
        frontend_kwargs["adaptive_target_batch"] = args.adaptive_target

    backend = None
    chaos_plan = None
    if args.chaos:
        if args.url:
            raise SystemExit("--chaos needs an in-process server, not --url")
        from repro.service import ProcessBackend
        from repro.service.faults import FaultPlan, FaultRule, install

        # A seeded, replayable storm: two SIGKILLed workers, a few slow
        # tasks, two injected errors.  The gate downstream is the wire
        # contract — errors are allowed, invalid 200s are not.
        backend = ProcessBackend(workers=2)
        chaos_plan = install(
            FaultPlan(
                [
                    FaultRule(kind="kill_worker", after=2, times=2),
                    FaultRule(kind="delay_task", seconds=0.02, times=3),
                    FaultRule(kind="error_task", after=8, times=2),
                ]
            )
        )

    server = None
    front = None
    try:
        if args.url:
            from urllib.parse import urlsplit

            split = urlsplit(args.url)
            host, port = split.hostname, split.port or 80

            async def send(payload):
                return await http_request(host, port, "POST", "/query", payload)

            tune = lambda p: http_request(host, port, "POST", "/tune", p)  # noqa: E731
        elif args.transport == "stdlib":
            server = serve(
                QueryService(workload.engine, backend=backend), **frontend_kwargs
            )
            host, port = server.address

            async def send(payload):
                return await http_request(host, port, "POST", "/query", payload)

            tune = lambda p: http_request(host, port, "POST", "/tune", p)  # noqa: E731
        else:
            front = AsyncQueryService(
                QueryService(workload.engine, backend=backend), **frontend_kwargs
            )
            app = KORApp(front)

            async def send(payload):
                return await asgi_request(app, "POST", "/query", payload)

            tune = lambda p: asgi_request(app, "POST", "/tune", p)  # noqa: E731

        if args.tune:
            await tune({"arrival_qps": args.rate})

        outcome = await run_load(
            send,
            queries,
            rate_qps=args.rate,
            duration_seconds=args.duration,
            algorithm=args.algorithm,
            seed=args.seed,
            request_timeout=args.request_timeout,
            max_requests=args.max_requests,
            retries=args.retries,
        )
    finally:
        if chaos_plan is not None:
            from repro.service import faults

            faults.clear()
        if front is not None:
            await front.close()
        if server is not None:
            server.close()
        if backend is not None:
            backend.close()

    return build_report(
        outcome,
        rate_qps=args.rate,
        slo_seconds=args.slo_ms / 1000.0,
        error_budget=args.error_budget,
        meta={
            "workload": workload.name,
            "algorithm": args.algorithm,
            "transport": "url" if args.url else args.transport,
            "keywords": args.keywords,
            "num_queries": len(queries),
            "seed": args.seed,
            "adaptive_target": args.adaptive_target,
            "tuned": bool(args.tune),
            "retries_allowed": args.retries,
            "chaos": bool(args.chaos),
            "chaos_fired": (
                sum(chaos_plan.fired().values()) if chaos_plan is not None else 0
            ),
            "chaos_log": list(chaos_plan.log) if chaos_plan is not None else [],
        },
    )


def main(argv=None) -> int:
    args = _parse_args(argv)
    report = asyncio.run(_amain(args))
    markdown = render_markdown(report)
    print(markdown)
    if args.json_path:
        Path(args.json_path).write_text(json.dumps(report, indent=2) + "\n")
        print(f"json report -> {args.json_path}")
    if args.markdown_path:
        Path(args.markdown_path).write_text(markdown)
        print(f"markdown report -> {args.markdown_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
