"""Figure 15 — relative ratio when both algorithms share a bound.

Expected shape: OSScaling always achieves the better (smaller) measured
ratio, the flip side of Figure 14's runtime advantage for BucketBound.
"""

from _helpers import emit_figure
from repro.bench.experiments import EQUAL_BOUNDS, fig15_ratio_equal_bound


def test_emit_figure(benchmark):
    """Assemble and save the Figure-15 series."""
    result = emit_figure(benchmark, fig15_ratio_equal_bound)
    assert list(result.xs) == list(EQUAL_BOUNDS)
    assert set(result.series) == {"OSScaling", "BucketBound"}
