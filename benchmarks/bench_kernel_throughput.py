"""Batch-wave kernel dispatch vs the per-query task loop.

Expected shape: on ``SerialBackend`` and ``ThreadBackend`` the two modes
stay in the same ballpark (the wave saves per-task future bookkeeping
and shares candidate resolution, but figure-1 searches are microseconds
so there is little to amortise).  On ``ProcessBackend`` the wave wins
big: per-query dispatch pays pickle + IPC + future per query, a wave
pays it once per ``wave_size`` queries — the scatter overhead that
capped sharded serving at ~2.8k qps closes here.

This file doubles as the acceptance smoke: the ProcessBackend batch-wave
throughput must be at least 2x the per-query loop on the figure1
workload, and the kernel itself (no dispatch) must not be slower than
the scalar loop.
"""

from _helpers import emit_figure
from repro.bench.experiments import kernel_throughput

SERIES = ("Per-query-tasks", "Batch-wave")


def test_cell(benchmark):
    result = benchmark.pedantic(
        lambda: kernel_throughput(repeats=4, backend_names=("SerialBackend",)),
        rounds=1,
        iterations=1,
    )
    assert set(result.series) == set(SERIES)
    assert result.xs == ["SerialBackend"]


def test_emit_figure(benchmark):
    result = emit_figure(benchmark, kernel_throughput)
    for name in SERIES:
        assert all(value > 0 for value in result.series[name])
    # The kernel alone (warm context, no dispatch) must not lose to the
    # scalar loop — the numpy blocks have to pay for themselves.
    assert result.meta["kernel_only_speedup"] > 0.9

    position = result.xs.index("ProcessBackend")
    ratio = result.series["Batch-wave"][position] / result.series["Per-query-tasks"][position]
    assert ratio >= 2.0, (
        f"batch-wave at {ratio:.2f}x of the per-query loop on ProcessBackend — "
        "waves must amortise per-query pickle/IPC dispatch at least 2x on the "
        "figure1 workload"
    )
