"""Figure 19 — runtime vs budget limit Delta on the road network.

Expected shape: consistent with Figure 5 on the road dataset.
"""

import pytest

from _helpers import emit_figure
from repro.bench.experiments import fig19_road_runtime_vs_budget, named_cell
from repro.bench.workloads import ROAD_DELTAS, road_default_size, road_workload

ALGORITHMS = ("OSScaling", "BucketBound", "Greedy-2", "Greedy-1")


@pytest.mark.parametrize("delta", ROAD_DELTAS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_cell(benchmark, algorithm, delta):
    """One (algorithm, Delta) cell on the default road graph."""
    workload = road_workload(road_default_size())
    summary = benchmark.pedantic(
        lambda: named_cell(workload, algorithm, 6, delta),
        rounds=1,
        iterations=1,
    )
    assert summary.total > 0


def test_emit_figure(benchmark):
    """Assemble and save the Figure-19 series."""
    result = emit_figure(benchmark, fig19_road_runtime_vs_budget)
    assert list(result.xs) == list(ROAD_DELTAS)
