"""Ablation A3 — inverted-file back ends.

The paper stores the inverted file in a disk-resident B+-tree; the
reproduction defaults to an in-memory index for benchmarks.  This
ablation quantifies the gap (postings-lookup latency, buffer hit rate).
"""

from _helpers import emit_figure
from repro.bench.experiments import ablation_disk_index


def test_emit_figure(benchmark):
    """Probe both back ends and save the comparison."""
    result = emit_figure(benchmark, ablation_disk_index)
    memory_us = result.series["in-memory"][0]
    disk_us = result.series["disk B+-tree"][0]
    assert memory_us > 0 and disk_us > 0
    hit_rate = result.series["disk B+-tree"][1]
    assert 0.0 <= hit_rate <= 100.0
