#!/usr/bin/env python
"""Benchmark-regression gate: run the small-scale serving suite, emit a
``BENCH_*.json``, and compare it against a committed baseline.

CI runs::

    python benchmarks/regression_gate.py run --output BENCH_pr.json
    python benchmarks/regression_gate.py compare \
        --baseline benchmarks/baselines/BENCH_baseline.json \
        --candidate BENCH_pr.json

``compare`` exits non-zero when any throughput metric regressed by more
than ``--threshold`` (default 0.25, i.e. 25%).

Cross-machine comparability
---------------------------
Raw queries/second are meaningless across runner generations, so the
gate scores **normalized throughput**: each qps value is multiplied by
the wall time of a fixed pure-Python + numpy calibration workload.  A
machine that is uniformly 2x slower halves both factors' deviation,
leaving the product roughly stable, while a code regression slows the
benchmark but not the calibration and drags the normalized value down.
The suite runs ``ROUNDS`` times with the calibration re-measured inside
*each* round (so drifting background load on a shared runner is
normalized out round by round) and every metric keeps its best round.
Raw values are kept in the JSON (``raw_qps`` / ``calibration_seconds``)
so the artifact trail still shows absolute numbers.

Refreshing the baseline
-----------------------
After an intentional performance change, regenerate and commit::

    KOR_BENCH_SCALE=small KOR_BENCH_QUERIES=6 \
        python benchmarks/regression_gate.py run \
        --output benchmarks/baselines/BENCH_baseline.json

or push with ``[refresh-baseline]`` in the commit message: the workflow
skips the compare step for that run (see ``.github/workflows/ci.yml``)
so the refreshed baseline can land without gating against itself.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

SCHEMA_VERSION = 1
DEFAULT_THRESHOLD = 0.25
#: Repeats of the whole suite; per-metric normalized throughput keeps
#: the best round so a scheduler hiccup on a busy CI runner does not
#: fail the gate.
ROUNDS = 3
#: Stream repetition for the cached-serving figures: long enough that
#: the warm (all-cache-hit) pass is measured over milliseconds, not
#: clock-resolution noise.
SERVICE_REPEATS = 20


def _calibration_seconds() -> float:
    """Wall seconds of a fixed CPU workload (min of 3 runs).

    Mixes pure-Python dict/loop work with a numpy reduction — the same
    blend the query engines exercise — so the scale factor tracks what
    actually bounds the benchmarks.
    """
    import numpy as np

    def one_run() -> float:
        begin = time.perf_counter()
        acc = {}
        for i in range(200_000):
            acc[i & 1023] = acc.get(i & 1023, 0) + (i ^ (i >> 3))
        matrix = np.arange(250_000, dtype=np.float64).reshape(500, 500)
        for _ in range(10):
            matrix = np.minimum(matrix, matrix.T + 1.0)
        float(matrix.sum())
        return time.perf_counter() - begin

    return min(one_run() for _ in range(3))


def _collect_round() -> tuple[float, dict[str, float]]:
    """One calibrated round: (calibration_seconds, qps per metric)."""
    calibration = _calibration_seconds()
    return calibration, _collect_qps()


def _collect_qps() -> dict[str, float]:
    """One round of the small serving suite, as queries/second."""
    from repro.bench.experiments import (
        border_heavy_throughput,
        clear_cell_cache,
        kernel_throughput,
        service_throughput,
        sharded_throughput,
        sharded_wave_throughput,
        update_latency,
    )

    clear_cell_cache()
    metrics: dict[str, float] = {}

    service = service_throughput(repeats=SERVICE_REPEATS)
    for position, dataset in enumerate(service.xs):
        for mode, series_name in (
            ("sequential", "Engine-sequential"),
            ("cold", "Service-cold"),
            ("warm", "Service-warm"),
        ):
            ms = service.series[series_name][position]
            if ms > 0:
                metrics[f"service/{dataset}/{mode}_qps"] = 1000.0 / ms

    # Serial + thread only: process-pool throughput depends on the
    # runner's core count, which the normalization cannot absorb — and
    # skipping it also skips paying for pool spin-up three times per run.
    gated_backends = ("SerialBackend", "ThreadBackend")
    sharded = sharded_throughput(backend_names=gated_backends)
    for position, dataset in enumerate(sharded.xs):
        for backend in gated_backends:
            metrics[f"sharded/{dataset}/{backend}_qps"] = sharded.series[backend][
                position
            ]

    # Border-heavy (cross-cell) mix: every query runs on the cross-cell
    # assembly, so this is the latency figure that catches a BorderEngine
    # or scatter-path regression the natural mix would average away.
    border = border_heavy_throughput(backend_names=gated_backends)
    for position, dataset in enumerate(border.xs):
        for backend in gated_backends:
            metrics[f"border/{dataset}/{backend}_qps"] = border.series[backend][position]

    # Batch-wave kernel dispatch vs per-query tasks, serial + thread only
    # (same no-process policy as above).  Gating both modes catches a
    # kernel-path slowdown and a per-query-path slowdown independently.
    kernel = kernel_throughput(backend_names=gated_backends)
    for position, backend in enumerate(kernel.xs):
        metrics[f"kernel/{backend}/per_query_qps"] = kernel.series["Per-query-tasks"][position]
        metrics[f"kernel/{backend}/wave_qps"] = kernel.series["Batch-wave"][position]

    # Shard-aware wave scatter vs per-query ShardTasks, same policy:
    # both modes gated so a scatter-path slowdown and a per-query-path
    # slowdown are caught independently.
    wave = sharded_wave_throughput(backend_names=gated_backends)
    for position, backend in enumerate(wave.xs):
        metrics[f"wave/{backend}/per_query_qps"] = wave.series["Per-query-tasks"][position]
        metrics[f"wave/{backend}/wave_qps"] = wave.series["Shard-waves"][position]

    # Dynamic-world repair: updates/second at each cell granularity, plus
    # the full-rebuild rate it must beat.  Gating both sides catches a
    # repair-path slowdown and a rebuild-path slowdown independently.
    update = update_latency()
    for position, cells in enumerate(update.xs):
        p50 = update.series["Repair-p50"][position]
        rebuild = update.series["Full-rebuild"][position]
        if p50 > 0:
            metrics[f"update/cells{cells}/repair_ups"] = 1000.0 / p50
        if rebuild > 0:
            metrics[f"update/cells{cells}/rebuild_ups"] = 1000.0 / rebuild
    return metrics


def run(output: Path) -> dict:
    """Measure everything and write the gate JSON to *output*."""
    import os

    raw: dict[str, float] = {}
    normalized: dict[str, float] = {}
    calibrations: list[float] = []
    for _ in range(ROUNDS):
        calibration, qps_round = _collect_round()
        calibrations.append(calibration)
        for name, qps in qps_round.items():
            raw[name] = max(qps, raw.get(name, 0.0))
            normalized[name] = max(qps * calibration, normalized.get(name, 0.0))
    payload = {
        "schema": SCHEMA_VERSION,
        "env": {
            "KOR_BENCH_SCALE": os.environ.get("KOR_BENCH_SCALE", "default"),
            "KOR_BENCH_QUERIES": os.environ.get("KOR_BENCH_QUERIES", "12"),
            "python": sys.version.split()[0],
        },
        "calibration_seconds": calibrations,
        "raw_qps": raw,
        # The gated numbers: dimensionless, machine-normalized per round.
        "metrics": normalized,
    }
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(raw)} metrics -> {output}")
    for name in sorted(raw):
        print(f"  {name:44s} {raw[name]:12.1f} qps  (normalized {payload['metrics'][name]:.3f})")
    return payload


def compare(baseline_path: Path, candidate_path: Path, threshold: float) -> int:
    """Exit status 0 when no metric regressed beyond *threshold*."""
    baseline = json.loads(baseline_path.read_text())
    candidate = json.loads(candidate_path.read_text())
    if baseline.get("schema") != candidate.get("schema"):
        print(
            f"schema mismatch: baseline {baseline.get('schema')} vs "
            f"candidate {candidate.get('schema')}; refresh the baseline"
        )
        return 1

    base_metrics = baseline["metrics"]
    cand_metrics = candidate["metrics"]
    failures: list[str] = []
    print(f"{'metric':44s} {'baseline':>10} {'candidate':>10} {'ratio':>7}")
    for name in sorted(base_metrics):
        base = base_metrics[name]
        cand = cand_metrics.get(name)
        if cand is None:
            failures.append(f"{name}: missing from candidate run")
            continue
        ratio = cand / base if base > 0 else float("inf")
        flag = ""
        if ratio < 1.0 - threshold:
            failures.append(
                f"{name}: {100 * (1 - ratio):.1f}% below baseline "
                f"({cand:.3f} vs {base:.3f} normalized)"
            )
            flag = "  << REGRESSION"
        print(f"{name:44s} {base:10.3f} {cand:10.3f} {ratio:7.2f}{flag}")
    for name in sorted(set(cand_metrics) - set(base_metrics)):
        print(f"{name:44s} {'-':>10} {cand_metrics[name]:10.3f}   (new, not gated)")

    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed >", f"{100 * threshold:.0f}%:")
        for failure in failures:
            print(f"  - {failure}")
        print(
            "\nIf this slowdown is intentional, refresh the baseline "
            "(see the module docstring / workflow comments)."
        )
        return 1
    print(f"\nOK: no metric regressed more than {100 * threshold:.0f}%")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="measure and write a BENCH json")
    run_parser.add_argument("--output", type=Path, required=True)

    compare_parser = commands.add_parser(
        "compare", help="gate a candidate run against a committed baseline"
    )
    compare_parser.add_argument("--baseline", type=Path, required=True)
    compare_parser.add_argument("--candidate", type=Path, required=True)
    compare_parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)

    args = parser.parse_args(argv)
    if args.command == "run":
        run(args.output)
        return 0
    return compare(args.baseline, args.candidate, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
