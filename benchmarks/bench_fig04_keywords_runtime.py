"""Figure 4 — runtime vs number of query keywords (Flickr graph).

Expected shape (paper Section 4.2.1): OSScaling slowest, BucketBound
clearly faster, Greedy-2 next, Greedy-1 fastest; runtime grows moderately
with the keyword count thanks to the two optimisation strategies.
"""

import pytest

from _helpers import emit_figure
from repro.bench.experiments import fig04_runtime_vs_keywords, named_cell
from repro.bench.workloads import KEYWORD_COUNTS, flickr_workload

ALGORITHMS = ("OSScaling", "BucketBound", "Greedy-2", "Greedy-1")


@pytest.mark.parametrize("num_keywords", KEYWORD_COUNTS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_cell(benchmark, algorithm, num_keywords):
    """One (algorithm, #keywords) cell at the representative Delta=6 km."""
    workload = flickr_workload()
    summary = benchmark.pedantic(
        lambda: named_cell(workload, algorithm, num_keywords, 6.0),
        rounds=1,
        iterations=1,
    )
    assert summary.total > 0


def test_emit_figure(benchmark):
    """Assemble and save the full Figure-4 series (all Delta averages)."""
    result = emit_figure(benchmark, fig04_runtime_vs_keywords)
    assert set(result.series) == set(ALGORITHMS)
