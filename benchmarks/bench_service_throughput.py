"""Serving layer — batched/cached throughput vs sequential engine loops.

Expected shape: ``Service-warm`` (whole stream served from the
canonicalizing LRU cache) is orders of magnitude under
``Engine-sequential``; ``Service-cold`` already wins on repeat-heavy
streams thanks to in-batch dedup and the shared candidate-set pass.
This file doubles as the smoke test for the acceptance bar: cached
repeat-query batches must be >= 5x faster than uncached sequential
``KOREngine`` loops on both the Figure-1 and Flickr-like workloads.
"""

import pytest

from _helpers import emit_figure
from repro.bench.experiments import service_throughput

SERIES = ("Engine-sequential", "Service-cold", "Service-warm")


@pytest.mark.parametrize("workers", (1, 4))
def test_cell(benchmark, workers):
    """One serving sweep at a fixed worker count."""
    result = benchmark.pedantic(
        lambda: service_throughput(workers=workers), rounds=1, iterations=1
    )
    assert set(result.series) == set(SERIES)


def test_emit_figure(benchmark):
    """Assemble and save the serving-throughput figure; check the 5x bar."""
    result = emit_figure(benchmark, service_throughput)
    for dataset, speedup in result.meta["speedup_warm"].items():
        assert speedup >= 5.0, (
            f"warm service only {speedup:.1f}x over sequential on {dataset}"
        )
