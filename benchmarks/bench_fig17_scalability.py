"""Figure 17 — scalability: runtime vs road-network size.

Expected shape: all four algorithms scale smoothly with the node count
and keep their ordering (OSScaling slowest ... Greedy-1 fastest).
DESIGN.md documents the size substitution (paper: 5k-20k DIMACS
subgraphs; default here: 1k-6k synthetic road networks, with
KOR_BENCH_SCALE=paper restoring the published sizes).
"""

import pytest

from _helpers import emit_figure
from repro.bench.experiments import fig17_scalability, named_cell
from repro.bench.workloads import road_sizes, road_workload

ALGORITHMS = ("OSScaling", "BucketBound", "Greedy-2", "Greedy-1")


@pytest.mark.parametrize("num_nodes", road_sizes())
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_cell(benchmark, algorithm, num_nodes):
    """One (algorithm, graph size) cell at 6 keywords."""
    workload = road_workload(num_nodes)
    summary = benchmark.pedantic(
        lambda: named_cell(workload, algorithm, 6, workload.default_delta),
        rounds=1,
        iterations=1,
    )
    assert summary.total > 0


def test_emit_figure(benchmark):
    """Assemble and save the Figure-17 series."""
    result = emit_figure(benchmark, fig17_scalability)
    assert list(result.xs) == list(road_sizes())
