"""Figure 8 — BucketBound runtime vs the bucket parameter beta.

Expected shape: runtime decreases as beta grows (wider buckets mean the
frontier reaches the candidate's bucket sooner).
"""

import pytest

from _helpers import emit_figure
from repro.bench.experiments import BETAS, cell_summary, fig08_runtime_vs_beta
from repro.bench.workloads import flickr_workload


@pytest.mark.parametrize("beta", BETAS)
def test_cell(benchmark, beta):
    """BucketBound over the (6 keywords, Delta=6) set at one beta."""
    workload = flickr_workload()
    summary = benchmark.pedantic(
        lambda: cell_summary(
            workload, "bucketbound", 6, 6.0, epsilon=0.5, beta=beta
        ),
        rounds=1,
        iterations=1,
    )
    assert summary.total > 0


def test_emit_figure(benchmark):
    """Assemble and save the Figure-8 series."""
    result = emit_figure(benchmark, fig08_runtime_vs_beta)
    assert list(result.xs) == list(BETAS)
