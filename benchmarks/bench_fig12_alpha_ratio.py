"""Figure 12 — greedy relative ratio vs alpha.

Expected shape: the ratio worsens as alpha grows (budget-driven node
selection sacrifices objective quality); Greedy-2 consistently beats
Greedy-1.  The x-axis uses the paper's experimental alpha semantics
(DESIGN.md documents the Equation-1 sign discrepancy).
"""

from _helpers import emit_figure
from repro.bench.experiments import ALPHAS, fig12_ratio_vs_alpha


def test_emit_figure(benchmark):
    """Assemble and save the Figure-12 series."""
    result = emit_figure(benchmark, fig12_ratio_vs_alpha)
    assert list(result.xs) == list(ALPHAS)
    assert set(result.series) == {"Greedy-1", "Greedy-2"}
