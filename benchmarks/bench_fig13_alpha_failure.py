"""Figure 13 — greedy failure percentage vs alpha.

Expected shape: failures drop as alpha grows (budget-driven selection
keeps routes feasible); Greedy-2 fails less than Greedy-1 at every alpha.
"""

from _helpers import emit_figure
from repro.bench.experiments import ALPHAS, fig13_failure_vs_alpha


def test_emit_figure(benchmark):
    """Assemble and save the Figure-13 series."""
    result = emit_figure(benchmark, fig13_failure_vs_alpha)
    assert list(result.xs) == list(ALPHAS)
    for series in result.series.values():
        for value in series:
            assert 0.0 <= value <= 100.0
