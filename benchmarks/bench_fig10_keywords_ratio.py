"""Figure 10 — relative ratio vs number of query keywords.

Expected shape: BucketBound's ratio stays below beta = 1.2 and beats both
greedy variants; Greedy-2 beats Greedy-1.
"""

from _helpers import emit_figure
from repro.bench.experiments import fig10_ratio_vs_keywords
from repro.bench.workloads import KEYWORD_COUNTS


def test_emit_figure(benchmark):
    """Assemble and save the Figure-10 series."""
    result = emit_figure(benchmark, fig10_ratio_vs_keywords)
    assert list(result.xs) == list(KEYWORD_COUNTS)
    assert set(result.series) == {"BucketBound", "Greedy-2", "Greedy-1"}
    for ratio in result.series["BucketBound"]:
        if ratio == ratio:
            assert ratio < 1.2 / (1.0 - 0.5) + 1e-6
