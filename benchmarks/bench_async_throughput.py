"""Async front-end — sync batch vs awaited-concurrently throughput.

Expected shape: the ``Async-frontend`` series stays within small
constant overhead of ``Sync-batch`` (it adds an event loop and one
executor hop around the very same ``execute`` path) while the
scheduling meta shows the collapse doing its job — a repeat-heavy
stream of N requests turns into far fewer flights and a handful of
execute waves.

This file doubles as the smoke test: the front-end must actually
coalesce (repeat traffic, so ``coalesced > 0``), must aggregate
distinct queries into fewer waves than requests, and must not collapse
throughput (> 20% of the sync batch — generous, because tiny streams
on a busy runner measure event-loop overhead more than serving).
"""

from _helpers import emit_figure
from repro.bench.experiments import async_throughput

SERIES = ("Sync-batch", "Async-frontend")


def test_cell(benchmark):
    result = benchmark.pedantic(
        lambda: async_throughput(repeats=3), rounds=1, iterations=1
    )
    assert set(result.series) == set(SERIES)


def test_emit_figure(benchmark):
    result = emit_figure(benchmark, async_throughput)
    for name in SERIES:
        assert all(value > 0 for value in result.series[name])
    for dataset in result.xs:
        scheduling = result.meta["scheduling"][dataset]
        # The stream repeats its base set: duplicates must coalesce ...
        assert result.meta["coalesced"][dataset] > 0
        assert scheduling["flights"] < scheduling["requests"]
        # ... and distinct flights must share waves, not execute alone.
        assert scheduling["waves"] <= scheduling["flights"]
    position = result.xs.index("flickr")
    ratio = result.series["Async-frontend"][position] / result.series["Sync-batch"][position]
    assert ratio > 0.2, (
        f"async front-end at {ratio:.2f}x of the sync batch on flickr — "
        "scheduling overhead should not eat the serving tier"
    )
