"""Helpers shared by the benchmark modules (not a pytest plugin)."""

from __future__ import annotations

from pathlib import Path

from repro.bench.experiments import ExperimentResult
from repro.bench.workloads import bench_scale

#: Series are kept per scale so a quick small-scale pytest run never
#: clobbers the canonical default-scale figures.
RESULTS_DIR = Path(__file__).parent / "results" / bench_scale()


def emit_figure(benchmark, experiment) -> ExperimentResult:
    """Benchmark one experiment function and persist its series.

    The experiment layer caches measurement cells, so when the same
    session already benchmarked a figure's cells this mostly re-assembles
    series; the benchmark time then reports the *remaining* grid work.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    result.save(RESULTS_DIR)
    return result
