"""Figure 18 — runtime vs number of keywords on the road network.

Expected shape: consistent with Figure 4 (same ordering of the four
algorithms) on the synthetic road dataset instead of the Flickr graph.
"""

import pytest

from _helpers import emit_figure
from repro.bench.experiments import fig18_road_runtime_vs_keywords, named_cell
from repro.bench.workloads import KEYWORD_COUNTS, road_default_size, road_workload

ALGORITHMS = ("OSScaling", "BucketBound", "Greedy-2", "Greedy-1")


@pytest.mark.parametrize("num_keywords", KEYWORD_COUNTS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_cell(benchmark, algorithm, num_keywords):
    """One (algorithm, #keywords) cell on the default road graph."""
    workload = road_workload(road_default_size())
    summary = benchmark.pedantic(
        lambda: named_cell(workload, algorithm, num_keywords, workload.default_delta),
        rounds=1,
        iterations=1,
    )
    assert summary.total > 0


def test_emit_figure(benchmark):
    """Assemble and save the Figure-18 series."""
    result = emit_figure(benchmark, fig18_road_runtime_vs_keywords)
    assert list(result.xs) == list(KEYWORD_COUNTS)
