"""Figure 11 — relative ratio vs budget limit Delta.

Expected shape: same ordering as Figure 10 (BucketBound best, then
Greedy-2, then Greedy-1) across the whole Delta sweep.
"""

from _helpers import emit_figure
from repro.bench.experiments import fig11_ratio_vs_budget
from repro.bench.workloads import FLICKR_DELTAS


def test_emit_figure(benchmark):
    """Assemble and save the Figure-11 series."""
    result = emit_figure(benchmark, fig11_ratio_vs_budget)
    assert list(result.xs) == list(FLICKR_DELTAS)
    assert set(result.series) == {"BucketBound", "Greedy-2", "Greedy-1"}
