"""Shard-aware wave scatter vs per-query ShardTask dispatch.

Expected shape: on ``SerialBackend`` and ``ThreadBackend`` the wave
scatter wins modestly (fewer futures, shared candidate resolution per
shard group).  On ``ProcessBackend`` it wins big: per-attempt dispatch
pays pickle + IPC + future bookkeeping per attempt *per containment
tier* (cell-local, cross-cell, border repair), a shard wave pays it
once per wave.

This file doubles as the acceptance smoke: the ProcessBackend shard-wave
throughput must be at least 1.5x the per-query scatter on the figure1
workload over two cells.
"""

from _helpers import emit_figure
from repro.bench.experiments import sharded_wave_throughput

SERIES = ("Per-query-tasks", "Shard-waves")


def test_cell(benchmark):
    result = benchmark.pedantic(
        lambda: sharded_wave_throughput(repeats=4, backend_names=("SerialBackend",)),
        rounds=1,
        iterations=1,
    )
    assert set(result.series) == set(SERIES)
    assert result.xs == ["SerialBackend"]


def test_emit_figure(benchmark):
    result = emit_figure(benchmark, sharded_wave_throughput)
    for name in SERIES:
        assert all(value > 0 for value in result.series[name])

    position = result.xs.index("ProcessBackend")
    ratio = (
        result.series["Shard-waves"][position]
        / result.series["Per-query-tasks"][position]
    )
    assert ratio >= 1.5, (
        f"shard waves at {ratio:.2f}x of the per-query scatter on "
        "ProcessBackend — waves must amortise per-attempt pickle/IPC "
        "dispatch at least 1.5x on the two-cell figure1 workload"
    )
