"""Ablation A2 — partition-based pre-processing (paper future work, §6).

Compares flat all-pairs tables against the partitioned variant on build
time, score memory and the accuracy of the assembled scores (the
partitioned tables are upper bounds; repro.prep.partition explains why).
"""

from _helpers import emit_figure
from repro.bench.experiments import ablation_partition


def test_emit_figure(benchmark):
    """Build both table kinds, compare, and save the comparison."""
    result = emit_figure(benchmark, ablation_partition)
    flat_mb = result.series["flat"][1]
    partitioned_mb = result.series["partitioned"][1]
    # The whole point of the future-work design: less table memory.
    assert partitioned_mb < flat_mb
    # Assembled scores never undercut the flat optimum (upper bounds).
    assert result.series["partitioned"][2] >= -1e-9
