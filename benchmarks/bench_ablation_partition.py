"""Ablation A2 — partition-based pre-processing (paper future work, §6).

Compares flat all-pairs tables against the partitioned variant on build
time, score memory and the accuracy of the assembled scores.  The
assembly is exact (repro.prep.partition explains why), so the deviation
column doubles as an end-to-end verification and must read ~0.
"""

from _helpers import emit_figure
from repro.bench.experiments import ablation_partition


def test_emit_figure(benchmark):
    """Build both table kinds, compare, and save the comparison."""
    result = emit_figure(benchmark, ablation_partition)
    flat_mb = result.series["flat"][1]
    partitioned_mb = result.series["partitioned"][1]
    # The whole point of the future-work design: less table memory.
    assert partitioned_mb < flat_mb
    # Exact assembly: the mean relative deviation from the flat optimum
    # is zero up to float noise — neither undercutting nor inflating.
    assert abs(result.series["partitioned"][2]) < 1e-9
