"""Figure 5 — runtime vs budget limit Delta (Flickr graph).

Expected shape: OSScaling's runtime peaks at moderate Delta (small Delta
prunes aggressively, large Delta finds feasible routes earlier); the
other algorithms barely react to Delta.
"""

import pytest

from _helpers import emit_figure
from repro.bench.experiments import fig05_runtime_vs_budget, named_cell
from repro.bench.workloads import FLICKR_DELTAS, flickr_workload

ALGORITHMS = ("OSScaling", "BucketBound", "Greedy-2", "Greedy-1")


@pytest.mark.parametrize("delta", FLICKR_DELTAS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_cell(benchmark, algorithm, delta):
    """One (algorithm, Delta) cell at the representative 6 keywords."""
    workload = flickr_workload()
    summary = benchmark.pedantic(
        lambda: named_cell(workload, algorithm, 6, delta),
        rounds=1,
        iterations=1,
    )
    assert summary.total > 0


def test_emit_figure(benchmark):
    """Assemble and save the full Figure-5 series (keyword averages)."""
    result = emit_figure(benchmark, fig05_runtime_vs_budget)
    assert set(result.series) == set(ALGORITHMS)
