"""Sharded serving — per-backend batch throughput.

Expected shape: on a multi-core machine, ``ProcessBackend`` beats
``SerialBackend`` on the Flickr-like multi-shard batch workload (the
queries are CPU-bound pure-python search, so the thread pool is
GIL-bound and roughly matches serial, while the process pool actually
uses the cores).  On the microsecond-scale Figure-1 queries the IPC
overhead dominates — that column documents the break-even, it is not a
regression.

This file doubles as the smoke test for the acceptance bar: where more
than one CPU is usable, the process backend must beat serial on the
Flickr workload.  On single-CPU runners the bar is unenforceable (no
backend can out-run serial on one core) and the assertion is skipped —
the figure is still emitted.
"""

import os

import pytest

from _helpers import emit_figure
from repro.bench.experiments import sharded_throughput

SERIES = ("SerialBackend", "ThreadBackend", "ProcessBackend")


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


@pytest.mark.parametrize("workers", (2, 4))
def test_cell(benchmark, workers):
    """One per-backend sweep at a fixed worker count."""
    result = benchmark.pedantic(
        lambda: sharded_throughput(workers=workers), rounds=1, iterations=1
    )
    assert set(result.series) == set(SERIES)


def test_emit_figure(benchmark):
    """Assemble and save the figure; enforce the process-beats-serial bar."""
    result = emit_figure(benchmark, sharded_throughput)
    assert result.meta["num_cells"]["flickr"] >= 2, "flickr workload must be multi-shard"
    speedups = result.meta["speedup_over_serial"]["flickr"]
    if usable_cpus() < 2:
        pytest.skip(
            f"only {usable_cpus()} usable CPU(s): process fan-out cannot beat "
            f"serial here (measured {speedups['ProcessBackend']:.2f}x)"
        )
    assert speedups["ProcessBackend"] > 1.0, (
        f"ProcessBackend only {speedups['ProcessBackend']:.2f}x over serial "
        f"on the multi-shard flickr workload with {usable_cpus()} CPUs"
    )
