"""Dynamic world — incremental repair latency vs full rebuild.

Expected shape: a single-cell edge re-cost repairs one cell's all-pairs
tables plus the shared border tier, so its latency must drop as cells
are added while ``world.rebuilt()`` stays flat.  The acceptance bar from
the dynamic-world issue is committed here: at 8 cells the p50 repair
must be **strictly faster** than a from-scratch rebuild.  The emitted
figure feeds the README's repair-cost table.
"""

from _helpers import emit_figure
from repro.bench.experiments import update_latency


def test_emit_figure(benchmark):
    """Assemble and save the figure; enforce the repair-beats-rebuild bar."""
    result = emit_figure(benchmark, update_latency)
    speedup = result.meta["speedup_p50"]
    # The issue's acceptance criterion: single-cell edge-update repair is
    # strictly faster than a full rebuild at 8 cells.
    assert speedup["8"] > 1.0, speedup
    # And the trend must be monotone enough to be meaningful: finer
    # partitions repair faster than the single-cell degenerate case.
    assert speedup["8"] > speedup["1"], speedup
    p50 = dict(zip(result.xs, result.series["Repair-p50"]))
    assert p50[8] < p50[1], p50
