"""Sharded serving — table memory vs cell count.

Expected shape: with the global tier gone, the sharded service's
resident table bytes at any ``num_cells >= 2`` undercut both the flat
score tables and the single-cell footprint — the border tier (``k x k``
plus one full-graph predecessor row per border node) costs far less than
the ``O(n^2)`` matrices it replaces.  This file doubles as the smoke
test for that bar; the emitted figure feeds the README's
memory-vs-cells table.
"""

from _helpers import emit_figure
from repro.bench.experiments import sharded_memory


def test_emit_figure(benchmark):
    """Assemble and save the figure; enforce the memory-shrinks bar."""
    result = emit_figure(benchmark, sharded_memory)
    sharded = dict(zip(result.xs, result.series["sharded service tables (MB)"]))
    flat_mb = result.series["flat score tables (MB)"][0]
    multi_cell = {cells: mb for cells, mb in sharded.items() if cells >= 2}
    assert multi_cell, "expected at least one multi-cell granularity"
    # Every multi-cell deployment must beat the flat score tables it
    # replaced, and the coarsest single-cell footprint.
    assert all(mb < flat_mb for mb in multi_cell.values()), (sharded, flat_mb)
    if 1 in sharded:
        assert all(mb < sharded[1] for mb in multi_cell.values()), sharded
    # The finest granularity tested must stay within the coarsest
    # multi-cell footprint plus border growth — i.e. memory must not
    # climb back toward the flat tier as cells are added.
    finest = max(multi_cell)
    coarsest = min(multi_cell)
    assert multi_cell[finest] <= 1.25 * multi_cell[coarsest], sharded
