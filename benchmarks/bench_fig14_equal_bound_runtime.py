"""Figure 14 — runtime when both algorithms share a theoretical bound.

For a target bound r, OSScaling runs at eps = 1 - 1/r and BucketBound at
beta = 1.2, eps = 1 - 1.2/r.  Expected shape: BucketBound consistently
faster than OSScaling over all bounds.
"""

import pytest

from _helpers import emit_figure
from repro.bench.experiments import (
    EQUAL_BOUNDS,
    cell_summary,
    fig14_runtime_equal_bound,
)
from repro.bench.workloads import flickr_workload


@pytest.mark.parametrize("bound", EQUAL_BOUNDS)
def test_cell_osscaling(benchmark, bound):
    """OSScaling at the epsilon matching one theoretical bound."""
    workload = flickr_workload()
    summary = benchmark.pedantic(
        lambda: cell_summary(workload, "osscaling", 6, 6.0, epsilon=1.0 - 1.0 / bound),
        rounds=1,
        iterations=1,
    )
    assert summary.total > 0


@pytest.mark.parametrize("bound", EQUAL_BOUNDS)
def test_cell_bucketbound(benchmark, bound):
    """BucketBound at the epsilon matching the same bound (beta = 1.2)."""
    workload = flickr_workload()
    summary = benchmark.pedantic(
        lambda: cell_summary(
            workload, "bucketbound", 6, 6.0, epsilon=1.0 - 1.2 / bound, beta=1.2
        ),
        rounds=1,
        iterations=1,
    )
    assert summary.total > 0


def test_emit_figure(benchmark):
    """Assemble and save the Figure-14 series."""
    result = emit_figure(benchmark, fig14_runtime_equal_bound)
    assert list(result.xs) == list(EQUAL_BOUNDS)
