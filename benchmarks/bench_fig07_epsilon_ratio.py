"""Figure 7 — OSScaling relative ratio vs epsilon.

Expected shape: the ratio (base: eps=0.1) degrades as eps grows but stays
far below the worst-case bound 1/(1-eps) (Theorem 2).
"""

from _helpers import emit_figure
from repro.bench.experiments import EPSILONS, fig07_ratio_vs_epsilon


def test_emit_figure(benchmark):
    """Assemble and save the Figure-7 series; sanity-check Theorem 2."""
    result = emit_figure(benchmark, fig07_ratio_vs_epsilon)
    for eps, ratio in zip(result.xs, result.series["OSScaling"]):
        if ratio == ratio:  # skip NaN (no mutually feasible queries)
            # The relative ratio against the eps=0.1 base cannot beat the
            # combined worst cases of the two runs.
            assert ratio <= (1.0 / (1.0 - eps)) / (1.0 - 0.1) + 1e-6
    assert list(result.xs) == list(EPSILONS)
