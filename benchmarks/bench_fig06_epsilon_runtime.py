"""Figure 6 — OSScaling runtime vs the scaling parameter epsilon.

Expected shape: runtime decreases as eps grows (coarser scaled scores
mean more domination pruning; Lemma 1's per-node label bound shrinks
linearly in 1/eps).
"""

import pytest

from _helpers import emit_figure
from repro.bench.experiments import EPSILONS, cell_summary, fig06_runtime_vs_epsilon
from repro.bench.workloads import flickr_workload


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_cell(benchmark, epsilon):
    """OSScaling over the (6 keywords, Delta=6) set at one epsilon."""
    workload = flickr_workload()
    summary = benchmark.pedantic(
        lambda: cell_summary(workload, "osscaling", 6, 6.0, epsilon=epsilon),
        rounds=1,
        iterations=1,
    )
    assert summary.total > 0


def test_emit_figure(benchmark):
    """Assemble and save the Figure-6 series."""
    result = emit_figure(benchmark, fig06_runtime_vs_epsilon)
    assert list(result.xs) == list(EPSILONS)
