"""Ablation A1 — the two optimisation strategies of Section 3.2.

The paper states (Section 4.2.1): "Without employing the optimization
strategies, both algorithms will be 3-5 times slower."  This ablation
turns each strategy off independently for OSScaling and BucketBound.
"""

import pytest

from _helpers import emit_figure
from repro.bench.experiments import ablation_opt_strategies, cell_summary
from repro.bench.workloads import flickr_workload

CONFIGS = {
    "both": {"use_strategy1": True, "use_strategy2": True},
    "s1-only": {"use_strategy1": True, "use_strategy2": False},
    "s2-only": {"use_strategy1": False, "use_strategy2": True},
    "none": {"use_strategy1": False, "use_strategy2": False},
}


@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("algorithm", ("osscaling", "bucketbound"))
def test_cell(benchmark, algorithm, config):
    """One algorithm with one strategy configuration."""
    workload = flickr_workload()
    params = dict(CONFIGS[config])
    if algorithm == "bucketbound":
        params["beta"] = 1.2
    summary = benchmark.pedantic(
        lambda: cell_summary(workload, algorithm, 6, 6.0, epsilon=0.5, **params),
        rounds=1,
        iterations=1,
    )
    assert summary.total > 0


def test_emit_figure(benchmark):
    """Assemble and save the strategy-ablation series."""
    result = emit_figure(benchmark, ablation_opt_strategies)
    assert "OSScaling" in result.series and "BucketBound" in result.series
