"""Figure 9 — BucketBound relative ratio vs beta.

Expected shape: the ratio worsens as beta grows yet stays consistently
below beta itself (the paper's headline observation for this figure).
"""

from _helpers import emit_figure
from repro.bench.experiments import BETAS, fig09_ratio_vs_beta


def test_emit_figure(benchmark):
    """Assemble and save the Figure-9 series; check ratio < beta."""
    result = emit_figure(benchmark, fig09_ratio_vs_beta)
    for beta, ratio in zip(result.xs, result.series["BucketBound"]):
        if ratio == ratio:  # skip NaN
            # Theorem 3 bounds BucketBound by beta/(1-eps) against the
            # optimum; against the eps=0.1 base the paper observes < beta.
            assert ratio <= beta / (1.0 - 0.5) + 1e-6
    assert list(result.xs) == list(BETAS)
