"""Shared fixtures of the benchmark suite.

Each ``bench_figXX`` module exposes pytest-benchmark cells for the
figure's representative measurements plus one ``test_emit_figure`` that
regenerates and saves the complete series (cheap for cells already
benchmarked in the same session — the experiment layer caches them).

Suite-wide knobs (see :mod:`repro.bench.workloads`):

* ``KOR_BENCH_QUERIES`` — queries per set (default 12, paper uses 50);
* ``KOR_BENCH_SCALE``   — small | default | paper.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.experiments import ExperimentResult


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Where figure series land (benchmarks/results/)."""
    directory = Path(__file__).parent / "results"
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def emit_figure(benchmark, experiment, results_dir: Path) -> ExperimentResult:
    """Benchmark one experiment function and persist its series."""
    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    result.save(results_dir)
    return result
