"""repro — Keyword-aware Optimal Route Search (KOR).

A from-scratch reproduction of Cao, Chen, Cong, Xiao, *Keyword-aware
Optimal Route Search*, PVLDB 5(11), 2012: the KOR/KkR query model, the
OSScaling and BucketBound approximation algorithms, the Greedy heuristic,
the pre-processing and indexing substrates they rely on, synthetic
workload generators matching the paper's evaluation, and a benchmark
harness regenerating every figure of Section 4.

Quickstart::

    from repro import KOREngine, figure_1_graph

    graph = figure_1_graph()
    engine = KOREngine(graph)
    result = engine.query(source=0, target=7, keywords=["t1", "t2", "t3"],
                          budget_limit=8.0, algorithm="osscaling")
    print(result.route.describe(graph))   # v0 -> v3 -> v4 -> v7 (OS=4, BS=7)
"""

from repro.core import (
    ALGORITHMS,
    KOREngine,
    KORQuery,
    KORResult,
    KkRResult,
    Route,
    SearchStats,
    SearchTrace,
    branch_and_bound,
    bucket_bound,
    bucket_bound_top_k,
    exhaustive_search,
    greedy,
    os_scaling,
    os_scaling_top_k,
)
from repro.exceptions import (
    DatasetError,
    GraphError,
    PrepError,
    QueryError,
    ReproError,
    StorageError,
)
from repro.graph import (
    GraphBuilder,
    KeywordTable,
    SpatialKeywordGraph,
    figure_1_graph,
    validate_graph,
)
from repro.index import InvertedIndex, Vocabulary
from repro.prep import CostTables
from repro.service import (
    BatchError,
    BatchReport,
    ExecutionBackend,
    ProcessBackend,
    QueryService,
    ResultCache,
    SerialBackend,
    ServiceStats,
    ShardedQueryService,
    ThreadBackend,
    canonical_cache_key,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "BatchError",
    "BatchReport",
    "CostTables",
    "DatasetError",
    "ExecutionBackend",
    "GraphBuilder",
    "GraphError",
    "InvertedIndex",
    "KOREngine",
    "KORQuery",
    "KORResult",
    "KeywordTable",
    "KkRResult",
    "PrepError",
    "ProcessBackend",
    "QueryError",
    "QueryService",
    "ReproError",
    "ResultCache",
    "Route",
    "SearchStats",
    "SearchTrace",
    "SerialBackend",
    "ServiceStats",
    "ShardedQueryService",
    "SpatialKeywordGraph",
    "ThreadBackend",
    "StorageError",
    "Vocabulary",
    "branch_and_bound",
    "bucket_bound",
    "bucket_bound_top_k",
    "canonical_cache_key",
    "exhaustive_search",
    "figure_1_graph",
    "greedy",
    "os_scaling",
    "os_scaling_top_k",
    "validate_graph",
    "__version__",
]
