"""repro.service — batched, cached, sharded, multi-backend KOR serving.

The algorithms in :mod:`repro.core` answer one query at a time and
recompute every per-keyword candidate set from scratch.  Real workloads
(the Flickr query logs modelled in the paper, Section 4.1) are streams
with heavy keyword and whole-query repetition, so a serving layer can
amortise most of that work.  This package adds one:

``QueryService``
    The flat front door.  Wraps a :class:`repro.core.engine.KOREngine`
    with

    * a **canonicalizing LRU result cache** — keyword order and
      duplicates never change the cache key, so ``("pub", "mall")`` and
      ``("mall", "pub", "pub")`` hit the same entry; capacity, an
      optional total-route-size budget, hit/miss counters and
      epoch-based invalidation are exposed (:mod:`repro.service.cache`);
    * a **batch executor** — a list of :class:`repro.core.query.KORQuery`
      objects is deduplicated against the cache and against itself, the
      batch's *union* of keywords is resolved through the index exactly
      once (``index.candidate_sets``), and the remaining unique queries
      fan out over a pluggable execution backend.  Results come back in
      submission order regardless of worker count, and one failing query
      is reported per-slot without poisoning the cache or its neighbours
      (:mod:`repro.service.batch`);
    * **serving metrics** — p50/p95 latency, cache hit rate, throughput
      and per-shard task counters via
      :class:`repro.service.stats.ServiceStats`.

``ShardedQueryService``
    The partition-routed tier (:mod:`repro.service.sharding`): the graph
    is split into cells (:func:`repro.prep.partition.partition_graph`),
    each cell gets its own engine (tables + index over the induced
    subgraph), and cross-cell answers are assembled *exactly* by a
    :class:`~repro.service.crosscell.BorderEngine` over the cells' own
    tables plus a border-to-border tier — no flat global engine, so
    table memory shrinks as the cell count grows.  Cell-local queries
    run their cell attempt and the cross-cell assembly in one
    concurrent wave, merged by objective score; see the module
    docstrings for the full contract.

``AsyncQueryService``
    The request-shaped asyncio tier (:mod:`repro.service.frontend`):
    ``await service.submit(query)`` coalesces duplicate in-flight
    requests (single-flight on the cache's canonical key), aggregates
    concurrent awaiters into one micro-batched ``execute`` wave, and
    supports per-request timeouts whose cancellation propagates down to
    undispatched shard tasks.  Wraps either sync service; results are
    byte-identical to the sync path.

``ExecutionBackend``
    Where compute actually runs (:mod:`repro.service.backends`).  The
    primitive is futures-based — ``submit_task(task) ->
    Future[TaskOutcome]`` with bounded in-flight admission
    (``max_in_flight``) — and the blocking batch APIs are shared
    wrappers over it.  ``SerialBackend`` (reference/debugging),
    ``ThreadBackend`` (persistent GIL-sharing pool, cheapest for
    numpy-heavy work) and ``ProcessBackend`` (**warm-pinned**
    single-process lanes over picklable
    :class:`~repro.service.backends.EngineHandle` shard state: repeat
    traffic for a shard sticks to the worker that already materialised
    its engine, with a per-worker engine LRU, saturation spill and
    dead-worker retry — the backend that scales CPU-bound fan-out past
    the GIL).

Quickstart::

    from repro import KORQuery, figure_1_graph
    from repro.service import ProcessBackend, ShardedQueryService

    service = ShardedQueryService(figure_1_graph(), num_cells=2,
                                  backend=ProcessBackend(workers=4))
    batch = [KORQuery(0, 7, ("t1", "t2"), 8.0) for _ in range(100)]
    results = service.run_batch(batch, algorithm="bucketbound")
    print(service.stats.snapshot().describe())   # p50/p95, hit rate, shards

Guarantees (backed by ``tests/service/``):

* **Differential** — flat batch results are semantically identical to a
  sequential ``engine.run`` loop for every algorithm in ``ALGORITHMS``;
  sharded results are feasibility-equivalent to the flat engine for the
  complete algorithms (border assembly is exact) and never score better
  than the exact optimum, and ``num_cells=1`` reproduces the flat
  engine exactly.
* **Backend-deterministic** — the same batch yields byte-identical
  result lists on serial, thread and process backends, any worker count.
* **Isolated failures** — a query that raises marks only its own slot;
  nothing about it enters the cache, on any backend.
* **No stale serving** — rebuilding/replacing an engine bumps the cache
  epoch: old entries vanish and in-flight writes against the old engine
  are dropped.
"""

from repro.service.backends import (
    EngineHandle,
    ExecutionBackend,
    PartPatch,
    ProcessBackend,
    RemoteTaskError,
    SerialBackend,
    ShardTask,
    TaskOutcome,
    ThreadBackend,
    WaveTask,
    backend_from_name,
    run_wave_on_engine,
)
from repro.service.batch import BatchError, BatchItem, BatchReport
from repro.service.cache import CacheStats, ResultCache, canonical_cache_key
from repro.service.config import ServiceConfig, build_service
from repro.service.crosscell import BorderEngine
from repro.service.frontend import AsyncQueryService
from repro.service.service import QueryService
from repro.service.sharding import Shard, ShardedQueryService
from repro.service.stats import ServiceStats, StatsSnapshot

__all__ = [
    "AsyncQueryService",
    "BatchError",
    "BatchItem",
    "BatchReport",
    "BorderEngine",
    "CacheStats",
    "EngineHandle",
    "ExecutionBackend",
    "PartPatch",
    "ProcessBackend",
    "QueryService",
    "RemoteTaskError",
    "ResultCache",
    "SerialBackend",
    "ServiceConfig",
    "ServiceStats",
    "Shard",
    "ShardTask",
    "ShardedQueryService",
    "StatsSnapshot",
    "TaskOutcome",
    "ThreadBackend",
    "WaveTask",
    "backend_from_name",
    "build_service",
    "canonical_cache_key",
    "run_wave_on_engine",
]
