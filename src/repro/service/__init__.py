"""repro.service — batched, cached, concurrent KOR serving layer.

The algorithms in :mod:`repro.core` answer one query at a time and
recompute every per-keyword candidate set from scratch.  Real workloads
(the Flickr query logs modelled in the paper, Section 4.1) are streams
with heavy keyword and whole-query repetition, so a serving layer can
amortise most of that work.  This package adds one:

``QueryService``
    The front door.  Wraps a :class:`repro.core.engine.KOREngine` with

    * a **canonicalizing LRU result cache** — keyword order and
      duplicates never change the cache key, so ``("pub", "mall")`` and
      ``("mall", "pub", "pub")`` hit the same entry; capacity and
      hit/miss counters are exposed (:mod:`repro.service.cache`);
    * a **batch executor** — a list of :class:`repro.core.query.KORQuery`
      objects is deduplicated against the cache and against itself, the
      batch's *union* of keywords is resolved through the index exactly
      once (``index.candidate_sets``), and the remaining unique queries
      fan out over a ``ThreadPoolExecutor``.  Results come back in
      submission order regardless of worker count, and one failing query
      is reported per-slot without poisoning the cache or its neighbours
      (:mod:`repro.service.batch`);
    * **serving metrics** — p50/p95 latency, cache hit rate and
      throughput via :class:`repro.service.stats.ServiceStats`, consumed
      by ``repro.bench.harness.run_service_query_set`` and the
      ``service_throughput`` benchmark.

Quickstart::

    from repro import KOREngine, KORQuery, figure_1_graph
    from repro.service import QueryService

    service = QueryService(KOREngine(figure_1_graph()), cache_capacity=512)
    batch = [KORQuery(0, 7, ("t1", "t2"), 8.0) for _ in range(100)]
    results = service.run_batch(batch, algorithm="bucketbound", workers=4)
    print(service.stats.snapshot())          # p50/p95, hit rate, qps

Guarantees (backed by ``tests/service/``):

* **Differential** — batch results are semantically identical to a
  sequential ``engine.run`` loop for every algorithm in ``ALGORITHMS``,
  cached or not.
* **Deterministic** — the same batch yields the same result list with 1
  or N workers.
* **Isolated failures** — a query that raises ``QueryError`` marks only
  its own slot; nothing about it is cached.

Known limits (see ROADMAP "Open items"): single-process threads only (no
sharding across graphs), synchronous API (no async backend), and the
cache stores full ``KORResult`` objects (no size-aware eviction).
"""

from repro.service.batch import BatchError, BatchItem, BatchReport
from repro.service.cache import CacheStats, ResultCache, canonical_cache_key
from repro.service.service import QueryService
from repro.service.stats import ServiceStats, StatsSnapshot

__all__ = [
    "BatchError",
    "BatchItem",
    "BatchReport",
    "CacheStats",
    "QueryService",
    "ResultCache",
    "ServiceStats",
    "StatsSnapshot",
    "canonical_cache_key",
]
