"""Canonicalizing LRU result cache for the serving layer.

The cache key normalises everything about a query that cannot change its
answer: keyword **order** and **duplicates** (a KOR query's keyword set
is a set, Definition 4 — bit positions shift but the optimal route does
not), while keeping everything that can: endpoints, budget, algorithm
and algorithm parameters.  Two queries with the same canonical key are
answered by the same :class:`repro.core.results.KORResult` object; the
cached result's ``query`` attribute is the query that first computed it.

The store is a plain ``OrderedDict`` LRU guarded by a lock so batch
workers can probe it concurrently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.core.query import KORQuery
from repro.core.results import KORResult
from repro.exceptions import QueryError

__all__ = ["CacheStats", "ResultCache", "canonical_cache_key", "UNCACHEABLE_PARAMS"]

#: Parameters whose presence makes a single-query call uncacheable:
#: ``trace`` mutates a caller-owned sink (replaying a cached result would
#: silently skip it) and ``binding``/``candidates`` are caller-supplied
#: state the key cannot describe.  The batch executor rejects the latter
#: two outright — they are per-query by nature.
UNCACHEABLE_PARAMS = frozenset({"trace", "binding", "candidates"})


def canonical_cache_key(
    query: KORQuery,
    algorithm: str = "bucketbound",
    params: Mapping[str, object] | None = None,
) -> Hashable:
    """The cache key of (*query*, *algorithm*, *params*).

    Keywords are deduplicated and sorted, so any ordering of the same
    keyword multiset maps to one key.  Endpoints, budget, algorithm name
    and every parameter value are kept verbatim — distinct budgets,
    sources, targets or epsilons can never collide (the key is a tuple of
    the actual values, not a hash digest).
    """
    if params:
        unhashable = [name for name in params if not _hashable(params[name])]
        if unhashable:
            raise QueryError(
                f"parameters {sorted(unhashable)} are not hashable and cannot "
                "form a cache key; pass them via an uncached engine.run()"
            )
    return (
        int(query.source),
        int(query.target),
        tuple(sorted(set(query.keywords))),
        float(query.budget_limit),
        str(algorithm),
        tuple(sorted(params.items())) if params else (),
    )


def _hashable(value: object) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


@dataclass
class CacheStats:
    """Counters of one :class:`ResultCache` (monotonically increasing)."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per probe, 0.0 when never probed."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Thread-safe LRU mapping canonical keys to :class:`KORResult`.

    ``capacity`` bounds the entry count; inserting beyond it evicts the
    least recently *used* entry (lookups refresh recency).  A capacity of
    0 disables storage entirely while keeping the stats flowing.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise QueryError(f"cache capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._entries: OrderedDict[Hashable, KORResult] = OrderedDict()
        self._lock = threading.Lock()
        self._stats = CacheStats()

    @property
    def capacity(self) -> int:
        """Maximum number of stored results."""
        return self._capacity

    @property
    def stats(self) -> CacheStats:
        """Live hit/miss/eviction counters."""
        return self._stats

    def get(self, key: Hashable) -> KORResult | None:
        """The cached result under *key*, refreshing its recency."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self._stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self._stats.hits += 1
            return result

    def put(self, key: Hashable, result: KORResult) -> None:
        """Store *result* under *key*, evicting the LRU entry if full."""
        if self._capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = result
            self._stats.insertions += 1
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
