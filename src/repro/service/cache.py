"""Canonicalizing LRU result cache for the serving layer.

The cache key normalises everything about a query that cannot change its
answer: keyword **order** and **duplicates** (a KOR query's keyword set
is a set, Definition 4 — bit positions shift but the optimal route does
not), while keeping everything that can: endpoints, budget, algorithm
and algorithm parameters.  Two queries with the same canonical key are
answered by the same :class:`repro.core.results.KORResult` object; the
cached result's ``query`` attribute is the query that first computed it.

Two orthogonal bounds govern eviction:

* ``capacity`` — maximum entry count (LRU eviction beyond it);
* ``max_route_nodes`` — optional budget on the *total route size* held
  (results store full routes, so a thousand 3-node answers and a dozen
  thousand-node answers are very different memory stories).  Inserting
  past the budget evicts LRU entries until the total fits again; a
  single result bigger than the whole budget is never stored.

The cache also carries an **epoch**.  Keys only describe the query —
not the graph it was answered on — so a service whose engine is rebuilt
calls :meth:`ResultCache.invalidate`, which bumps the epoch and drops
every entry.  Readers and writers capture the epoch when a computation
*starts* and pass it back to :meth:`get`/:meth:`put`; a write that began
against the old engine is silently discarded instead of poisoning the
new epoch with a stale route.

The store is a plain ``OrderedDict`` LRU guarded by a lock so batch
workers can probe it concurrently.

The cache also hosts the serving layer's **single-flight** table
(:meth:`ResultCache.get_or_compute`): concurrent identical misses — same
canonical key, different threads — fold into *one* computation, with the
waiters handed the leader's result (or its exception) instead of
recomputing.  The async front-end reuses the very same key for its own
awaiter coalescing, so "one key, at most one computation in flight" is
one invariant across the whole stack.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Mapping

from repro.core.query import KORQuery
from repro.core.results import KORResult
from repro.exceptions import QueryError

__all__ = ["CacheStats", "ResultCache", "canonical_cache_key", "UNCACHEABLE_PARAMS"]

#: Parameters whose presence makes a single-query call uncacheable:
#: ``trace`` mutates a caller-owned sink (replaying a cached result would
#: silently skip it) and ``binding``/``candidates`` are caller-supplied
#: state the key cannot describe.  The batch executor rejects the latter
#: two outright — they are per-query by nature.
UNCACHEABLE_PARAMS = frozenset({"trace", "binding", "candidates"})


def canonical_cache_key(
    query: KORQuery,
    algorithm: str = "bucketbound",
    params: Mapping[str, object] | None = None,
) -> Hashable:
    """The cache key of (*query*, *algorithm*, *params*).

    Keywords are deduplicated and sorted, so any ordering of the same
    keyword multiset maps to one key.  Endpoints, budget, algorithm name
    and every parameter value are kept verbatim — distinct budgets,
    sources, targets or epsilons can never collide (the key is a tuple of
    the actual values, not a hash digest).
    """
    if params:
        unhashable = [name for name in params if not _hashable(params[name])]
        if unhashable:
            raise QueryError(
                f"parameters {sorted(unhashable)} are not hashable and cannot "
                "form a cache key; pass them via an uncached engine.run()"
            )
    return (
        int(query.source),
        int(query.target),
        tuple(sorted(set(query.keywords))),
        float(query.budget_limit),
        str(algorithm),
        tuple(sorted(params.items())) if params else (),
    )


def _hashable(value: object) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


def _route_size(result: KORResult) -> int:
    """Stored route size of one result (0 when no route was produced).

    Tolerates arbitrary stored values (tests stub results with plain
    objects): anything without a route costs 0 nodes.
    """
    route = getattr(result, "route", None)
    nodes = getattr(route, "nodes", None)
    return len(nodes) if nodes is not None else 0


@dataclass
class CacheStats:
    """Counters of one :class:`ResultCache` (monotonically increasing)."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    #: Results refused because one route exceeded the whole size budget.
    oversize_rejections: int = 0
    #: Writes dropped because the cache epoch moved while they computed.
    stale_writes: int = 0
    #: Times :meth:`ResultCache.invalidate` wiped the store.
    invalidations: int = 0
    #: ``get_or_compute`` callers served off another caller's in-flight
    #: computation instead of computing themselves (single-flight).
    coalesced: int = 0

    @property
    def lookups(self) -> int:
        """Total probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per probe, 0.0 when never probed."""
        return self.hits / self.lookups if self.lookups else 0.0


class _InFlight:
    """One computation other callers of the same key can wait on."""

    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: KORResult | None = None
        self.error: BaseException | None = None


class ResultCache:
    """Thread-safe LRU mapping canonical keys to :class:`KORResult`.

    ``capacity`` bounds the entry count; ``max_route_nodes`` (optional)
    bounds the summed ``len(route.nodes)`` of stored results.  Inserting
    beyond either bound evicts the least recently *used* entries
    (lookups refresh recency).  A capacity of 0 disables storage
    entirely while keeping the stats flowing.
    """

    def __init__(self, capacity: int = 1024, max_route_nodes: int | None = None) -> None:
        if capacity < 0:
            raise QueryError(f"cache capacity must be >= 0, got {capacity}")
        if max_route_nodes is not None and max_route_nodes < 0:
            raise QueryError(
                f"max_route_nodes must be >= 0 or None, got {max_route_nodes}"
            )
        self._capacity = capacity
        self._max_route_nodes = max_route_nodes
        self._entries: OrderedDict[Hashable, KORResult] = OrderedDict()
        self._route_nodes = 0
        self._epoch = 0
        self._lock = threading.Lock()
        self._stats = CacheStats()
        self._in_flight: dict[Hashable, _InFlight] = {}

    @property
    def capacity(self) -> int:
        """Maximum number of stored results."""
        return self._capacity

    @property
    def max_route_nodes(self) -> int | None:
        """Total stored-route-size budget (None = unbounded)."""
        return self._max_route_nodes

    @property
    def total_route_nodes(self) -> int:
        """Summed route size of every stored result."""
        with self._lock:
            return self._route_nodes

    @property
    def epoch(self) -> int:
        """Current validity epoch; bumped by :meth:`invalidate`.

        Capture it before starting a computation and pass it back to
        :meth:`put` so results of a superseded engine are dropped.
        """
        with self._lock:
            return self._epoch

    @property
    def stats(self) -> CacheStats:
        """Live hit/miss/eviction counters."""
        return self._stats

    def get(self, key: Hashable, epoch: int | None = None) -> KORResult | None:
        """The cached result under *key*, refreshing its recency.

        ``epoch``, when given, must match the current epoch — a probe
        carrying a superseded epoch is a guaranteed miss.
        """
        with self._lock:
            if epoch is not None and epoch != self._epoch:
                self._stats.misses += 1
                return None
            result = self._entries.get(key)
            if result is None:
                self._stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self._stats.hits += 1
            return result

    def put(self, key: Hashable, result: KORResult, epoch: int | None = None) -> None:
        """Store *result* under *key*, evicting LRU entries while full.

        ``epoch``, when given, is the epoch captured before the result
        was computed; if :meth:`invalidate` ran in between, the write is
        dropped (the result describes an engine that no longer serves).
        """
        if self._capacity == 0:
            return
        size = _route_size(result)
        with self._lock:
            if epoch is not None and epoch != self._epoch:
                self._stats.stale_writes += 1
                return
            if self._max_route_nodes is not None and size > self._max_route_nodes:
                # Bigger than the whole budget: storing it would evict
                # everything and still not fit.
                self._stats.oversize_rejections += 1
                return
            previous = self._entries.get(key)
            if previous is not None:
                self._route_nodes -= _route_size(previous)
                self._entries.move_to_end(key)
            self._entries[key] = result
            self._route_nodes += size
            self._stats.insertions += 1
            while len(self._entries) > self._capacity or (
                self._max_route_nodes is not None
                and self._route_nodes > self._max_route_nodes
            ):
                _evicted_key, evicted = self._entries.popitem(last=False)
                self._route_nodes -= _route_size(evicted)
                self._stats.evictions += 1

    def get_or_compute(
        self,
        key: Hashable,
        compute: Callable[[], KORResult],
        epoch: int | None = None,
        store: bool = True,
    ) -> tuple[KORResult, str]:
        """Serve *key* with single-flight miss protection.

        Probes the cache first; on a miss, exactly one caller per key
        runs *compute* while concurrent callers of the same key block on
        its outcome.  Returns ``(result, how)`` with ``how`` one of
        ``"hit"`` (served from the store), ``"computed"`` (this caller
        was the leader) or ``"coalesced"`` (another caller's computation
        answered).  A leader whose *compute* raises propagates the
        exception to every waiter — and nothing enters the cache.

        ``store=False`` skips the leader's write-back for callers whose
        *compute* already stores the result itself (the sharded service
        routes through its batch path, which caches internally).

        ``epoch`` follows the :meth:`get`/:meth:`put` contract: captured
        before computing, it turns writes that raced an
        :meth:`invalidate` into silent drops.  The flight table itself
        is **epoch-scoped**: flights are registered under the *caller's*
        captured epoch (falling back to the current epoch when none is
        given), so a caller arriving after an :meth:`invalidate` never
        coalesces onto a computation that started against the retired
        engine — it starts a fresh one.  Keying by the caller's epoch
        rather than the table's current epoch matters when the capture
        itself raced the invalidate: a leader that captured the retired
        epoch computes against the retired engine, and its flight must
        not collect waiters who captured the new one.
        """
        while True:
            hit = self.get(key, epoch=epoch)
            if hit is not None:
                return hit, "hit"
            with self._lock:
                flight_key = (key, self._epoch if epoch is None else epoch)
                flight = self._in_flight.get(flight_key)
                if flight is None:
                    flight = _InFlight()
                    self._in_flight[flight_key] = flight
                    leader = True
                else:
                    leader = False
                    self._stats.coalesced += 1
            if leader:
                break
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            if flight.result is not None:
                return flight.result, "coalesced"
            # The leader was abandoned (its wait raised through a level
            # that never set result/error); retry from the cache probe.
        try:
            result = compute()
        except BaseException as error:
            flight.error = error
            raise
        else:
            flight.result = result
            if store:
                # Write back under the flight's epoch, never a bare None:
                # an ``epoch=None`` put bypasses the epoch guard, so a
                # leader resolving after a mid-flight invalidate would
                # seed the *new* epoch's cache with a result computed
                # against the retired engine.
                self.put(key, result, epoch=flight_key[1])
            return result, "computed"
        finally:
            with self._lock:
                self._in_flight.pop(flight_key, None)
            flight.done.set()

    def invalidate(self) -> int:
        """Drop every entry and bump the epoch (returns the new epoch).

        Call this whenever the engine behind the cached results is
        rebuilt — entries keyed only by query would otherwise keep
        serving routes of the old graph.  In-flight writes that captured
        the old epoch are discarded on arrival (see :meth:`put`).
        """
        with self._lock:
            self._entries.clear()
            self._route_nodes = 0
            self._epoch += 1
            self._stats.invalidations += 1
            return self._epoch

    def clear(self) -> None:
        """Drop every entry (counters and epoch are kept)."""
        with self._lock:
            self._entries.clear()
            self._route_nodes = 0

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
