"""One construction story for the whole serving stack.

The three service tiers grew their own constructor-kwarg dialects:
cache bounds on both sync services, backend objects on both, partition
config only on the sharded one, wave kernels only on the flat one,
micro-batching knobs only on the async one.  :class:`ServiceConfig`
collects every knob in one frozen dataclass with the same defaults the
constructors use, and :func:`build_service` turns ``(world, config)``
into the right tier:

>>> from repro.service import ServiceConfig, build_service
>>> service = build_service(graph)                       # flat, defaults
>>> service = build_service(world, ServiceConfig(tier="sharded",
...                                              backend="process"))
>>> front = build_service(world, ServiceConfig(tier="async",
...                                            adaptive_target_batch=8))

The old constructors remain supported as thin entry points over the
same machinery — existing code keeps working — but new code should go
through the factory: it is the only spelling that picks the tier from
the *world* you hand it, resolves string backend names, and wires
lifecycle ownership (a factory-built backend is closed by the service's
``close()``; a backend object you pass in stays yours).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.core.engine import KOREngine
from repro.exceptions import QueryError
from repro.graph.digraph import SpatialKeywordGraph
from repro.service.backends import (
    DEFAULT_WORKERS,
    ExecutionBackend,
    backend_from_name,
)
from repro.service.frontend import AsyncQueryService
from repro.service.service import QueryService
from repro.service.sharding import ShardedQueryService
from repro.world import MutableWorld

__all__ = ["ServiceConfig", "build_service"]

#: Accepted ``ServiceConfig.tier`` values.
TIERS = ("auto", "flat", "sharded", "async")


@dataclass(frozen=True)
class ServiceConfig:
    """Every serving-stack knob, in one place, with the stack's defaults.

    Tier selection
    --------------
    ``tier="auto"`` (default) picks ``sharded`` when :func:`build_service`
    receives a :class:`~repro.world.MutableWorld` (or ``num_cells`` is
    set), ``flat`` otherwise.  ``"async"`` wraps that same auto-selected
    sync tier in an :class:`~repro.service.frontend.AsyncQueryService`.

    Execution
    ---------
    ``backend`` is a backend *name* (``"serial"``/``"thread"``/
    ``"process"``, resolved via
    :func:`~repro.service.backends.backend_from_name` with ``workers``
    width), an :class:`~repro.service.backends.ExecutionBackend`
    instance (shared, never closed by the service), or ``None`` for each
    tier's historical default (flat: transient thread pools; sharded: an
    owned thread backend).  ``wave_kernels`` toggles kernel-wave
    dispatch on both sync tiers; ``wave_size`` fixes the wave size
    (``None`` keeps the adaptive controller, see
    :class:`~repro.service.batch.WaveSizeController`).

    The remaining fields mirror the constructor parameters of the same
    name on the sync services (``cache_capacity``,
    ``max_cached_route_nodes``, ``num_cells``, ``seed``) and the async
    front end (``window_seconds`` through ``slo_seconds``).
    """

    tier: str = "auto"
    backend: str | ExecutionBackend | None = None
    workers: int = DEFAULT_WORKERS
    cache_capacity: int = 1024
    max_cached_route_nodes: int | None = None
    wave_kernels: bool = True
    wave_size: int | None = None
    # sharded tier
    num_cells: int | None = None
    seed: int = 0
    # async front end
    window_seconds: float = 0.0
    max_batch: int = 64
    adaptive_target_batch: int | None = None
    max_window_seconds: float = 0.050
    slo_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.tier not in TIERS:
            raise QueryError(
                f"unknown service tier {self.tier!r}; expected one of "
                f"{', '.join(TIERS)}"
            )
        if self.workers < 1:
            raise QueryError(f"workers must be >= 1, got {self.workers}")

    def with_overrides(self, **overrides) -> "ServiceConfig":
        """A copy with *overrides* applied (unknown names rejected)."""
        known = {f.name for f in fields(self)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise QueryError(
                f"unknown ServiceConfig field(s): {', '.join(unknown)}"
            )
        return replace(self, **overrides)


def _sync_tier(config: ServiceConfig, world) -> str:
    if config.tier in ("flat", "sharded"):
        return config.tier
    if isinstance(world, MutableWorld) or config.num_cells is not None:
        return "sharded"
    return "flat"


def build_service(
    world: MutableWorld | SpatialKeywordGraph | KOREngine,
    config: ServiceConfig | None = None,
    **overrides,
):
    """Build the serving tier *config* asks for over *world*.

    ``world`` may be a :class:`~repro.world.MutableWorld` (full live-
    mutation support, required for incremental repair on the sharded
    tier), a bare :class:`~repro.graph.digraph.SpatialKeywordGraph`
    (pre-processing happens here), or an already-built
    :class:`~repro.core.engine.KOREngine` (flat tier reuses it as-is;
    other tiers re-process its graph).  Keyword *overrides* are applied
    on top of *config* (itself defaulting to ``ServiceConfig()``), so
    quick call sites can skip the dataclass:
    ``build_service(graph, backend="process", workers=8)``.

    Returns a :class:`~repro.service.service.QueryService`,
    :class:`~repro.service.sharding.ShardedQueryService` or
    :class:`~repro.service.frontend.AsyncQueryService` per
    ``config.tier``.  A backend given by *name* is constructed here and
    owned by the returned service (its ``close()`` closes the backend);
    a backend instance is shared and left alone.
    """
    config = config if config is not None else ServiceConfig()
    if overrides:
        config = config.with_overrides(**overrides)

    backend = config.backend
    owns_backend = False
    if isinstance(backend, str):
        backend = backend_from_name(backend, workers=config.workers)
        owns_backend = True

    tier = _sync_tier(config, world)
    if tier == "sharded":
        if isinstance(world, MutableWorld):
            service = ShardedQueryService(
                world=world,
                backend=backend,
                cache_capacity=config.cache_capacity,
                default_workers=config.workers,
                max_cached_route_nodes=config.max_cached_route_nodes,
                wave_kernels=config.wave_kernels,
                wave_size=config.wave_size,
            )
        else:
            graph = world.graph if isinstance(world, KOREngine) else world
            service = ShardedQueryService(
                graph,
                num_cells=config.num_cells,
                seed=config.seed,
                backend=backend,
                cache_capacity=config.cache_capacity,
                default_workers=config.workers,
                max_cached_route_nodes=config.max_cached_route_nodes,
                wave_kernels=config.wave_kernels,
                wave_size=config.wave_size,
            )
        if owns_backend:
            # The service normally only owns a backend it defaulted into
            # existence; a factory-built one has no other owner either.
            service._owns_backend = True
    else:
        if isinstance(world, KOREngine):
            engine = world
        else:
            graph = world.graph if isinstance(world, MutableWorld) else world
            engine = KOREngine(graph)
        service = QueryService(
            engine,
            cache_capacity=config.cache_capacity,
            default_workers=config.workers,
            backend=backend,
            max_cached_route_nodes=config.max_cached_route_nodes,
            wave_kernels=config.wave_kernels,
            wave_size=config.wave_size,
        )
        if owns_backend:
            service._owns_backend = True

    if config.tier == "async":
        return AsyncQueryService(
            service,
            window_seconds=config.window_seconds,
            max_batch=config.max_batch,
            close_service=True,
            adaptive_target_batch=config.adaptive_target_batch,
            max_window_seconds=config.max_window_seconds,
            slo_seconds=config.slo_seconds,
        )
    return service
