"""Batch execution: dedup, shared candidate sets, pluggable fan-out.

``execute_batch`` is the engine room of ``QueryService.run_batch``:

1. every slot is probed against the result cache (canonical keys, so a
   reordered keyword list still hits);
2. the remaining misses are deduplicated *within* the batch — two slots
   with the same canonical key share one computation;
3. the union of the miss queries' keywords is resolved through the
   engine's index in a single ``candidate_sets`` call, so a keyword
   shared by hundreds of queries costs one posting lookup;
4. unique computations fan out over the caller's
   :class:`repro.service.backends.ExecutionBackend` — an in-process
   backend (serial / thread pool) runs closures sharing the engine and
   the candidate map directly, while an out-of-process backend receives
   picklable :class:`~repro.service.backends.ShardTask` work addressed
   at the engine's registered handle (each worker process resolves its
   own binding; candidate sharing is an in-process optimisation only);
5. unique computations are grouped into **waves** of up to
   ``wave_size`` queries (``wave_kernels=True``, the default) — one
   kernel invocation (:func:`repro.core.kernels.run_wave`) per wave
   instead of one submission per query — with bit-identical results and
   per-member failure containment; a wave whose submission breaks
   outright falls back to per-query tasks;
6. results land back in their slots, so the report's order is the
   submission order no matter how many workers raced.

A slot whose computation raises is reported through its
:class:`BatchItem.error`; nothing about it enters the cache and no other
slot is disturbed.  Cache writes carry the epoch captured before the
batch computed, so a cache invalidated mid-batch (engine swap) never
receives stale routes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.core.deadline import Deadline
from repro.core.engine import KOREngine
from repro.core.kernels import KernelContext, run_wave
from repro.core.query import KORQuery
from repro.core.results import KORResult
from repro.exceptions import QueryError
from repro.service.backends import (
    DEFAULT_WORKERS,
    EngineHandle,
    ExecutionBackend,
    ShardTask,
    ThreadBackend,
    WaveTask,
)
from repro.service.cache import UNCACHEABLE_PARAMS, ResultCache, canonical_cache_key
from repro.service import faults

__all__ = [
    "BatchError",
    "BatchItem",
    "BatchReport",
    "DEFAULT_WAVE_SIZE",
    "MAX_WAVE_SIZE",
    "WaveSizeController",
    "execute_batch",
]

#: How many unique computations one kernel wave carries.  Bigger waves
#: amortise numpy dispatch better (more pooled edges per lockstep step)
#: but serialise more work behind one submission; 32 queries x mean
#: degree ~3 keeps each step's block in the hundreds of lanes.
DEFAULT_WAVE_SIZE = 32

#: Hard ceiling on adaptive growth: beyond this a wave serialises too
#: much work behind one submission slot to be worth the wider blocks.
MAX_WAVE_SIZE = 128

#: Mean out-degree at which the base wave size already pools
#: comfortably wide step blocks (road networks sit around 2-4).
_REFERENCE_OUT_DEGREE = 4.0

#: Arrival rate (queries/second, the micro-batcher's EWMA) above which
#: the controller switches from the base to the grown wave size: under
#: load, larger waves amortise submission overhead that would otherwise
#: dominate; at low rates small waves keep per-wave latency low.
_GROWTH_QPS_THRESHOLD = 64.0


class WaveSizeController:
    """Adaptive wave sizing for the kernel dispatch paths.

    Replaces the fixed ``wave_size=32`` with a two-signal policy:

    * **width** — how wide the pooled out-edge blocks get, proxied by the
      graph's mean out-degree.  A denser graph pools more lanes per
      member, so bigger waves keep amortising numpy dispatch instead of
      just serialising work; the grown size scales the base by
      ``degree / reference_degree``, clamped to ``[base, cap]``.
    * **rate** — the arrival-rate EWMA the micro-batcher already tracks
      (:meth:`~repro.service.frontend.AsyncQueryService.tune` feeds it
      through ``tune_waves``).  Below the threshold the controller stays
      at the base size (latency-friendly); at or above it, waves grow.

    A controller built with ``fixed=True`` (the caller passed an explicit
    ``wave_size``) always returns the base — the knob stays honest.
    """

    def __init__(
        self,
        base: int = DEFAULT_WAVE_SIZE,
        *,
        fixed: bool = False,
        cap: int = MAX_WAVE_SIZE,
        reference_degree: float = _REFERENCE_OUT_DEGREE,
        rate_threshold: float = _GROWTH_QPS_THRESHOLD,
    ) -> None:
        if base < 1:
            raise QueryError(f"wave_size must be >= 1, got {base}")
        self.base = int(base)
        self.fixed = bool(fixed)
        self.cap = max(int(cap), self.base)
        self.reference_degree = float(reference_degree)
        self.rate_threshold = float(rate_threshold)
        self._grown = self.base
        self._arrival_qps = 0.0

    def retarget(self, graph) -> None:
        """Recompute the grown size from *graph*'s mean out-degree.

        Called at service construction and again whenever the engine is
        swapped or the world mutates (the graph's density may change).
        """
        if self.fixed:
            return
        degree = graph.num_edges / max(1, graph.num_nodes)
        scaled = int(self.base * degree / self.reference_degree)
        self._grown = max(self.base, min(self.cap, scaled))

    def observe(self, arrival_qps: float) -> None:
        """Feed the latest arrival-rate estimate (queries/second)."""
        self._arrival_qps = max(0.0, float(arrival_qps))

    @property
    def wave_size(self) -> int:
        """The wave size the next dispatch should use."""
        if self.fixed:
            return self.base
        return self._grown if self._arrival_qps >= self.rate_threshold else self.base

    def describe(self) -> dict:
        """Snapshot of the policy for ``scheduling_stats`` / ``/tune``."""
        return {
            "mode": "fixed" if self.fixed else "adaptive",
            "base": self.base,
            "grown": self._grown,
            "cap": self.cap,
            "rate_threshold": self.rate_threshold,
            "arrival_qps": self._arrival_qps,
            "wave_size": self.wave_size,
        }


@dataclass
class BatchItem:
    """Outcome of one slot of a batch, in submission order."""

    index: int
    query: KORQuery
    result: KORResult | None = None
    error: Exception | None = None
    cached: bool = False
    latency_seconds: float = 0.0
    #: Key of the engine handle the computation was addressed to (the
    #: winning shard on a sharded service); None for cache hits.
    shard: str | None = None
    #: Routing decision of a sharded service (``local`` /
    #: ``endpoints-span-cells`` / ...); None on the flat service and for
    #: cache hits, which never reach the router.
    plan: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the slot produced a result."""
        return self.error is None and self.result is not None


@dataclass
class BatchReport:
    """Everything a batch produced, slot by slot."""

    items: list[BatchItem]
    wall_seconds: float

    @property
    def ok(self) -> bool:
        """Whether every slot succeeded."""
        return all(item.ok for item in self.items)

    @property
    def errors(self) -> dict[int, Exception]:
        """Slot index -> exception, for the slots that failed."""
        return {item.index: item.error for item in self.items if item.error is not None}

    def results(self) -> list[KORResult]:
        """The per-slot results in submission order.

        Raises :class:`BatchError` when any slot failed — use
        :attr:`items` to consume partial outcomes.
        """
        if not self.ok:
            raise BatchError(self)
        return [item.result for item in self.items]


class BatchError(QueryError):
    """Raised when :meth:`BatchReport.results` meets failed slots.

    Carries the full :attr:`report` so callers can still consume the
    slots that did succeed.
    """

    def __init__(self, report: BatchReport) -> None:
        errors = report.errors
        preview = "; ".join(
            f"[{index}] {error}" for index, error in sorted(errors.items())[:3]
        )
        super().__init__(
            f"{len(errors)} of {len(report.items)} batch queries failed: {preview}"
        )
        self.report = report


@dataclass
class _Unit:
    """One unique computation, shared by every slot with its key."""

    query: KORQuery
    slots: list[int]
    key: Hashable | None = None
    result: KORResult | None = None
    error: Exception | None = None
    latency_seconds: float = 0.0
    shard: str | None = None
    plan: str | None = None


def dedup_units(
    items: list[BatchItem],
    keys: list[Hashable | None],
    cache: ResultCache,
    cacheable: bool,
    epoch: int | None,
) -> list[_Unit]:
    """Probe the cache and fold the misses into per-key units.

    Cache hits are written straight into their items; the returned units
    cover exactly the slots that still need computing, deduplicated by
    canonical key within the batch.
    """
    units: list[_Unit] = []
    by_key: dict[Hashable, _Unit] = {}
    for item in items:
        key = keys[item.index]
        hit = cache.get(key, epoch=epoch) if cacheable else None
        if hit is not None:
            item.result = hit
            item.cached = True
            continue
        if cacheable and key in by_key:
            by_key[key].slots.append(item.index)
            continue
        unit = _Unit(query=item.query, slots=[item.index], key=key)
        units.append(unit)
        if cacheable:
            by_key[key] = unit
    return units


def batch_keys(
    queries: Sequence[KORQuery], algorithm: str, params: dict
) -> tuple[bool, list[Hashable | None]]:
    """Canonical keys for a batch (and whether it is cacheable at all)."""
    cacheable = not (UNCACHEABLE_PARAMS & params.keys())
    if cacheable:
        try:
            return True, [canonical_cache_key(q, algorithm, params) for q in queries]
        except QueryError:
            # Unhashable parameter values: serve the batch, skip the cache.
            pass
    return False, [None] * len(queries)


def execute_batch(
    engine: KOREngine,
    cache: ResultCache,
    queries: Sequence[KORQuery],
    algorithm: str = "bucketbound",
    workers: int | None = None,
    params: dict | None = None,
    backend: ExecutionBackend | None = None,
    handle: EngineHandle | None = None,
    deadline: Deadline | None = None,
    wave_kernels: bool = True,
    wave_size: int = DEFAULT_WAVE_SIZE,
    stats=None,
) -> BatchReport:
    """Run *queries* through *engine* with caching and shared candidates.

    ``backend`` picks the execution strategy (default: a transient
    :class:`~repro.service.backends.ThreadBackend`, the pre-backend
    behaviour).  An out-of-process backend additionally needs ``handle``
    — the engine's registered :class:`EngineHandle` — so tasks can name
    the engine across the process boundary.  ``deadline``, when given,
    travels out-of-band into every unit's engine run (it never enters
    cache keys); a slot whose search outlives it fails with
    :class:`~repro.exceptions.DeadlineExceeded` without disturbing its
    neighbours, and nothing about it is cached.

    ``wave_kernels`` (default on) groups the batch's unique computations
    into waves of up to ``wave_size`` queries, each executed through one
    :func:`repro.core.kernels.run_wave` invocation — numpy lockstep for
    the eligible label-correcting algorithms, per-member execution (with
    shared candidates) otherwise.  Results are bit-identical to the
    per-query path; a wave whose submission breaks outright is resubmitted
    member by member, so containment matches the per-query path too.

    ``stats``, when given, is a :class:`~repro.service.stats.ServiceStats`
    (or anything with ``record_wave`` / ``record_wave_solo``) receiving
    the wave-dispatch occupancy counters.
    """
    params = dict(params or {})
    if "binding" in params or "candidates" in params:
        # A binding describes exactly one query and the executor builds its
        # own shared candidate map, so a batch-wide value is always wrong.
        raise QueryError(
            "'binding'/'candidates' cannot be passed to a batch: they are "
            "per-query; use engine.run() directly to supply them"
        )
    if "deadline" in params:
        # Deadlines travel out-of-band (the ``deadline=`` argument) so
        # cache keys and wave grouping never see them.
        raise QueryError(
            "'deadline' is not a query parameter; pass deadline= to the "
            "service call instead"
        )
    if wave_size < 1:
        raise QueryError(f"wave_size must be >= 1, got {wave_size}")
    begin = time.perf_counter()
    queries = list(queries)
    items = [BatchItem(index=i, query=query) for i, query in enumerate(queries)]

    cacheable, keys = batch_keys(queries, algorithm, params)
    epoch = cache.epoch if cacheable else None
    units = dedup_units(items, keys, cache, cacheable, epoch)

    if units:
        owned: ThreadBackend | None = None
        if backend is None:
            # Pools are persistent now, so a transient default backend
            # must be closed with the batch — and sized to the call's
            # workers, preserving the old per-batch pool semantics.
            backend = owned = ThreadBackend(workers if workers is not None else DEFAULT_WORKERS)
        try:
            if backend.in_process:
                _compute_in_process(
                    engine,
                    units,
                    algorithm,
                    params,
                    backend,
                    workers,
                    deadline,
                    shard=handle.key if handle is not None else "local",
                    wave_kernels=wave_kernels,
                    wave_size=wave_size,
                    stats=stats,
                )
            else:
                _compute_on_backend(
                    units,
                    algorithm,
                    params,
                    backend,
                    handle,
                    workers,
                    deadline,
                    wave_kernels=wave_kernels,
                    wave_size=wave_size,
                    stats=stats,
                )
        finally:
            if owned is not None:
                owned.close()

        shard_key = handle.key if handle is not None else None
        for unit in units:
            if unit.error is None and cacheable:
                cache.put(unit.key, unit.result, epoch=epoch)
            for slot in unit.slots:
                items[slot].result = unit.result
                items[slot].error = unit.error
                items[slot].latency_seconds = unit.latency_seconds
                items[slot].shard = shard_key

    return BatchReport(items=items, wall_seconds=time.perf_counter() - begin)


@dataclass(frozen=True)
class _LocalTask:
    """What an in-process unit looks like to a fault plan's task hook."""

    shard: str
    query: KORQuery


def _chunked(units: list[_Unit], size: int) -> list[list[_Unit]]:
    return [units[i : i + size] for i in range(0, len(units), size)]


def _fill_unit(unit: _Unit, outcome) -> None:
    unit.result = outcome.result
    unit.error = outcome.error
    unit.latency_seconds = outcome.latency_seconds


def _compute_in_process(
    engine: KOREngine,
    units: list[_Unit],
    algorithm: str,
    params: dict,
    backend: ExecutionBackend,
    workers: int | None,
    deadline: Deadline | None = None,
    shard: str = "local",
    wave_kernels: bool = True,
    wave_size: int = DEFAULT_WAVE_SIZE,
    stats=None,
) -> None:
    """Closure path: shared candidate map, live engine, backend.map."""
    # One index pass for the whole batch: the union of every miss
    # query's keywords, resolved to candidate node sets exactly once.
    words = {word for unit in units for word in unit.query.keywords}
    candidates = engine.candidate_sets(words) if words else {}
    if wave_kernels and len(units) > 1:
        _compute_waves_in_process(
            engine, units, algorithm, params, backend, workers,
            deadline, shard, candidates, wave_size, stats,
        )
        return
    if deadline is not None:
        params = {**params, "deadline": deadline}

    def compute(unit: _Unit) -> None:
        unit_begin = time.perf_counter()
        try:
            # Same fault hook as run_task_on_engine: one global load
            # plus a None check when no plan is installed.
            plan = faults._ACTIVE
            if plan is not None:
                plan.on_task(_LocalTask(shard, unit.query))
            binding = engine.bind(unit.query, candidates=candidates)
            unit.result = engine.run(
                unit.query, algorithm=algorithm, binding=binding, **params
            )
        except Exception as error:  # noqa: BLE001 - reported per slot
            unit.error = error
        unit.latency_seconds = time.perf_counter() - unit_begin

    backend.map(compute, units, workers=workers)


def _compute_waves_in_process(
    engine: KOREngine,
    units: list[_Unit],
    algorithm: str,
    params: dict,
    backend: ExecutionBackend,
    workers: int | None,
    deadline: Deadline | None,
    shard: str,
    candidates: dict,
    wave_size: int,
    stats=None,
) -> None:
    """Wave path on a live engine: chunk the unique computations into
    waves and run each through one kernel invocation (waves themselves
    still fan out over the backend)."""
    kctx = KernelContext(engine.graph, engine.tables)
    chunks = _chunked(units, wave_size)
    if stats is not None:
        for chunk in chunks:
            if len(chunk) > 1:
                stats.record_wave(len(chunk), wave_size)
            else:
                stats.record_wave_solo()

    def compute(chunk: list[_Unit]) -> None:
        # Same fault hook as the per-unit closure: members present to the
        # plan as _LocalTask, one global load when no plan is installed.
        plan = faults._ACTIVE
        on_member = None
        if plan is not None:

            def on_member(_index: int, query: KORQuery, _plan=plan) -> None:
                _plan.on_task(_LocalTask(shard, query))

        outcomes = run_wave(
            engine,
            [unit.query for unit in chunk],
            algorithm,
            params,
            candidates=candidates,
            deadline=deadline,
            on_member=on_member,
            kernel_context=kctx,
        )
        for unit, outcome in zip(chunk, outcomes):
            _fill_unit(unit, outcome)

    backend.map(compute, chunks, workers=workers)


def _compute_on_backend(
    units: list[_Unit],
    algorithm: str,
    params: dict,
    backend: ExecutionBackend,
    handle: EngineHandle | None,
    workers: int | None,
    deadline: Deadline | None = None,
    wave_kernels: bool = True,
    wave_size: int = DEFAULT_WAVE_SIZE,
    stats=None,
) -> None:
    """Task path: picklable ShardTasks against the engine's handle."""
    if handle is None:
        raise QueryError(
            f"{type(backend).__name__} needs the engine's EngineHandle to "
            "address work across the process boundary; pass handle="
        )
    if "trace" in params:
        # The worker would fill a pickled *copy* of the caller's trace
        # sink; refusing beats silently returning an empty trace.
        raise QueryError(
            "'trace' cannot cross the process boundary: run traced queries "
            "on an in-process backend (serial/thread) or engine.run()"
        )
    if wave_kernels and len(units) > 1:
        leftovers = _compute_waves_on_backend(
            units, algorithm, params, backend, handle, deadline, wave_size, stats
        )
        if not leftovers:
            return
        units = leftovers
        if stats is not None:
            stats.record_wave_solo(len(leftovers))
    tasks = [
        ShardTask.build(handle.key, unit.query, algorithm, params, deadline=deadline)
        for unit in units
    ]
    outcomes = backend.run_tasks(tasks, workers=workers)
    for unit, outcome in zip(units, outcomes):
        _fill_unit(unit, outcome)


def _compute_waves_on_backend(
    units: list[_Unit],
    algorithm: str,
    params: dict,
    backend: ExecutionBackend,
    handle: EngineHandle,
    deadline: Deadline | None,
    wave_size: int,
    stats=None,
) -> list[_Unit]:
    """Submit the units as :class:`WaveTask` work; return the units of
    any wave whose *submission* broke (worker dead beyond retry,
    cancellation) so the caller re-runs them as per-query tasks.

    Member-level failures are not leftovers — they arrive inside the
    wave's outcome list and land in their units like any task error.
    """
    chunks = _chunked(units, wave_size)
    waves = [
        WaveTask.build(
            handle.key, [u.query for u in chunk], algorithm, params, deadline=deadline
        )
        for chunk in chunks
    ]
    if stats is not None:
        for chunk in chunks:
            if len(chunk) > 1:
                stats.record_wave(len(chunk), wave_size)
            else:
                stats.record_wave_solo()
    futures = [backend.submit_wave(wave) for wave in waves]
    leftovers: list[_Unit] = []
    for chunk, future in zip(chunks, futures):
        try:
            outcomes = future.result()
        except Exception:  # noqa: BLE001 - broken wave, degrade per query
            leftovers.extend(chunk)
            continue
        if not isinstance(outcomes, list) or len(outcomes) != len(chunk):
            leftovers.extend(chunk)
            continue
        for unit, outcome in zip(chunk, outcomes):
            _fill_unit(unit, outcome)
    return leftovers
