"""Batch execution: dedup, shared candidate sets, concurrent fan-out.

``execute_batch`` is the engine room of ``QueryService.run_batch``:

1. every slot is probed against the result cache (canonical keys, so a
   reordered keyword list still hits);
2. the remaining misses are deduplicated *within* the batch — two slots
   with the same canonical key share one computation;
3. the union of the miss queries' keywords is resolved through the
   engine's index in a single ``candidate_sets`` call, so a keyword
   shared by hundreds of queries costs one posting lookup;
4. unique computations fan out over a ``ThreadPoolExecutor`` (every
   per-query structure — binding, labels, scaling — is private to its
   task; the graph, tables and candidate map are only read);
5. results land back in their slots, so the report's order is the
   submission order no matter how many workers raced.

A slot whose computation raises is reported through its
:class:`BatchItem.error`; nothing about it enters the cache and no other
slot is disturbed.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.core.engine import KOREngine
from repro.core.query import KORQuery
from repro.core.results import KORResult
from repro.exceptions import QueryError
from repro.service.cache import UNCACHEABLE_PARAMS, ResultCache, canonical_cache_key

__all__ = ["BatchError", "BatchItem", "BatchReport", "execute_batch"]

#: Fan-out width when the caller does not pick one.
DEFAULT_WORKERS = 4


@dataclass
class BatchItem:
    """Outcome of one slot of a batch, in submission order."""

    index: int
    query: KORQuery
    result: KORResult | None = None
    error: Exception | None = None
    cached: bool = False
    latency_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the slot produced a result."""
        return self.error is None and self.result is not None


@dataclass
class BatchReport:
    """Everything a batch produced, slot by slot."""

    items: list[BatchItem]
    wall_seconds: float

    @property
    def ok(self) -> bool:
        """Whether every slot succeeded."""
        return all(item.ok for item in self.items)

    @property
    def errors(self) -> dict[int, Exception]:
        """Slot index -> exception, for the slots that failed."""
        return {item.index: item.error for item in self.items if item.error is not None}

    def results(self) -> list[KORResult]:
        """The per-slot results in submission order.

        Raises :class:`BatchError` when any slot failed — use
        :attr:`items` to consume partial outcomes.
        """
        if not self.ok:
            raise BatchError(self)
        return [item.result for item in self.items]


class BatchError(QueryError):
    """Raised when :meth:`BatchReport.results` meets failed slots.

    Carries the full :attr:`report` so callers can still consume the
    slots that did succeed.
    """

    def __init__(self, report: BatchReport) -> None:
        errors = report.errors
        preview = "; ".join(
            f"[{index}] {error}" for index, error in sorted(errors.items())[:3]
        )
        super().__init__(
            f"{len(errors)} of {len(report.items)} batch queries failed: {preview}"
        )
        self.report = report


@dataclass
class _Unit:
    """One unique computation, shared by every slot with its key."""

    query: KORQuery
    slots: list[int]
    key: Hashable | None = None
    result: KORResult | None = None
    error: Exception | None = None
    latency_seconds: float = 0.0


def execute_batch(
    engine: KOREngine,
    cache: ResultCache,
    queries: Sequence[KORQuery],
    algorithm: str = "bucketbound",
    workers: int | None = None,
    params: dict | None = None,
) -> BatchReport:
    """Run *queries* through *engine* with caching and shared candidates."""
    params = dict(params or {})
    if "binding" in params or "candidates" in params:
        # A binding describes exactly one query and the executor builds its
        # own shared candidate map, so a batch-wide value is always wrong.
        raise QueryError(
            "'binding'/'candidates' cannot be passed to a batch: they are "
            "per-query; use engine.run() directly to supply them"
        )
    begin = time.perf_counter()
    queries = list(queries)
    items = [BatchItem(index=i, query=query) for i, query in enumerate(queries)]

    cacheable = not (UNCACHEABLE_PARAMS & params.keys())
    keys: list[Hashable | None] = [None] * len(queries)
    if cacheable:
        try:
            keys = [canonical_cache_key(q, algorithm, params) for q in queries]
        except QueryError:
            # Unhashable parameter values: serve the batch, skip the cache.
            cacheable = False
            keys = [None] * len(queries)

    # Probe the cache; collect misses into per-key units (in-batch dedup).
    units: list[_Unit] = []
    by_key: dict[Hashable, _Unit] = {}
    for item in items:
        key = keys[item.index]
        hit = cache.get(key) if cacheable else None
        if hit is not None:
            item.result = hit
            item.cached = True
            continue
        if cacheable and key in by_key:
            by_key[key].slots.append(item.index)
            continue
        unit = _Unit(query=item.query, slots=[item.index], key=key)
        units.append(unit)
        if cacheable:
            by_key[key] = unit

    if units:
        # One index pass for the whole batch: the union of every miss
        # query's keywords, resolved to candidate node sets exactly once.
        words = {word for unit in units for word in unit.query.keywords}
        candidates = engine.candidate_sets(words) if words else {}

        def compute(unit: _Unit) -> None:
            unit_begin = time.perf_counter()
            try:
                binding = engine.bind(unit.query, candidates=candidates)
                unit.result = engine.run(
                    unit.query, algorithm=algorithm, binding=binding, **params
                )
            except Exception as error:  # noqa: BLE001 - reported per slot
                unit.error = error
            unit.latency_seconds = time.perf_counter() - unit_begin

        effective = workers if workers is not None else DEFAULT_WORKERS
        if effective <= 1 or len(units) == 1:
            for unit in units:
                compute(unit)
        else:
            with ThreadPoolExecutor(max_workers=effective) as pool:
                list(pool.map(compute, units))

        for unit in units:
            if unit.error is None and cacheable:
                cache.put(unit.key, unit.result)
            for slot in unit.slots:
                items[slot].result = unit.result
                items[slot].error = unit.error
                items[slot].latency_seconds = unit.latency_seconds

    return BatchReport(items=items, wall_seconds=time.perf_counter() - begin)
