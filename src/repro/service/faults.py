"""Deterministic fault injection for the serving stack.

A :class:`FaultPlan` is a seeded, schedulable list of :class:`FaultRule`
entries — *kill worker N at dispatch K*, *delay the first M tasks of a
shard*, *fail a task with an injected error*, *drop a lane* — installed
process-wide with :func:`install` / :func:`injected`.  The hooks sit on
the two choke points every backend shares:

* :func:`repro.service.backends.run_task_on_engine` calls
  :meth:`FaultPlan.on_task` before running the engine (covers the
  serial and thread backends in-process, and process-pool workers via
  rules shipped through the pool initializer);
* ``ProcessBackend._dispatch`` calls :meth:`FaultPlan.on_dispatch`
  after routing, parent-side — where a worker pid is known and can be
  SIGKILLed at an exact dispatch count.

**Zero overhead when off**: both hooks are a single module-global load
plus a ``None`` check; no plan installed means no extra work on the hot
path.  Rules fire on exact event counts (``after`` matching events skip,
then ``times`` firings), so a chaos run with a fixed plan and a fixed
workload replays the same fault schedule every time.

The chaos suites (`tests/service/test_chaos.py`) drive seeded plans
through the differential oracle: every response that *survives* a fault
plan must be byte-identical to the flat engine's answer — faults may
cost retries, degraded flags or errors, never silently-wrong routes.
"""

from __future__ import annotations

import contextlib
import os
import signal
import threading
import time
from dataclasses import dataclass, field

from repro.exceptions import QueryError

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "active",
    "clear",
    "corrupt_then_invalidate",
    "injected",
    "install",
]

#: Rule kinds applied task-side (inside ``run_task_on_engine``).
TASK_KINDS = frozenset({"delay_task", "error_task"})
#: Rule kinds applied parent-side at dispatch (``ProcessBackend``).
DISPATCH_KINDS = frozenset({"kill_worker", "drop_lane"})


class FaultInjected(QueryError):
    """The error raised by an ``error_task`` rule (pickles cleanly)."""


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault.

    ``kind`` selects the mechanism:

    ``"delay_task"``
        Sleep ``seconds`` before running a matching task (slow shard /
        slow worker — the deadline-miss generator).
    ``"error_task"``
        Raise :class:`FaultInjected` instead of running a matching task.
    ``"kill_worker"``
        SIGKILL the worker process of the lane a matching task was just
        routed to (process backend only).
    ``"drop_lane"``
        Like ``kill_worker``, but keyed on the lane alone: every
        dispatch routed to lane ``lane`` kills its worker, until
        ``times`` runs out — the breaker-opening fault.

    ``shard`` (substring ``None`` = any) filters which tasks count as
    *matching events*; ``lane`` filters dispatch-side rules by lane
    index.  The first ``after`` matching events pass untouched, then the
    rule fires ``times`` times and goes dormant.
    """

    kind: str
    shard: str | None = None
    lane: int | None = None
    after: int = 0
    times: int = 1
    seconds: float = 0.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in TASK_KINDS | DISPATCH_KINDS:
            raise QueryError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(TASK_KINDS | DISPATCH_KINDS)}"
            )
        if self.after < 0 or self.times < 0 or self.seconds < 0:
            raise QueryError("fault rule counts and durations must be >= 0")


@dataclass
class _RuleState:
    """Mutable firing state of one rule (plan-local, lock-guarded)."""

    seen: int = 0
    fired: int = 0


class FaultPlan:
    """A set of rules plus their firing state and an event log."""

    def __init__(self, rules: tuple[FaultRule, ...] | list[FaultRule]) -> None:
        self.rules = tuple(rules)
        self._lock = threading.Lock()
        self._states = [_RuleState() for _ in self.rules]
        #: Human-readable record of every fault that actually fired —
        #: the chaos tests assert the plan executed as scheduled.
        self.log: list[str] = []

    def _claim(self, index: int) -> bool:
        """Count one matching event against rule *index*; True = fire now."""
        rule = self.rules[index]
        with self._lock:
            state = self._states[index]
            state.seen += 1
            if state.seen <= rule.after or state.fired >= rule.times:
                return False
            state.fired += 1
            return True

    def fired(self) -> dict[int, int]:
        """Firing count per rule index (only rules that fired)."""
        with self._lock:
            return {
                index: state.fired
                for index, state in enumerate(self._states)
                if state.fired
            }

    # -- hooks ----------------------------------------------------------
    def on_task(self, task) -> None:
        """Task-side hook: delay or fail a matching task."""
        for index, rule in enumerate(self.rules):
            if rule.kind not in TASK_KINDS:
                continue
            if rule.shard is not None and rule.shard not in task.shard:
                continue
            if not self._claim(index):
                continue
            if rule.kind == "delay_task":
                with self._lock:
                    self.log.append(f"delay_task {task.shard} {rule.seconds}s")
                time.sleep(rule.seconds)
            else:
                with self._lock:
                    self.log.append(f"error_task {task.shard}")
                raise FaultInjected(rule.message)

    def on_dispatch(self, lane_index: int, executor, task) -> None:
        """Parent-side hook: kill the routed lane's worker on schedule."""
        for index, rule in enumerate(self.rules):
            if rule.kind not in DISPATCH_KINDS:
                continue
            if rule.lane is not None and rule.lane != lane_index:
                continue
            if rule.shard is not None and rule.shard not in task.shard:
                continue
            if not self._claim(index):
                continue
            with self._lock:
                self.log.append(f"{rule.kind} lane={lane_index} shard={task.shard}")
            _kill_executor_workers(executor)

    def worker_rules(self) -> tuple[FaultRule, ...]:
        """The task-side rules, picklable for process-pool initializers.

        Worker-side firing state is per worker (each process counts its
        own matching events), which keeps the schedule deterministic for
        a fixed routing — the frozen rules themselves carry no state.
        """
        return tuple(rule for rule in self.rules if rule.kind in TASK_KINDS)


def _kill_executor_workers(executor) -> None:
    """SIGKILL every worker process of a ``ProcessPoolExecutor``.

    Pools spawn workers lazily on first submit, so a kill scheduled
    before the lane ever ran a task would find nothing to kill; a
    round-trip no-op spawns the worker first — the scheduled fault is
    real either way.
    """
    processes = getattr(executor, "_processes", None) or {}
    if not processes:
        with contextlib.suppress(Exception):
            executor.submit(os.getpid).result(timeout=60.0)
        processes = getattr(executor, "_processes", None) or {}
    for pid in list(processes):
        with contextlib.suppress(ProcessLookupError, PermissionError):
            os.kill(pid, signal.SIGKILL)


# ----------------------------------------------------------------------
# process-wide installation (the zero-overhead-when-off switch)
# ----------------------------------------------------------------------

#: The installed plan; hooks read this one global and bail on ``None``.
_ACTIVE: FaultPlan | None = None


def install(plan: FaultPlan) -> FaultPlan:
    """Install *plan* process-wide (replacing any previous plan)."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def clear() -> None:
    """Remove the installed plan (hooks become no-ops again)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> FaultPlan | None:
    """The installed plan, if any."""
    return _ACTIVE


def worker_rules() -> tuple[FaultRule, ...]:
    """Task-side rules of the active plan (what pool initializers ship)."""
    return _ACTIVE.worker_rules() if _ACTIVE is not None else ()


@contextlib.contextmanager
def injected(plan: FaultPlan):
    """Install *plan* for the duration of a ``with`` block."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


# ----------------------------------------------------------------------
# cache fault
# ----------------------------------------------------------------------


def corrupt_then_invalidate(cache, key, bogus) -> int:
    """Plant a corrupt entry under *key*, then invalidate the epoch.

    Models an engine swap racing a poisoned write: the bogus result is
    stored, the epoch bump wipes it, and any in-flight write that
    captured the old epoch is dropped on arrival — callers probing with
    the new epoch can never observe *bogus*.  Returns the new epoch.
    """
    cache.put(key, bogus)
    return cache.invalidate()
