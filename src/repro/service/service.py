"""``QueryService`` — the serving layer's front door.

Single queries go through :meth:`QueryService.submit` (cache probe,
compute on miss, record metrics); query lists go through
:meth:`QueryService.run_batch` / :meth:`QueryService.execute`, which add
in-batch dedup, one shared candidate-set pass over the index, and a
thread-pool fan-out (see :mod:`repro.service.batch`).

The service never mutates its engine: the graph, cost tables and index
are read-only at serve time, which is what makes the concurrent paths
safe.  Results handed out for cache hits are the *same objects* the
first computation produced — treat ``KORResult`` as immutable (its
``query`` attribute names the query that first computed the entry).
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from repro.core.engine import ALGORITHMS, KOREngine
from repro.core.query import KORQuery
from repro.core.results import KORResult
from repro.exceptions import QueryError
from repro.service.batch import DEFAULT_WORKERS, BatchReport, execute_batch
from repro.service.cache import UNCACHEABLE_PARAMS, ResultCache, canonical_cache_key
from repro.service.stats import ServiceStats, StatsSnapshot

__all__ = ["QueryService"]


class QueryService:
    """Batched, cached, concurrent serving over one :class:`KOREngine`.

    Parameters
    ----------
    engine:
        The pre-processed engine to serve from.
    cache_capacity:
        LRU result-cache size in entries; 0 disables caching.
    default_workers:
        Fan-out width :meth:`run_batch` uses when the call does not pick
        one.
    """

    def __init__(
        self,
        engine: KOREngine,
        cache_capacity: int = 1024,
        default_workers: int = DEFAULT_WORKERS,
    ) -> None:
        if default_workers < 1:
            raise QueryError(f"default_workers must be >= 1, got {default_workers}")
        self._engine = engine
        self._cache = ResultCache(cache_capacity)
        self._stats = ServiceStats()
        self._default_workers = default_workers

    @classmethod
    def from_graph(cls, graph, **kwargs) -> "QueryService":
        """Convenience: pre-process *graph* and serve it."""
        return cls(KOREngine(graph), **kwargs)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def engine(self) -> KOREngine:
        """The wrapped engine."""
        return self._engine

    @property
    def cache(self) -> ResultCache:
        """The canonicalizing LRU result cache."""
        return self._cache

    @property
    def stats(self) -> ServiceStats:
        """Serving metrics (latency percentiles, hit rate, throughput)."""
        return self._stats

    def snapshot(self) -> StatsSnapshot:
        """Shorthand for ``service.stats.snapshot()``."""
        return self._stats.snapshot()

    # ------------------------------------------------------------------
    # single queries
    # ------------------------------------------------------------------
    def query(
        self,
        source: int,
        target: int,
        keywords: Iterable[str],
        budget_limit: float,
        algorithm: str = "bucketbound",
        **params,
    ) -> KORResult:
        """Answer one KOR query through the cache (mirrors ``engine.query``)."""
        return self.submit(
            KORQuery(source, target, tuple(keywords), budget_limit),
            algorithm=algorithm,
            **params,
        )

    def submit(
        self, query: KORQuery, algorithm: str = "bucketbound", **params
    ) -> KORResult:
        """Answer a pre-built query, serving repeats from the cache.

        Calls carrying uncacheable parameters (``trace`` and friends, see
        :data:`repro.service.cache.UNCACHEABLE_PARAMS`) bypass the cache
        in both directions but still feed the metrics.
        """
        begin = time.perf_counter()
        cacheable = not (UNCACHEABLE_PARAMS & params.keys())
        key = canonical_cache_key(query, algorithm, params) if cacheable else None
        if cacheable:
            hit = self._cache.get(key)
            if hit is not None:
                elapsed = time.perf_counter() - begin
                self._stats.record_query(elapsed, cached=True)
                self._stats.record_busy(elapsed)
                return hit
        try:
            result = self._engine.run(query, algorithm=algorithm, **params)
        except Exception:
            self._stats.record_error()
            self._stats.record_busy(time.perf_counter() - begin)
            raise
        if cacheable:
            self._cache.put(key, result)
        elapsed = time.perf_counter() - begin
        self._stats.record_query(elapsed, cached=False)
        self._stats.record_busy(elapsed)
        return result

    # ------------------------------------------------------------------
    # batches
    # ------------------------------------------------------------------
    def execute(
        self,
        queries: Sequence[KORQuery],
        algorithm: str = "bucketbound",
        workers: int | None = None,
        **params,
    ) -> BatchReport:
        """Run a batch, returning the full per-slot :class:`BatchReport`.

        Failed slots carry their exception; successful slots are cached
        and unaffected.  Slot order is the submission order regardless of
        ``workers``.
        """
        if algorithm not in ALGORITHMS:
            raise QueryError(
                f"unknown algorithm {algorithm!r}; expected one of {', '.join(ALGORITHMS)}"
            )
        report = execute_batch(
            self._engine,
            self._cache,
            queries,
            algorithm=algorithm,
            workers=workers if workers is not None else self._default_workers,
            params=params,
        )
        for item in report.items:
            if item.ok:
                self._stats.record_query(item.latency_seconds, cached=item.cached)
            else:
                self._stats.record_error()
        self._stats.record_busy(report.wall_seconds)
        return report

    def run_batch(
        self,
        queries: Sequence[KORQuery],
        algorithm: str = "bucketbound",
        workers: int | None = None,
        **params,
    ) -> list[KORResult]:
        """Run a batch and return its results in submission order.

        Raises :class:`repro.service.batch.BatchError` (carrying the full
        report) when any slot failed.
        """
        return self.execute(
            queries, algorithm=algorithm, workers=workers, **params
        ).results()
