"""``QueryService`` — the serving layer's front door.

Single queries go through :meth:`QueryService.submit` (cache probe,
compute on miss, record metrics); query lists go through
:meth:`QueryService.run_batch` / :meth:`QueryService.execute`, which add
in-batch dedup, one shared candidate-set pass over the index, and a
fan-out over a pluggable execution backend (see
:mod:`repro.service.batch` and :mod:`repro.service.backends`).

The service never mutates its engine: the graph, cost tables and index
are read-only at serve time, which is what makes the concurrent paths
safe.  Results handed out for cache hits are the *same objects* the
first computation produced — treat ``KORResult`` as immutable (its
``query`` attribute names the query that first computed the entry).

Swapping the engine (:meth:`QueryService.replace_engine`) invalidates
the cache — keys describe only the query, so entries computed against
the old graph must not survive the swap.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Mapping, Sequence

from repro.core.deadline import Deadline
from repro.core.engine import ALGORITHMS, KOREngine
from repro.core.query import KORQuery
from repro.core.results import KORResult
from repro.exceptions import QueryError
from repro.graph.mutation import GraphMutator, resolve_ops
from repro.service.backends import (
    DEFAULT_WORKERS,
    EngineHandle,
    ExecutionBackend,
    PartPatch,
)
from repro.service.batch import (
    BatchReport,
    WaveSizeController,
    _LocalTask,
    execute_batch,
)
from repro.service import faults
from repro.service.cache import UNCACHEABLE_PARAMS, ResultCache, canonical_cache_key
from repro.service.stats import ServiceStats, StatsSnapshot

__all__ = ["QueryService"]


class QueryService:
    """Batched, cached, concurrent serving over one :class:`KOREngine`.

    Parameters
    ----------
    engine:
        The pre-processed engine to serve from.
    cache_capacity:
        LRU result-cache size in entries; 0 disables caching.
    default_workers:
        Fan-out width :meth:`run_batch` uses when the call does not pick
        one (in-process backends only — a process pool's width is fixed
        at backend construction).
    backend:
        Execution strategy for batches.  ``None`` (default) keeps PR 1's
        behaviour: a transient thread pool per batch.  Passing a
        :class:`~repro.service.backends.ProcessBackend` moves the
        compute out of the GIL; the service registers its engine with
        the backend automatically.
    max_cached_route_nodes:
        Optional total-route-size budget for the cache (results store
        full routes); see :class:`~repro.service.cache.ResultCache`.
    wave_kernels:
        Whether batches group their unique computations into numpy
        kernel waves (default True; see :mod:`repro.core.kernels`).
        Results are identical either way — turn off to force the
        one-submission-per-query path (e.g. when profiling it).
    wave_size:
        Fixed wave size, or ``None`` (default) for adaptive sizing: a
        :class:`~repro.service.batch.WaveSizeController` grows waves
        from the default when the graph's out-edge blocks are wide and
        the observed arrival rate is high (see :meth:`tune_waves`).
    """

    def __init__(
        self,
        engine: KOREngine,
        cache_capacity: int = 1024,
        default_workers: int = DEFAULT_WORKERS,
        backend: ExecutionBackend | None = None,
        max_cached_route_nodes: int | None = None,
        wave_kernels: bool = True,
        wave_size: int | None = None,
    ) -> None:
        if default_workers < 1:
            raise QueryError(f"default_workers must be >= 1, got {default_workers}")
        self._engine = engine
        self._cache = ResultCache(cache_capacity, max_route_nodes=max_cached_route_nodes)
        self._stats = ServiceStats()
        self._default_workers = default_workers
        self._wave_kernels = wave_kernels
        self._wave_controller = (
            WaveSizeController(wave_size, fixed=True)
            if wave_size is not None
            else WaveSizeController()
        )
        self._wave_controller.retarget(engine.graph)
        self._backend = backend
        self._handle = EngineHandle(engine)
        self._epoch = 0
        self._update_lock = threading.Lock()
        self._mutator: GraphMutator | None = None
        # Set by build_service when it constructed the backend itself;
        # close() then owns the backend's lifecycle too.
        self._owns_backend = False
        if backend is not None:
            backend.register(self._handle)

    @classmethod
    def from_graph(cls, graph, **kwargs) -> "QueryService":
        """Convenience: pre-process *graph* and serve it."""
        return cls(KOREngine(graph), **kwargs)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def engine(self) -> KOREngine:
        """The wrapped engine."""
        return self._engine

    @property
    def backend(self) -> ExecutionBackend | None:
        """The execution backend (None = transient thread pools)."""
        return self._backend

    @property
    def cache(self) -> ResultCache:
        """The canonicalizing LRU result cache."""
        return self._cache

    @property
    def stats(self) -> ServiceStats:
        """Serving metrics (latency percentiles, hit rate, throughput)."""
        return self._stats

    @property
    def wave_size(self) -> int:
        """The wave size the next batch dispatch will use."""
        return self._wave_controller.wave_size

    def tune_waves(self, arrival_qps: float) -> int:
        """Feed the arrival-rate estimate into adaptive wave sizing.

        Called by :class:`~repro.service.frontend.AsyncQueryService`
        whenever its EWMA updates (and by ``/tune``); returns the wave
        size now in effect.  A service built with an explicit
        ``wave_size`` ignores the signal.
        """
        self._wave_controller.observe(arrival_qps)
        return self._wave_controller.wave_size

    def wave_policy(self) -> dict:
        """The adaptive-sizing policy snapshot (``scheduling_stats``)."""
        return self._wave_controller.describe()

    @property
    def epoch(self) -> int:
        """Graph epoch: applied updates / engine swaps since construction.

        Clients compare this against the epoch stamped on responses to
        detect results computed against a retired graph.
        """
        return self._epoch

    def snapshot(self) -> StatsSnapshot:
        """One frozen view of the serving story.

        Beyond the raw :class:`ServiceStats` aggregates this folds in
        the backend's live submission accounting (``queue_depth_peak``)
        and, for a warm-pinned process backend, its pin counters
        (``pinning``).
        """
        backend = self._backend
        pinning = None
        queue_depth = None
        if backend is not None:
            queue_depth = backend.peak_in_flight
            pin_stats = getattr(backend, "pin_stats", None)
            if callable(pin_stats):
                pinning = pin_stats()
        return self._stats.snapshot(pinning=pinning, queue_depth_peak=queue_depth)

    # ------------------------------------------------------------------
    # engine lifecycle
    # ------------------------------------------------------------------
    def invalidate_cache(self) -> int:
        """Drop every cached result and bump the cache epoch."""
        return self._cache.invalidate()

    def replace_engine(self, engine: KOREngine) -> None:
        """Serve from *engine* from now on, invalidating the cache.

        The cache's epoch guard also discards results still being
        computed against the old engine when they try to store
        themselves (see :class:`~repro.service.cache.ResultCache`).
        """
        retired = self._handle
        self._engine = engine
        self._handle = EngineHandle(engine)
        # The mutation history described the retired graph.
        self._mutator = None
        self._wave_controller.retarget(engine.graph)
        self._epoch += 1
        if self._backend is not None:
            self._backend.unregister(retired.key)
            self._backend.register(self._handle)
        self._cache.invalidate()

    def close(self) -> None:
        """Retire this service's engine from the backend (idempotent).

        On a shared backend the handle would otherwise stay registered —
        and keep shipping to new pool workers — for the backend's
        lifetime.  The backend itself is only closed when
        :func:`~repro.service.config.build_service` created it for this
        service.
        """
        if self._backend is not None:
            self._backend.unregister(self._handle.key)
            if self._owns_backend:
                self._backend.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # live mutation
    # ------------------------------------------------------------------
    def apply_ops(self, ops: Sequence[Mapping[str, object]]) -> int:
        """Apply wire-shaped graph mutations; returns the new epoch.

        The flat service has no partition, so repair *is* a full
        rebuild: tables and index are recomputed over the mutated graph
        (the sharded service repairs incrementally — see
        :meth:`repro.service.sharding.ShardedQueryService.apply_ops`).
        What it shares with the sharded path is the delivery protocol:
        the engine handle is reset in place (same key), pool workers
        receive a :class:`~repro.service.backends.PartPatch` through
        their ordinary task queues, and the cache is invalidated exactly
        once after the swap — in-flight queries finish on the old-epoch
        engine and their write-backs are dropped by the epoch guard.
        """
        with self._update_lock:
            if self._mutator is None:
                self._mutator = GraphMutator(self._engine.graph)
            delta = resolve_ops(self._mutator, ops)
            engine = type(self._engine)(self._mutator.graph)
            self._engine = engine
            self._handle.reset(engine)
            if self._backend is not None:
                # A delta that interned new keywords must ship the full
                # graph: the worker would intern in merged-delta order,
                # not op order, and disagree with the shipped index on
                # keyword ids.
                structural_only = not delta.set_keywords
                self._backend.apply_patches(
                    [
                        PartPatch(
                            key=self._handle.key,
                            graph=None if structural_only else engine.graph,
                            graph_delta=delta if structural_only else None,
                            tables=engine.tables,
                            index=engine.index,
                        )
                    ]
                )
            self._wave_controller.retarget(engine.graph)
            self._epoch += 1
            self._cache.invalidate()
            return self._epoch

    def update_edge_cost(
        self,
        u: int,
        v: int,
        objective: float | None = None,
        budget: float | None = None,
    ) -> int:
        """Re-cost edge ``(u, v)``; returns the new epoch."""
        op = {"op": "update_edge_cost", "u": u, "v": v}
        if objective is not None:
            op["objective"] = objective
        if budget is not None:
            op["budget"] = budget
        return self.apply_ops([op])

    def close_node(self, node: int) -> int:
        """Take *node* out of service; returns the new epoch."""
        return self.apply_ops([{"op": "close_node", "node": node}])

    def open_node(self, node: int) -> int:
        """Restore a closed node; returns the new epoch."""
        return self.apply_ops([{"op": "open_node", "node": node}])

    def update_keywords(self, node: int, keywords: Iterable[str]) -> int:
        """Replace *node*'s keywords; returns the new epoch."""
        return self.apply_ops(
            [{"op": "update_keywords", "node": node, "keywords": list(keywords)}]
        )

    # ------------------------------------------------------------------
    # single queries
    # ------------------------------------------------------------------
    def query(
        self,
        source: int,
        target: int,
        keywords: Iterable[str],
        budget_limit: float,
        algorithm: str = "bucketbound",
        **params,
    ) -> KORResult:
        """Answer one KOR query through the cache (mirrors ``engine.query``)."""
        return self.submit(
            KORQuery(source, target, tuple(keywords), budget_limit),
            algorithm=algorithm,
            **params,
        )

    def submit(
        self,
        query: KORQuery,
        algorithm: str = "bucketbound",
        deadline: Deadline | None = None,
        **params,
    ) -> KORResult:
        """Answer a pre-built query, serving repeats from the cache.

        Calls carrying uncacheable parameters (``trace`` and friends, see
        :data:`repro.service.cache.UNCACHEABLE_PARAMS`) bypass the cache
        in both directions but still feed the metrics.  Single queries
        always compute in the calling thread — backends only pay off on
        batches.

        ``deadline`` travels out-of-band: it reaches the engine run but
        never the cache key, so a deadline-carrying repeat still hits the
        cache, and a search that outlives its deadline fails with
        :class:`~repro.exceptions.DeadlineExceeded` without caching
        anything.

        Cacheable misses are **single-flight protected**: concurrent
        submissions of the same canonical key fold into one engine run
        (see :meth:`repro.service.cache.ResultCache.get_or_compute`);
        the waiters count as coalesced cache-served queries.
        """
        if "deadline" in params:
            raise QueryError(
                "'deadline' is not a query parameter; pass deadline= to the "
                "service call instead"
            )
        begin = time.perf_counter()
        cacheable = not (UNCACHEABLE_PARAMS & params.keys())
        key = canonical_cache_key(query, algorithm, params) if cacheable else None
        epoch = self._cache.epoch if cacheable else None
        compute_params = params if deadline is None else {**params, "deadline": deadline}

        def compute() -> KORResult:
            # Same fault hook as the batch paths: one global load plus a
            # None check when no plan is installed.
            plan = faults._ACTIVE
            if plan is not None:
                plan.on_task(_LocalTask(self._handle.key, query))
            return self._engine.run(query, algorithm=algorithm, **compute_params)

        try:
            if cacheable:
                result, how = self._cache.get_or_compute(key, compute, epoch=epoch)
            else:
                result, how = compute(), "computed"
        except Exception:
            self._stats.record_error()
            self._stats.record_busy(time.perf_counter() - begin)
            raise
        elapsed = time.perf_counter() - begin
        if how == "coalesced":
            self._stats.record_coalesced()
        self._stats.record_query(elapsed, cached=how != "computed")
        self._stats.record_busy(elapsed)
        return result

    # ------------------------------------------------------------------
    # batches
    # ------------------------------------------------------------------
    def execute(
        self,
        queries: Sequence[KORQuery],
        algorithm: str = "bucketbound",
        workers: int | None = None,
        deadline: Deadline | None = None,
        **params,
    ) -> BatchReport:
        """Run a batch, returning the full per-slot :class:`BatchReport`.

        Failed slots carry their exception; successful slots are cached
        and unaffected.  Slot order is the submission order regardless of
        ``workers`` or backend.  ``deadline`` (out-of-band, never in
        cache keys) bounds every slot's search.
        """
        if algorithm not in ALGORITHMS:
            raise QueryError(
                f"unknown algorithm {algorithm!r}; expected one of {', '.join(ALGORITHMS)}"
            )
        report = execute_batch(
            self._engine,
            self._cache,
            queries,
            algorithm=algorithm,
            workers=workers if workers is not None else self._default_workers,
            params=params,
            backend=self._backend,
            handle=self._handle,
            deadline=deadline,
            wave_kernels=self._wave_kernels,
            wave_size=self._wave_controller.wave_size,
            stats=self._stats,
        )
        for item in report.items:
            if item.ok:
                self._stats.record_query(item.latency_seconds, cached=item.cached)
            else:
                self._stats.record_error()
        self._stats.record_busy(report.wall_seconds)
        return report

    def run_batch(
        self,
        queries: Sequence[KORQuery],
        algorithm: str = "bucketbound",
        workers: int | None = None,
        deadline: Deadline | None = None,
        **params,
    ) -> list[KORResult]:
        """Run a batch and return its results in submission order.

        Raises :class:`repro.service.batch.BatchError` (carrying the full
        report) when any slot failed.
        """
        return self.execute(
            queries,
            algorithm=algorithm,
            workers=workers,
            deadline=deadline,
            **params,
        ).results()
