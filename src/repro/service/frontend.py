"""``AsyncQueryService`` — the asyncio front door over the serving tier.

The sync services (:class:`~repro.service.service.QueryService`,
:class:`~repro.service.sharding.ShardedQueryService`) are batch-shaped:
one caller hands over a list, blocks, and gets a list back.  A server
talks to *many* callers at once, each holding one query — so this module
adds the request-shaped tier:

submit → coalesce → micro-batch → scatter
-----------------------------------------
``await service.submit(query)`` parks the request in three stages:

1. **coalesce** — requests are keyed by the sync cache's canonical key
   (:func:`repro.service.cache.canonical_cache_key`); a request whose
   key is already in flight joins that flight instead of queueing a
   duplicate (single-flight, counted in ``snapshot().coalesced``);
2. **micro-batch** — new flights collect for one batching window
   (``window_seconds``; 0 = the current event-loop tick) or until
   ``max_batch`` of them are waiting, whichever first;
3. **scatter** — the collected wave becomes *one*
   ``service.execute(...)`` call on a worker thread, which reuses
   everything the sync tier already has: result cache, in-batch dedup,
   shared candidate sets, and backend fan-out (thread pool, or
   warm-pinned process lanes).  Because flights are grouped by
   ``(algorithm, params)``, a micro-batch is exactly the shape the sync
   tier's numpy kernel waves want (:mod:`repro.core.kernels`): the
   flat ``QueryService`` executes the whole wave through one lockstep
   kernel invocation by default.  The wave's report is scattered back
   to each flight's awaiters.

Per-request **timeouts and cancellation** detach the awaiter
immediately; when the *last* awaiter of a flight detaches before its
wave dispatched, the flight is dropped and its shard tasks are never
submitted — cancellation propagates all the way down to the backend.
Each flight also carries a cooperative
:class:`~repro.core.deadline.Deadline` derived from the loosest awaiter
timeout (an awaiter without one unbounds the flight): the wave forwards
it into the engine's search loop, so a wave whose every awaiter set a
timeout genuinely *stops computing* once the loosest one expires
(:class:`~repro.exceptions.DeadlineExceeded`) instead of burning a
worker on an answer nobody will read.  An unbounded wave still
completes in the background (its results land in the sync cache; they
were correct when computed), but nothing is ever cached *because* of a
timeout and nothing about a timeout poisons the stats.

Results are byte-identical to the wrapped sync service's — the frontend
adds scheduling, never semantics (backed by the asyncio differential
suite in ``tests/service/test_frontend.py``).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from functools import partial
from typing import Hashable, Iterable, Sequence

from repro.core.deadline import Deadline
from repro.core.query import KORQuery
from repro.core.results import KORResult
from repro.exceptions import QueryError, ServiceClosed
from repro.service.batch import batch_keys
from repro.service.stats import ServiceStats, StatsSnapshot

__all__ = ["AsyncQueryService"]


@dataclass
class _Flight:
    """One unique in-flight query and everyone awaiting it."""

    query: KORQuery
    algorithm: str
    params: tuple[tuple[str, object], ...]
    key: Hashable | None
    future: asyncio.Future
    #: The loosest deadline any awaiter asked for (None = unbounded; a
    #: joiner without a timeout relaxes the whole flight, because the
    #: shared computation must satisfy its most patient awaiter).
    deadline: Deadline | None = None
    waiters: int = 0
    dispatched: bool = False
    abandoned: bool = False

    @property
    def wave_key(self) -> tuple:
        """Flights sharing this key can ride one ``execute`` call.

        Uncoalescable flights (no canonical key: uncacheable or
        unhashable params, e.g. a caller-owned ``trace`` sink) ride
        solo — their params are caller state a wave must not share.
        """
        if self.key is None:
            return ("solo", id(self))
        return (self.algorithm, self.params)


@dataclass
class _WaveStats:
    """Counters the front-end keeps about its own scheduling."""

    requests: int = 0
    flights: int = 0
    waves: int = 0
    abandoned_flights: int = 0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "flights": self.flights,
            "waves": self.waves,
            "abandoned_flights": self.abandoned_flights,
        }


class AsyncQueryService:
    """Awaitable facade over a sync ``QueryService``-shaped service.

    Parameters
    ----------
    service:
        Any object with the sync serving contract — ``execute(queries,
        algorithm=..., **params) -> BatchReport`` plus ``snapshot()``
        (both :class:`~repro.service.service.QueryService` and
        :class:`~repro.service.sharding.ShardedQueryService` qualify).
        The frontend *wraps* it; it does not own the underlying
        backend's lifecycle unless :meth:`close` is asked to.
    window_seconds:
        Micro-batching window.  ``0.0`` (default) flushes on the next
        event-loop tick, which already aggregates every awaiter that
        arrived in the same scheduling burst; a positive value trades
        that much latency for bigger waves.
    max_batch:
        Flush early once this many distinct flights are queued.
    executor:
        Where the blocking ``service.execute`` waves run; ``None`` uses
        the event loop's default thread pool.
    close_service:
        Whether :meth:`close` also closes the wrapped sync service
        (only meaningful for services owning their backend).
    adaptive_target_batch:
        Enable **adaptive micro-batching**: the front-end keeps an EWMA
        estimate of the request arrival rate (updated per submission, or
        fed externally via :meth:`tune`) and continuously re-derives the
        batching window so an average wave collects about this many
        flights — ``window = target / arrival_qps``, capped at
        ``max_window_seconds`` and snapped to 0 when traffic is too
        sparse for a wave of two to form within the cap (batching delay
        would buy nothing).  ``None`` (default) keeps the fixed
        ``window_seconds``.
    max_window_seconds:
        Upper bound on the adaptive window — the most latency adaptivity
        may spend chasing bigger waves.
    slo_seconds:
        Optional per-request latency SLO; requests slower than this are
        counted in ``snapshot().slo_violations`` (see
        :class:`~repro.service.stats.ServiceStats`).
    """

    #: EWMA smoothing factor for the arrival-interval estimate.
    ARRIVAL_EWMA_ALPHA = 0.1

    def __init__(
        self,
        service,
        window_seconds: float = 0.0,
        max_batch: int = 64,
        executor=None,
        close_service: bool = False,
        adaptive_target_batch: int | None = None,
        max_window_seconds: float = 0.050,
        slo_seconds: float | None = None,
    ) -> None:
        if window_seconds < 0.0:
            raise QueryError(f"window_seconds must be >= 0, got {window_seconds}")
        if max_batch < 1:
            raise QueryError(f"max_batch must be >= 1, got {max_batch}")
        if adaptive_target_batch is not None and adaptive_target_batch < 2:
            raise QueryError(
                f"adaptive_target_batch must be >= 2 or None, got {adaptive_target_batch}"
            )
        if max_window_seconds < 0.0:
            raise QueryError(f"max_window_seconds must be >= 0, got {max_window_seconds}")
        self._service = service
        self._window = window_seconds
        self._max_batch = max_batch
        self._executor = executor
        self._close_service = close_service
        self._adaptive_target = adaptive_target_batch
        self._max_window = max_window_seconds
        self._arrival_interval_ewma: float | None = None
        self._last_arrival: float | None = None
        self._pending: dict[Hashable, _Flight] = {}
        self._queue: list[_Flight] = []
        self._flush_handle: asyncio.TimerHandle | asyncio.Handle | None = None
        self._waves: set[asyncio.Task] = set()
        self._stats = ServiceStats(slo_seconds=slo_seconds)
        self._wave_stats = _WaveStats()
        self._closed = False

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def service(self):
        """The wrapped sync service."""
        return self._service

    @property
    def stats(self) -> ServiceStats:
        """Front-end metrics (latency as awaiters saw it, coalescing,
        timeouts, queue depth).  The wrapped service keeps its own."""
        return self._stats

    @property
    def epoch(self) -> int | None:
        """The wrapped service's graph epoch (None when it has none)."""
        return getattr(self._service, "epoch", None)

    async def apply_update(self, ops: Sequence) -> int:
        """Apply graph mutations through the wrapped sync service.

        Runs the blocking repair on the executor the waves use, so the
        event loop keeps serving while tables recompute.  In-flight
        waves finish on the old epoch (the sync service's epoch fence);
        waves dispatched after this returns see the new state.  Returns
        the new epoch.
        """
        if self._closed:
            raise ServiceClosed("AsyncQueryService is closed")
        apply_ops = getattr(self._service, "apply_ops", None)
        if not callable(apply_ops):
            raise QueryError(
                f"{type(self._service).__name__} does not support live updates"
            )
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, partial(apply_ops, list(ops))
        )

    def snapshot(self) -> StatsSnapshot:
        """Frozen front-end metrics (see :attr:`stats`)."""
        return self._stats.snapshot()

    def scheduling_stats(self) -> dict:
        """Wave-level accounting: requests vs flights vs execute waves,
        plus the live batching window and arrival-rate estimate."""
        stats = self._wave_stats.as_dict()
        stats["window_seconds"] = self._window
        stats["arrival_qps"] = self.arrival_qps
        stats["adaptive"] = self._adaptive_target is not None
        wave_policy = getattr(self._service, "wave_policy", None)
        if callable(wave_policy):
            stats["wave_sizing"] = wave_policy()
        return stats

    @property
    def window_seconds(self) -> float:
        """The batching window currently in force (adaptive or fixed)."""
        return self._window

    @property
    def arrival_qps(self) -> float:
        """EWMA estimate of the request arrival rate (0.0 before two
        arrivals, or whatever :meth:`tune` last supplied)."""
        ewma = self._arrival_interval_ewma
        if ewma is None or ewma <= 0.0:
            return 0.0
        return 1.0 / ewma

    # ------------------------------------------------------------------
    # adaptive micro-batching
    # ------------------------------------------------------------------
    def tune(self, arrival_qps: float) -> float:
        """Feed an externally observed arrival rate (e.g. from the load
        generator) and re-derive the batching window from it.

        Returns the window now in force.  Only meaningful with
        ``adaptive_target_batch`` set — without it the call updates the
        rate estimate but leaves the fixed window alone.
        """
        if arrival_qps < 0.0:
            raise QueryError(f"arrival_qps must be >= 0, got {arrival_qps}")
        self._arrival_interval_ewma = (1.0 / arrival_qps) if arrival_qps > 0.0 else None
        self._retune_window()
        self._feed_wave_sizing()
        return self._window

    def _observe_arrival(self, now: float) -> None:
        """Fold one submission timestamp into the arrival-rate EWMA."""
        last, self._last_arrival = self._last_arrival, now
        if last is None:
            return
        interval = max(now - last, 1e-9)
        ewma = self._arrival_interval_ewma
        if ewma is None:
            self._arrival_interval_ewma = interval
        else:
            alpha = self.ARRIVAL_EWMA_ALPHA
            self._arrival_interval_ewma = alpha * interval + (1.0 - alpha) * ewma
        self._retune_window()
        self._feed_wave_sizing()

    def _feed_wave_sizing(self) -> None:
        """Share the arrival-rate EWMA with the wrapped service's
        adaptive wave-size controller (when it has one): the same signal
        that widens the batching window also justifies fatter kernel
        waves."""
        tune_waves = getattr(self._service, "tune_waves", None)
        if callable(tune_waves):
            tune_waves(self.arrival_qps)

    def _retune_window(self) -> None:
        """Window that collects ~``adaptive_target_batch`` flights.

        Sparse traffic (fewer than two expected arrivals within the
        window cap) snaps to 0 — a wave of one gains nothing from
        waiting, so adaptivity must not tax light load with latency.
        """
        target = self._adaptive_target
        if target is None:
            return
        rate = self.arrival_qps
        if rate * self._max_window < 2.0:
            self._window = 0.0
        else:
            self._window = min(self._max_window, target / rate)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    async def query(
        self,
        source: int,
        target: int,
        keywords: Iterable[str],
        budget_limit: float,
        algorithm: str = "bucketbound",
        timeout: float | None = None,
        **params,
    ) -> KORResult:
        """Answer one KOR query (mirrors the sync ``service.query``)."""
        return await self.submit(
            KORQuery(source, target, tuple(keywords), budget_limit),
            algorithm=algorithm,
            timeout=timeout,
            **params,
        )

    async def submit(
        self,
        query: KORQuery,
        algorithm: str = "bucketbound",
        timeout: float | None = None,
        **params,
    ) -> KORResult:
        """Answer *query*, awaiting the micro-batched serving pipeline.

        Identical concurrent submissions share one flight; distinct
        concurrent submissions share one ``execute`` wave.  ``timeout``
        (seconds) raises :class:`asyncio.TimeoutError` for *this*
        awaiter only — see the module docstring for what the shared
        flight does afterwards.  The timeout also becomes the flight's
        cooperative :class:`~repro.core.deadline.Deadline`, propagated
        down to the engine's search loop so an expired wave actually
        stops computing instead of burning a worker (the search then
        fails with :class:`~repro.exceptions.DeadlineExceeded`).  A
        flight shared by awaiters with different timeouts carries the
        loosest one; any awaiter *without* a timeout unbounds it.

        Submitting to a closed service raises
        :class:`~repro.exceptions.ServiceClosed`.
        """
        if self._closed:
            raise ServiceClosed("AsyncQueryService is closed")
        begin = time.perf_counter()
        self._wave_stats.requests += 1
        if self._adaptive_target is not None:
            self._observe_arrival(begin)
        deadline = Deadline.after(timeout) if timeout is not None else None
        flight, joined = self._enlist(query, algorithm, params, deadline)
        flight.waiters += 1
        self._stats.record_queue_depth(len(self._pending) + len(self._waves))
        try:
            if timeout is None:
                result = await asyncio.shield(flight.future)
            else:
                result = await asyncio.wait_for(asyncio.shield(flight.future), timeout)
        except asyncio.TimeoutError as error:
            future = flight.future
            if future.done() and not future.cancelled() and future.exception() is error:
                # The *wave* failed with a TimeoutError (asyncio's alias
                # of the builtin on 3.11+): that is a serving error the
                # flight delivered, not this awaiter's clock expiring.
                flight.waiters -= 1
                self._stats.record_error()
                self._stats.record_busy(time.perf_counter() - begin)
                raise
            self._detach(flight)
            self._stats.record_timeout()
            self._stats.record_busy(time.perf_counter() - begin)
            raise
        except asyncio.CancelledError:
            self._detach(flight)
            raise
        except Exception:
            elapsed = time.perf_counter() - begin
            flight.waiters -= 1
            self._stats.record_error()
            self._stats.record_busy(elapsed)
            raise
        elapsed = time.perf_counter() - begin
        flight.waiters -= 1
        # "cached" at the front-end means "this awaiter rode someone
        # else's flight"; the sync tier's own hit rate lives in the
        # wrapped service's snapshot.
        self._stats.record_query(elapsed, cached=joined)
        self._stats.record_busy(elapsed)
        return result

    async def run_batch(
        self,
        queries: Sequence[KORQuery],
        algorithm: str = "bucketbound",
        timeout: float | None = None,
        **params,
    ) -> list[KORResult]:
        """Await every query concurrently (one coalesced wave or few).

        Unlike the sync ``run_batch`` this is just ``asyncio.gather``
        over :meth:`submit` — duplicates coalesce, the batch rides the
        micro-batching window, and one failing query raises its own
        exception out of the gather.
        """
        return list(
            await asyncio.gather(
                *(
                    self.submit(query, algorithm=algorithm, timeout=timeout, **params)
                    for query in queries
                )
            )
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _enlist(
        self,
        query: KORQuery,
        algorithm: str,
        params: dict,
        deadline: Deadline | None,
    ) -> tuple[_Flight, bool]:
        """The live flight for this request (joined=True), or a new one."""
        # batch_keys owns the cacheability rules (uncacheable params,
        # unhashable values): the coalescing key IS the sync cache key.
        _cacheable, (key,) = batch_keys([query], algorithm, params)
        if key is not None:
            live = self._pending.get(key)
            if live is not None and not live.future.done():
                # Joining extends (or unbounds) the shared deadline —
                # the flight must outlive its most patient awaiter.
                live.deadline = Deadline.latest(live.deadline, deadline)
                self._stats.record_coalesced()
                return live, True
        loop = asyncio.get_running_loop()
        flight = _Flight(
            query=query,
            algorithm=algorithm,
            params=tuple(sorted(params.items())),
            key=key,
            future=loop.create_future(),
            deadline=deadline,
        )
        self._wave_stats.flights += 1
        if key is not None:
            self._pending[key] = flight
        self._queue.append(flight)
        self._arm_flush(loop)
        return flight, False

    def _arm_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        if len(self._queue) >= self._max_batch:
            # Early flush; _flush itself disarms the window timer that
            # may be in flight for these same flights, so the timer can
            # never fire a second, empty (or worse: refilled) wave.
            self._flush()
            return
        if self._flush_handle is None:
            if self._window > 0.0:
                self._flush_handle = loop.call_later(self._window, self._flush)
            else:
                self._flush_handle = loop.call_soon(self._flush)

    def _detach(self, flight: _Flight) -> None:
        """One awaiter gave up; drop the flight if it was the last."""
        flight.waiters -= 1
        if flight.waiters <= 0 and not flight.dispatched and not flight.abandoned:
            flight.abandoned = True
            self._wave_stats.abandoned_flights += 1
            if flight.key is not None and self._pending.get(flight.key) is flight:
                del self._pending[flight.key]
            if not flight.future.done():
                flight.future.cancel()

    def _flush(self) -> None:
        """Dispatch everything queued as per-(algorithm, params) waves.

        Disarming the timer handle is done *here*, not at the call
        sites, so the invariant is local: however a flush is triggered
        (window expiry, max-batch overflow during ``_enlist``), any
        armed timer for the queue being drained is cancelled and the
        handle slot is clear for the next arrival to arm afresh.
        Cancelling the handle is safe even when this call *is* that
        timer firing — cancel-after-fire is a no-op.
        """
        if self._flush_handle is not None:
            self._flush_handle.cancel()
        self._flush_handle = None
        queued, self._queue = self._queue, []
        live = [flight for flight in queued if not flight.abandoned]
        if not live:
            return
        loop = asyncio.get_running_loop()
        waves: dict[tuple, list[_Flight]] = {}
        for flight in live:
            flight.dispatched = True
            waves.setdefault(flight.wave_key, []).append(flight)
        for flights in waves.values():
            self._wave_stats.waves += 1
            task = loop.create_task(self._run_wave(flights))
            self._waves.add(task)
            task.add_done_callback(self._waves.discard)

    async def _run_wave(self, flights: list[_Flight]) -> None:
        """One blocking ``execute`` call, scattered back to its flights."""
        algorithm = flights[0].algorithm
        params = dict(flights[0].params)
        # The wave computes once for every flight in it, so it runs on
        # the *loosest* flight deadline: any unbounded flight unbounds
        # the wave.  Tighter awaiters still time out individually.
        deadline = flights[0].deadline
        for flight in flights[1:]:
            deadline = Deadline.latest(deadline, flight.deadline)
        loop = asyncio.get_running_loop()
        try:
            report = await loop.run_in_executor(
                self._executor,
                partial(
                    self._service.execute,
                    [flight.query for flight in flights],
                    algorithm=algorithm,
                    deadline=deadline,
                    **params,
                ),
            )
        except Exception as error:  # noqa: BLE001 - delivered per flight
            for flight in flights:
                self._deliver(flight, None, error)
        else:
            for flight, item in zip(flights, report.items):
                self._deliver(flight, item.result, item.error)
        finally:
            for flight in flights:
                if flight.key is not None and self._pending.get(flight.key) is flight:
                    del self._pending[flight.key]

    def _deliver(
        self, flight: _Flight, result: KORResult | None, error: Exception | None
    ) -> None:
        future = flight.future
        if future.done():
            return
        if flight.waiters <= 0:
            # Every awaiter timed out after dispatch: cancelling beats
            # parking an exception nobody will ever retrieve.
            future.cancel()
        elif error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Stop admitting, flush nothing new, and drain in-flight waves.

        Queued-but-undispatched flights fail with
        :class:`~repro.exceptions.ServiceClosed` — a *distinct* error,
        not a bare cancellation, so their awaiters can tell "the service
        shut down under me" (retry elsewhere) from "my own caller gave
        up" (don't).  Waves already running are awaited so the wrapped
        service is quiescent on return.  With ``close_service=True`` the
        wrapped sync service's ``close()`` (when it has one) is called
        too.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        queued, self._queue = self._queue, []
        for flight in queued:
            if flight.key is not None and self._pending.get(flight.key) is flight:
                del self._pending[flight.key]
            if not flight.future.done():
                flight.future.set_exception(
                    ServiceClosed(
                        "AsyncQueryService closed before this query dispatched"
                    )
                )
        if self._waves:
            await asyncio.gather(*tuple(self._waves), return_exceptions=True)
        if self._close_service:
            close = getattr(self._service, "close", None)
            if callable(close):
                close()

    async def __aenter__(self) -> "AsyncQueryService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
