"""``BorderEngine`` — cross-cell KOR answering over border tables.

The sharded service used to keep a full flat
:class:`~repro.core.engine.KOREngine` as its "global tier", which meant
every service paid ``O(n^2)`` floats *on top of* the per-cell tables —
memory grew with the cell count instead of shrinking.  This module
completes the partition architecture instead: a :class:`BorderEngine`
answers any KOR/KkR query over the **full** graph, but its cost tables
are a :class:`repro.prep.partition.PartitionedCostTables` — per-cell
all-pairs tables (shared with the cell engines, not duplicated) plus
border-to-border tables measured on the full graph.

Why this is exact
-----------------
Crossing a cell boundary is only possible along an edge whose two
endpoints are both border nodes.  An optimal path from ``i`` to ``j``
therefore decomposes at its first border node ``b1`` (the prefix never
left ``cell(i)``) and its last border node ``b2`` (the suffix never
leaves ``cell(j)``); minimising ``in_cell(i -> b1) + border(b1 -> b2) +
in_cell(b2 -> j)`` over every border pair recovers the flat table's
value, and in-cell paths are covered by the cell term.  Route legs are
materialised the same way — in-cell legs through each cell's predecessor
matrices, the border leg through one stored full-graph predecessor row
per border node — so every route a :class:`BorderEngine` returns is a
real walk of the full graph with exactly the scores the search saw.

Because the search algorithms consume tables only through the shared
access protocol, a :class:`BorderEngine` *is* a
:class:`~repro.core.engine.KOREngine` — same algorithms, same results
semantics, same feasibility behaviour — just with ``O(sum n_c^2 + k^2)``
table memory instead of ``O(n^2)``.
"""

from __future__ import annotations

from repro.core.engine import KOREngine
from repro.exceptions import QueryError
from repro.graph.digraph import SpatialKeywordGraph
from repro.index.inverted import InvertedIndex
from repro.prep.partition import GraphPartition, PartitionedCostTables
from repro.prep.tables import CostTables

__all__ = ["BorderEngine"]


class BorderEngine(KOREngine):
    """A :class:`KOREngine` over the full graph backed by partitioned tables.

    Parameters
    ----------
    graph:
        The full spatial-keyword graph.
    tables:
        Path-capable :class:`PartitionedCostTables` over *graph* (built
        with ``predecessors=True`` so routes can be materialised).
    index:
        Full-graph inverted index; built from *graph* when omitted.
    """

    def __init__(
        self,
        graph: SpatialKeywordGraph,
        tables: PartitionedCostTables | None = None,
        index: InvertedIndex | None = None,
    ) -> None:
        if tables is None:
            tables = PartitionedCostTables.from_graph(graph, predecessors=True)
        if not isinstance(tables, PartitionedCostTables):
            raise QueryError(
                "BorderEngine needs PartitionedCostTables; for flat tables "
                "use KOREngine directly"
            )
        if tables.num_nodes != graph.num_nodes:
            raise QueryError(
                f"tables cover {tables.num_nodes} nodes but the graph has "
                f"{graph.num_nodes}"
            )
        if not tables.has_paths:
            raise QueryError(
                "BorderEngine needs path-capable tables: build the "
                "PartitionedCostTables with predecessors=True"
            )
        super().__init__(graph, tables=tables, index=index)

    @classmethod
    def from_partition(
        cls,
        graph: SpatialKeywordGraph,
        partition: GraphPartition,
        cell_tables: tuple[CostTables, ...],
        index: InvertedIndex | None = None,
    ) -> "BorderEngine":
        """Assemble an engine sharing an existing deployment's cell tables.

        This is the sharded service's constructor path: the per-cell
        :class:`CostTables` the cell engines already materialised are
        reused as-is, so the only *new* memory is the border tier.
        """
        tables = PartitionedCostTables.from_graph(
            graph,
            partition=partition,
            cell_tables=cell_tables,
            predecessors=True,
        )
        return cls(graph, tables=tables, index=index)

    @property
    def partition(self) -> GraphPartition:
        """The node-to-cell assignment behind the assembled tables."""
        return self.tables.partition

    @property
    def num_border_nodes(self) -> int:
        """Size of the border tier (the ``k`` in the ``k x k`` tables)."""
        return len(self.tables.partition.border_nodes)

    def table_memory_bytes(self) -> int:
        """Bytes held by the assembled tables (scores + predecessors)."""
        return self.tables.memory_bytes(include_paths=True)
