"""``ShardedQueryService`` — partition-routed serving over many engines.

The flat :class:`~repro.service.service.QueryService` wraps exactly one
:class:`~repro.core.engine.KOREngine`, whose dense cost tables are the
scale ceiling: ``O(n^2)`` floats per matrix.  This module splits the
graph with :func:`repro.prep.partition.partition_graph` (the paper's
Section-6 sketch) and builds **one engine per cell** — each with its own
(small) tables and inverted index over the cell's induced subgraph —
plus one **global engine** over the full graph that keeps answers exact
when a query cannot be contained in a cell.

Routing rule
------------
A query is *shard-local* when the cell owning its **source node** also
owns the target **and** every query keyword has at least one candidate
node inside that cell.  Local queries run on the cell engine: a route
found there is genuinely feasible (the subgraph is a subgraph), and its
score is an **upper bound** on the flat optimum — the optimal route may
weave through other cells, which the cell engine cannot see.  When the
local search comes back infeasible (or errors), or when endpoints /
keywords span cells in the first place, the service falls back to
scatter-gather: the query runs on every candidate engine (here: the
global engine; the local attempt, if any, already ran) and the feasible
outcome with the best objective score wins.  Because the fallback chain
always ends at the global engine — the very engine a flat service would
have used — feasibility is preserved exactly for the complete algorithms
(``osscaling``, ``bucketbound``, ``exact``, ``exhaustive``), and the
greedy heuristics can only become *more* feasible (a local greedy may
succeed where the flat greedy fails).

With ``num_cells=1`` the single cell *is* the whole graph: the shard
engine doubles as the global engine and every answer matches the flat
service bit for bit.

Execution
---------
Shard work is described as picklable
:class:`~repro.service.backends.ShardTask` objects and executed by any
:class:`~repro.service.backends.ExecutionBackend` — serial, thread pool,
or a process pool whose workers hold their own copies of the shard
engines (finally escaping the GIL for CPU-bound batch fan-out).
Results coming back from a cell engine are translated from cell-local
node ids to global ids before anything downstream sees them.
"""

from __future__ import annotations

import itertools
import math
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.engine import ALGORITHMS, KOREngine
from repro.core.query import KORQuery
from repro.core.results import KORResult
from repro.core.route import Route
from repro.exceptions import QueryError
from repro.graph.digraph import SpatialKeywordGraph
from repro.prep.partition import GraphPartition, partition_graph
from repro.service.backends import (
    DEFAULT_WORKERS,
    EngineHandle,
    ExecutionBackend,
    ShardTask,
    TaskOutcome,
    ThreadBackend,
)
from repro.service.batch import (
    BatchItem,
    BatchReport,
    batch_keys,
    dedup_units,
)
from repro.service.cache import ResultCache
from repro.service.stats import ServiceStats, StatsSnapshot

__all__ = ["Shard", "ShardedQueryService"]

_SERVICE_COUNTER = itertools.count()

#: Routing decisions, as reported by :meth:`ShardedQueryService.plan_of`.
LOCAL = "local"
SPAN_ENDPOINTS = "endpoints-span-cells"
SPAN_KEYWORDS = "keywords-span-cells"
MISSING_KEYWORDS = "keywords-missing-from-graph"
INVALID_ENDPOINTS = "invalid-endpoints"


@dataclass(frozen=True)
class Shard:
    """One cell's worth of serving state.

    ``to_global[local_id] == global_id``; ``to_local`` is the inverse
    mapping (global ids of this cell only).
    """

    key: str
    cell: int
    engine: KOREngine
    handle: EngineHandle
    to_local: dict[int, int]
    to_global: np.ndarray

    @property
    def num_nodes(self) -> int:
        """Node count of the cell's induced subgraph."""
        return len(self.to_global)


@dataclass
class _Plan:
    """Routing decision for one query."""

    reason: str
    shard: Shard | None = None  # the local candidate, when reason == LOCAL


def default_num_cells(num_nodes: int) -> int:
    """Default cell count: ``~sqrt(n)/2`` cells of ``~2*sqrt(n)`` nodes.

    Matches :class:`repro.prep.partition.PartitionedCostTables`'s
    heuristic, clamped to the node count.
    """
    return max(1, min(num_nodes, max(2, int(math.sqrt(num_nodes) / 2))))


class ShardedQueryService:
    """Partition-routed, cached, backend-executed serving layer.

    Parameters
    ----------
    graph:
        The full spatial-keyword graph to serve.
    num_cells:
        Partition granularity (default :func:`default_num_cells`).
        ``num_cells=1`` degenerates to the flat service exactly.
    seed:
        Partition seed (farthest-point sampling is randomised).
    backend:
        Execution backend for shard tasks; default a
        :class:`~repro.service.backends.ThreadBackend` owned (and closed)
        by this service.  A caller-supplied backend is shared, not owned.
    cache_capacity / max_cached_route_nodes:
        Result-cache bounds, as in the flat service.  Cached entries are
        already translated to global node ids.
    """

    def __init__(
        self,
        graph: SpatialKeywordGraph,
        num_cells: int | None = None,
        seed: int = 0,
        backend: ExecutionBackend | None = None,
        cache_capacity: int = 1024,
        default_workers: int = DEFAULT_WORKERS,
        max_cached_route_nodes: int | None = None,
    ) -> None:
        if default_workers < 1:
            raise QueryError(f"default_workers must be >= 1, got {default_workers}")
        self._graph = graph
        if num_cells is None:
            num_cells = default_num_cells(graph.num_nodes)
        self._partition: GraphPartition = partition_graph(graph, num_cells, seed=seed)
        self._owns_backend = backend is None
        self._backend = backend if backend is not None else ThreadBackend(default_workers)
        self._default_workers = default_workers
        self._cache = ResultCache(cache_capacity, max_route_nodes=max_cached_route_nodes)
        self._stats = ServiceStats()

        prefix = f"svc{next(_SERVICE_COUNTER)}/"
        shards: list[Shard] = []
        for cell, nodes in enumerate(self._partition.cells):
            subgraph, to_local = graph.induced_subgraph([int(v) for v in nodes])
            to_global = np.array(sorted(to_local), dtype=np.int64)
            engine = KOREngine(subgraph)
            handle = EngineHandle(engine, key=f"{prefix}cell-{cell}")
            shards.append(
                Shard(
                    key=handle.key,
                    cell=cell,
                    engine=engine,
                    handle=handle,
                    to_local=to_local,
                    to_global=to_global,
                )
            )
        self._shards = tuple(shards)
        if num_cells == 1:
            # The single cell is the whole graph (induced_subgraph keeps
            # dense ids in order, so the mapping is the identity): reuse
            # its engine as the global tier instead of building twice.
            self._global_engine = shards[0].engine
        else:
            self._global_engine = KOREngine(graph)
        self._global_handle = EngineHandle(self._global_engine, key=f"{prefix}global")
        for shard in self._shards:
            self._backend.register(shard.handle)
        self._backend.register(self._global_handle)

    @classmethod
    def from_engine(cls, engine: KOREngine, **kwargs) -> "ShardedQueryService":
        """Shard an existing engine's graph (the engine is not reused)."""
        return cls(engine.graph, **kwargs)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> SpatialKeywordGraph:
        """The full graph being served."""
        return self._graph

    @property
    def partition(self) -> GraphPartition:
        """The node-to-cell assignment behind the shards."""
        return self._partition

    @property
    def shards(self) -> tuple[Shard, ...]:
        """One :class:`Shard` per cell, in cell order."""
        return self._shards

    @property
    def num_shards(self) -> int:
        """Number of cells the graph was split into."""
        return len(self._shards)

    @property
    def global_engine(self) -> KOREngine:
        """The exactness tier: a flat engine over the full graph."""
        return self._global_engine

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend shard tasks run on."""
        return self._backend

    @property
    def cache(self) -> ResultCache:
        """The canonicalizing LRU result cache (global-id results)."""
        return self._cache

    @property
    def stats(self) -> ServiceStats:
        """Serving metrics, including per-shard task counters."""
        return self._stats

    def snapshot(self) -> StatsSnapshot:
        """Shorthand for ``service.stats.snapshot()``."""
        return self._stats.snapshot()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def invalidate_cache(self) -> int:
        """Drop every cached result and bump the cache epoch."""
        return self._cache.invalidate()

    def close(self) -> None:
        """Retire this service's engines from the backend (idempotent).

        Every shard handle (and the global one) is unregistered — on a
        shared backend the engines would otherwise stay pinned, and be
        re-shipped to every new pool worker, for the backend's lifetime.
        The backend itself is only closed when this service created it.
        A closed service must not serve further batches.
        """
        for shard in self._shards:
            self._backend.unregister(shard.key)
        self._backend.unregister(self._global_handle.key)
        if self._owns_backend:
            self._backend.close()

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def plan_of(self, query: KORQuery) -> str:
        """The routing decision for *query* (``local`` / ``*-span-cells``
        / ``keywords-missing-from-graph`` / ``invalid-endpoints``),
        without running anything."""
        return self._plan(query).reason

    def _plan(self, query: KORQuery) -> _Plan:
        n = self._graph.num_nodes
        if not (0 <= query.source < n and 0 <= query.target < n):
            # Let the global engine produce the canonical QueryError.
            return _Plan(reason=INVALID_ENDPOINTS)
        table = self._graph.keyword_table
        keyword_ids = [table.get(word) for word in query.keywords]
        if any(kid is None for kid in keyword_ids):
            # Absent from the whole vocabulary: no engine can cover it.
            # One global run produces the canonical infeasible answer
            # cheaply (binding fails before any search), and skipping
            # the local attempt avoids a pointless escalation.
            return _Plan(reason=MISSING_KEYWORDS)
        src_cell = int(self._partition.cell_of[query.source])
        if int(self._partition.cell_of[query.target]) != src_cell:
            return _Plan(reason=SPAN_ENDPOINTS)
        shard = self._shards[src_cell]
        for kid in keyword_ids:
            if shard.engine.index.document_frequency(kid) == 0:
                # Keyword exists in the graph but not in this cell: only
                # a cross-cell route can cover it.
                return _Plan(reason=SPAN_KEYWORDS)
        return _Plan(reason=LOCAL, shard=shard)

    def _localize(self, shard: Shard, query: KORQuery) -> KORQuery:
        return KORQuery(
            shard.to_local[query.source],
            shard.to_local[query.target],
            query.keywords,
            query.budget_limit,
        )

    def _globalize(self, shard: Shard, query: KORQuery, result: KORResult) -> KORResult:
        """Translate a cell-engine result back to global node ids."""
        route = result.route
        if route is not None:
            route = Route(
                nodes=tuple(int(shard.to_global[v]) for v in route.nodes),
                objective_score=route.objective_score,
                budget_score=route.budget_score,
            )
        return KORResult(
            query=query,
            algorithm=result.algorithm,
            route=route,
            covers_keywords=result.covers_keywords,
            within_budget=result.within_budget,
            stats=result.stats,
            failure_reason=result.failure_reason,
        )

    # ------------------------------------------------------------------
    # single queries
    # ------------------------------------------------------------------
    def query(
        self,
        source: int,
        target: int,
        keywords: Iterable[str],
        budget_limit: float,
        algorithm: str = "bucketbound",
        **params,
    ) -> KORResult:
        """Answer one KOR query through routing and the cache."""
        return self.submit(
            KORQuery(source, target, tuple(keywords), budget_limit),
            algorithm=algorithm,
            **params,
        )

    def submit(
        self, query: KORQuery, algorithm: str = "bucketbound", **params
    ) -> KORResult:
        """Answer a pre-built query (a batch of one, sharing all paths)."""
        report = self.execute([query], algorithm=algorithm, **params)
        item = report.items[0]
        if item.error is not None:
            raise item.error
        return item.result

    # ------------------------------------------------------------------
    # batches
    # ------------------------------------------------------------------
    def execute(
        self,
        queries: Sequence[KORQuery],
        algorithm: str = "bucketbound",
        workers: int | None = None,
        **params,
    ) -> BatchReport:
        """Run a batch through routing, the backend and the cache.

        Two waves of backend work: every unique miss runs once on its
        routed engine (cell or global); local attempts that came back
        infeasible (or errored) are then escalated to the global engine,
        and the feasible outcome with the best objective score wins.
        Slot order is submission order; one failing query marks only its
        own slot.
        """
        if algorithm not in ALGORITHMS:
            raise QueryError(
                f"unknown algorithm {algorithm!r}; expected one of {', '.join(ALGORITHMS)}"
            )
        if "binding" in params or "candidates" in params:
            raise QueryError(
                "'binding'/'candidates' cannot be passed to a sharded batch: "
                "they are per-query state bound to one engine's node ids"
            )
        if "trace" in params:
            # Cell engines search in cell-local node ids and escalations
            # would interleave a second engine's events into the same
            # sink — a sharded trace would silently mislead.  (Process
            # backends additionally cannot ship the sink back at all.)
            raise QueryError(
                "'trace' is not supported on a sharded service: trace "
                "events would carry cell-local node ids; trace via "
                "engine.run() or a flat QueryService instead"
            )
        begin = time.perf_counter()
        queries = list(queries)
        items = [BatchItem(index=i, query=query) for i, query in enumerate(queries)]
        cacheable, keys = batch_keys(queries, algorithm, dict(params))
        epoch = self._cache.epoch if cacheable else None
        units = dedup_units(items, keys, self._cache, cacheable, epoch)

        if units:
            effective = workers if workers is not None else self._default_workers
            plans = [self._plan(unit.query) for unit in units]
            wave1: list[ShardTask] = []
            for unit, plan in zip(units, plans):
                if plan.shard is not None:
                    wave1.append(
                        ShardTask.build(
                            plan.shard.key,
                            self._localize(plan.shard, unit.query),
                            algorithm,
                            params,
                        )
                    )
                else:
                    wave1.append(
                        ShardTask.build(
                            self._global_handle.key, unit.query, algorithm, params
                        )
                    )
            outcomes = self._backend.run_tasks(wave1, workers=effective)
            self._record_tasks(wave1, outcomes)

            # Wave 2: escalate local attempts that proved nothing (an
            # infeasible cell answer says "no route inside this cell",
            # not "no route"), plus local errors, to the global tier.
            escalate = [
                position
                for position, (plan, outcome) in enumerate(zip(plans, outcomes))
                if plan.shard is not None
                and not (outcome.ok and outcome.result.feasible)
            ]
            rescue: dict[int, TaskOutcome] = {}
            if escalate:
                wave2 = [
                    ShardTask.build(
                        self._global_handle.key,
                        units[position].query,
                        algorithm,
                        params,
                    )
                    for position in escalate
                ]
                wave2_outcomes = self._backend.run_tasks(wave2, workers=effective)
                self._record_tasks(wave2, wave2_outcomes)
                rescue = dict(zip(escalate, wave2_outcomes))

            for position, (unit, plan) in enumerate(zip(units, plans)):
                self._merge(unit, plan, outcomes[position], rescue.get(position))

            for unit in units:
                if unit.error is None and cacheable:
                    self._cache.put(unit.key, unit.result, epoch=epoch)
                for slot in unit.slots:
                    items[slot].result = unit.result
                    items[slot].error = unit.error
                    items[slot].latency_seconds = unit.latency_seconds
                    items[slot].shard = unit.shard

        report = BatchReport(items=items, wall_seconds=time.perf_counter() - begin)
        for item in report.items:
            if item.ok:
                self._stats.record_query(item.latency_seconds, cached=item.cached)
            else:
                self._stats.record_error()
        self._stats.record_busy(report.wall_seconds)
        return report

    def run_batch(
        self,
        queries: Sequence[KORQuery],
        algorithm: str = "bucketbound",
        workers: int | None = None,
        **params,
    ) -> list[KORResult]:
        """Run a batch and return its results in submission order.

        Raises :class:`repro.service.batch.BatchError` (carrying the full
        report) when any slot failed.
        """
        return self.execute(
            queries, algorithm=algorithm, workers=workers, **params
        ).results()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _record_tasks(
        self, tasks: Sequence[ShardTask], outcomes: Sequence[TaskOutcome]
    ) -> None:
        for task, outcome in zip(tasks, outcomes):
            self._stats.record_shard(task.shard, errors=0 if outcome.error is None else 1)

    def _merge(
        self,
        unit,
        plan: _Plan,
        first: TaskOutcome,
        rescue: TaskOutcome | None,
    ) -> None:
        """Pick the winning outcome of a unit's (1 or 2) attempts.

        Feasible candidates are merged by objective score (ties prefer
        the local shard — its result was produced from less state); with
        no feasible candidate the *global* outcome stands, because only
        the global engine's verdict speaks for the whole graph.
        """
        unit.latency_seconds = first.latency_seconds + (
            rescue.latency_seconds if rescue is not None else 0.0
        )
        candidates: list[tuple[str, TaskOutcome, Shard | None]] = []
        if plan.shard is not None:
            candidates.append((plan.shard.key, first, plan.shard))
            if rescue is not None:
                candidates.append((self._global_handle.key, rescue, None))
        else:
            candidates.append((self._global_handle.key, first, None))

        best: tuple[str, KORResult] | None = None
        for key, outcome, shard in candidates:
            if not (outcome.ok and outcome.result.feasible):
                continue
            result = (
                self._globalize(shard, unit.query, outcome.result)
                if shard is not None
                else outcome.result
            )
            if best is None or result.objective_score < best[1].objective_score:
                best = (key, result)
        if best is not None:
            unit.shard, unit.result = best
            unit.error = None
            return

        # Nothing feasible: the last candidate is always the one whose
        # verdict covers the full graph (global when escalation ran).
        key, outcome, shard = candidates[-1]
        unit.shard = key
        if outcome.error is not None:
            unit.error = outcome.error
            unit.result = None
        elif outcome.result is not None:
            unit.result = (
                self._globalize(shard, unit.query, outcome.result)
                if shard is not None
                else outcome.result
            )
        else:  # pragma: no cover - backends always set one of the two
            unit.error = QueryError("backend returned an empty task outcome")
