"""``ShardedQueryService`` — partition-routed serving over many engines.

The flat :class:`~repro.service.service.QueryService` wraps exactly one
:class:`~repro.core.engine.KOREngine`, whose dense cost tables are the
scale ceiling: ``O(n^2)`` floats per matrix.  This module splits the
graph with :func:`repro.prep.partition.partition_graph` (the paper's
Section-6 sketch) and builds **one engine per cell** — each with its own
(small) tables and inverted index over the cell's induced subgraph —
plus one :class:`~repro.service.crosscell.BorderEngine` that answers
queries over the *full* graph from the very same per-cell tables plus a
``k x k`` border tier.  There is **no flat global engine**: per-service
table memory genuinely shrinks as ``num_cells`` grows, because nothing
holds an ``O(n^2)`` matrix any more.

Routing rule
------------
A query is *cell-local* when the cell owning its **source node** also
owns the target **and** every query keyword has at least one candidate
node inside that cell.  For such queries the service runs **one wave of
two concurrent attempts**: the owning cell's engine (cheap, sees only
the induced subgraph) and the cross-cell :class:`BorderEngine` (sees the
whole graph through assembled border tables).  Feasible outcomes merge
by objective score, ties preferring the cell engine; a cell route is
always genuinely feasible (the subgraph is a subgraph), and the border
assembly is *exact* (see :mod:`repro.service.crosscell`), so the merged
answer carries the same feasibility/objective semantics as a flat
engine.  Queries whose endpoints or keywords span cells — or whose
keywords are missing from the vocabulary entirely — skip the cell
attempt and run on the :class:`BorderEngine` alone.  Compared to the
previous local-then-global *sequential* escalation this one-wave scatter
removes a full round trip from border-heavy traffic: the cross-cell
answer is already computing while the local attempt runs.

With ``num_cells=1`` the single cell *is* the whole graph: the shard
engine answers everything by itself (the cross-cell twin would be a
duplicate and is skipped) and every answer matches the flat service bit
for bit.

Execution
---------
Shard work is described as picklable
:class:`~repro.service.backends.ShardTask` objects and executed by any
:class:`~repro.service.backends.ExecutionBackend` — serial, thread pool,
or a process pool whose workers hold their own copies of the shard
engines (finally escaping the GIL for CPU-bound batch fan-out).  The
cross-cell engine ships to workers the same way: its
:class:`~repro.service.backends.EngineHandle` pickles the partitioned
border tables and re-materialises a ``BorderEngine`` worker-side.
Results coming back from a cell engine are translated from cell-local
node ids to global ids before anything downstream sees them.
"""

from __future__ import annotations

import itertools
import math
import threading
import time
from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.deadline import Deadline
from repro.core.engine import ALGORITHMS, KOREngine
from repro.core.query import KORQuery
from repro.core.results import KORResult
from repro.core.route import Route
from repro.exceptions import QueryError
from repro.graph.digraph import SpatialKeywordGraph
from repro.prep.partition import GraphPartition
from repro.service.backends import (
    DEFAULT_WORKERS,
    EngineHandle,
    ExecutionBackend,
    PartPatch,
    ShardTask,
    TaskOutcome,
    ThreadBackend,
    WaveTask,
    _outcome_of,
)
from repro.service.batch import (
    BatchItem,
    BatchReport,
    WaveSizeController,
    batch_keys,
    dedup_units,
)
from repro.service.cache import ResultCache
from repro.service.crosscell import BorderEngine
from repro.service.stats import ServiceStats, StatsSnapshot
from repro.world import CellState, MutableWorld, WorldUpdate

__all__ = ["Shard", "ShardedQueryService"]

_SERVICE_COUNTER = itertools.count()

#: Routing decisions, as reported by :meth:`ShardedQueryService.plan_of`.
LOCAL = "local"
SPAN_ENDPOINTS = "endpoints-span-cells"
SPAN_KEYWORDS = "keywords-span-cells"
MISSING_KEYWORDS = "keywords-missing-from-graph"
INVALID_ENDPOINTS = "invalid-endpoints"

#: Table arrays counted by :meth:`ShardedQueryService.memory_bytes`.
_TABLE_ARRAYS = ("os_tau", "bs_tau", "os_sigma", "bs_sigma", "pred_tau", "pred_sigma")
_BORDER_ARRAYS = (
    "border_os_tau",
    "border_bs_tau",
    "border_os_sigma",
    "border_bs_sigma",
    "border_pred_tau",
    "border_pred_sigma",
)


@dataclass(frozen=True)
class Shard:
    """One cell's worth of serving state.

    ``to_global[local_id] == global_id``; ``to_local`` is the inverse
    mapping (global ids of this cell only).
    """

    key: str
    cell: int
    engine: KOREngine
    handle: EngineHandle
    to_local: dict[int, int]
    to_global: np.ndarray

    @property
    def num_nodes(self) -> int:
        """Node count of the cell's induced subgraph."""
        return len(self.to_global)


@dataclass
class _Plan:
    """Routing decision for one query."""

    reason: str
    shard: Shard | None = None  # the local candidate, when reason == LOCAL


def default_num_cells(num_nodes: int) -> int:
    """Default cell count: ``~sqrt(n)/2`` cells of ``~2*sqrt(n)`` nodes.

    Matches :class:`repro.prep.partition.PartitionedCostTables`'s
    heuristic, clamped to the node count.
    """
    return max(1, min(num_nodes, max(2, int(math.sqrt(num_nodes) / 2))))


class ShardedQueryService:
    """Partition-routed, cached, backend-executed serving layer.

    Parameters
    ----------
    graph:
        The full spatial-keyword graph to serve.
    num_cells:
        Partition granularity (default :func:`default_num_cells`).
        ``num_cells=1`` degenerates to the flat service exactly.
    seed:
        Partition seed (farthest-point sampling is randomised).
    backend:
        Execution backend for shard tasks; default a
        :class:`~repro.service.backends.ThreadBackend` owned (and closed)
        by this service.  A caller-supplied backend is shared, not owned.
    cache_capacity / max_cached_route_nodes:
        Result-cache bounds, as in the flat service.  Cached entries are
        already translated to global node ids.
    wave_kernels:
        Whether the scatter plan groups same-shard attempts into
        :class:`~repro.service.backends.WaveTask` waves (default True) —
        one submission and, on a process backend, one pickle+IPC round
        trip per shard wave instead of one per attempt.  Results are
        identical either way; waves that break outright fall back to
        per-query tasks.
    wave_size:
        Fixed wave size, or ``None`` (default) for adaptive sizing via
        :class:`~repro.service.batch.WaveSizeController`.
    """

    def __init__(
        self,
        graph: SpatialKeywordGraph | None = None,
        num_cells: int | None = None,
        seed: int = 0,
        backend: ExecutionBackend | None = None,
        cache_capacity: int = 1024,
        default_workers: int = DEFAULT_WORKERS,
        max_cached_route_nodes: int | None = None,
        world: MutableWorld | None = None,
        wave_kernels: bool = True,
        wave_size: int | None = None,
    ) -> None:
        if default_workers < 1:
            raise QueryError(f"default_workers must be >= 1, got {default_workers}")
        if world is None:
            if graph is None:
                raise QueryError("ShardedQueryService needs a graph or a world")
            world = MutableWorld(graph, num_cells=num_cells, seed=seed)
        elif graph is not None and graph is not world.graph:
            raise QueryError(
                "pass either a graph or a world, not both: the world carries "
                "its own graph"
            )
        self._world = world
        self._graph = world.graph
        self._partition: GraphPartition = world.partition
        self._owns_backend = backend is None
        self._backend = backend if backend is not None else ThreadBackend(default_workers)
        self._default_workers = default_workers
        self._cache = ResultCache(cache_capacity, max_route_nodes=max_cached_route_nodes)
        self._stats = ServiceStats()
        self._update_lock = threading.Lock()
        self._wave_kernels = wave_kernels
        self._wave_controller = (
            WaveSizeController(wave_size, fixed=True)
            if wave_size is not None
            else WaveSizeController()
        )
        self._wave_controller.retarget(self._graph)

        # The world already materialised every cell's subgraph, tables
        # and index — shard engines assemble from those parts and pay
        # zero extra pre-processing; the cross-cell tier shares the very
        # same cell tables (its only additional state is the border
        # tier, and with one cell not even that).
        self._prefix = f"svc{next(_SERVICE_COUNTER)}/"
        self._shards = tuple(
            self._build_shard(state, handle=None) for state in world.cells
        )
        self._border_engine = BorderEngine(
            self._graph, tables=world.tables, index=world.index
        )
        self._crosscell_handle = EngineHandle(
            self._border_engine, key=f"{self._prefix}crosscell"
        )
        for shard in self._shards:
            self._backend.register(shard.handle)
        self._backend.register(self._crosscell_handle)

    def _build_shard(self, state: CellState, handle: EngineHandle | None) -> Shard:
        """A :class:`Shard` over one world cell's pre-built parts.

        With ``handle`` given (live update), the existing handle is
        reset in place so every registry keyed by it stays valid.
        """
        engine = KOREngine(state.subgraph, tables=state.tables, index=state.index)
        if handle is None:
            handle = EngineHandle(engine, key=f"{self._prefix}cell-{state.cell}")
        else:
            handle.reset(engine)
        return Shard(
            key=handle.key,
            cell=state.cell,
            engine=engine,
            handle=handle,
            to_local=state.to_local,
            to_global=state.to_global,
        )

    @classmethod
    def from_engine(cls, engine: KOREngine, **kwargs) -> "ShardedQueryService":
        """Shard an existing engine's graph (the engine is not reused)."""
        return cls(engine.graph, **kwargs)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> SpatialKeywordGraph:
        """The full graph being served."""
        return self._graph

    @property
    def partition(self) -> GraphPartition:
        """The node-to-cell assignment behind the shards."""
        return self._partition

    @property
    def world(self) -> MutableWorld:
        """The mutable world this service serves (graph + tables + index)."""
        return self._world

    @property
    def epoch(self) -> int:
        """Graph epoch: number of updates applied since construction."""
        return self._world.epoch

    @property
    def shards(self) -> tuple[Shard, ...]:
        """One :class:`Shard` per cell, in cell order."""
        return self._shards

    @property
    def wave_size(self) -> int:
        """The wave size the next scatter will chunk shard groups by."""
        return self._wave_controller.wave_size

    def tune_waves(self, arrival_qps: float) -> int:
        """Feed the arrival-rate estimate into adaptive wave sizing.

        Same contract as the flat service's ``tune_waves``: called by the
        async front end whenever its EWMA updates; returns the wave size
        now in effect.
        """
        self._wave_controller.observe(arrival_qps)
        return self._wave_controller.wave_size

    def wave_policy(self) -> dict:
        """The adaptive-sizing policy snapshot (``scheduling_stats``)."""
        return self._wave_controller.describe()

    @property
    def num_shards(self) -> int:
        """Number of cells the graph was split into."""
        return len(self._shards)

    @property
    def border_engine(self) -> BorderEngine:
        """The cross-cell tier: full-graph answers over border tables."""
        return self._border_engine

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend shard tasks run on."""
        return self._backend

    @property
    def cache(self) -> ResultCache:
        """The canonicalizing LRU result cache (global-id results)."""
        return self._cache

    @property
    def stats(self) -> ServiceStats:
        """Serving metrics, including per-shard task counters."""
        return self._stats

    def snapshot(self) -> StatsSnapshot:
        """One frozen view of the serving story.

        Folds in the backend's submission accounting
        (``queue_depth_peak``) and, for a warm-pinned process backend,
        its pin counters (``pinning``).
        """
        pin_stats = getattr(self._backend, "pin_stats", None)
        pinning = pin_stats() if callable(pin_stats) else None
        return self._stats.snapshot(
            pinning=pinning, queue_depth_peak=self._backend.peak_in_flight
        )

    def memory_bytes(self) -> int:
        """Bytes of cost-table state resident in this service.

        Counts every score and predecessor matrix across the cell
        engines and the cross-cell tier exactly once (the border engine
        shares the cell tables, so shared arrays are deduplicated by
        identity).  This is the number the memory-scaling test pins:
        without a flat global engine it must not grow with ``num_cells``.
        """
        seen: set[int] = set()
        total = 0

        def add(array) -> None:
            nonlocal total
            if array is not None and id(array) not in seen:
                seen.add(id(array))
                total += array.nbytes

        for shard in self._shards:
            for name in _TABLE_ARRAYS:
                add(getattr(shard.engine.tables, name))
        assembled = self._border_engine.tables
        for tables in assembled.cell_tables:
            for name in _TABLE_ARRAYS:
                add(getattr(tables, name))
        for name in _BORDER_ARRAYS:
            add(getattr(assembled, name))
        # The assembled tables' bounded row/column LRU caches are derived
        # state but resident nonetheless; count them so nothing hides.
        total += assembled.cache_bytes()
        return total

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def invalidate_cache(self) -> int:
        """Drop every cached result and bump the cache epoch."""
        return self._cache.invalidate()

    # ------------------------------------------------------------------
    # live mutation
    # ------------------------------------------------------------------
    def apply_ops(self, ops: Sequence[Mapping[str, object]]) -> int:
        """Apply wire-shaped graph mutations; returns the new epoch.

        The world performs the incremental repair (only the mutated
        cells' tables plus the border tier recompute); this method then
        lands the repaired parts in the serving plane under an **epoch
        fence**: affected shard handles are reset in place (same keys),
        pool workers receive :class:`~repro.service.backends.PartPatch`
        deltas through their ordinary FIFO task queues — so every task
        submitted before the update runs against the old state and every
        task after against the new — and the result cache is invalidated
        exactly once at the end, which also makes the epoch guard drop
        write-backs from queries still finishing on the old graph.
        """
        with self._update_lock:
            update = self._world.apply_ops(ops)
            self._integrate(update)
            return self._world.epoch

    def update_edge_cost(
        self,
        u: int,
        v: int,
        objective: float | None = None,
        budget: float | None = None,
    ) -> int:
        """Re-cost edge ``(u, v)``; returns the new epoch."""
        op = {"op": "update_edge_cost", "u": u, "v": v}
        if objective is not None:
            op["objective"] = objective
        if budget is not None:
            op["budget"] = budget
        return self.apply_ops([op])

    def close_node(self, node: int) -> int:
        """Take *node* out of service; returns the new epoch."""
        return self.apply_ops([{"op": "close_node", "node": node}])

    def open_node(self, node: int) -> int:
        """Restore a closed node; returns the new epoch."""
        return self.apply_ops([{"op": "open_node", "node": node}])

    def update_keywords(self, node: int, keywords: Iterable[str]) -> int:
        """Replace *node*'s keywords; returns the new epoch."""
        return self.apply_ops(
            [{"op": "update_keywords", "node": node, "keywords": list(keywords)}]
        )

    def _integrate(self, update: WorldUpdate) -> None:
        """Land one applied :class:`~repro.world.WorldUpdate` in the
        serving plane (caller holds the update lock)."""
        world = self._world
        self._graph = world.graph
        # Density may have shifted: re-derive the grown wave size.
        self._wave_controller.retarget(self._graph)

        patches: list[PartPatch] = []
        repaired = set(update.repaired_cells)
        reindexed = {
            cell
            for cell in update.refreshed_cells
            if world.cells[cell].index is not self._shards[cell].engine.index
        }
        shards = list(self._shards)
        for cell in update.refreshed_cells:
            state = world.cells[cell]
            shards[cell] = self._build_shard(state, handle=shards[cell].handle)
            patches.append(
                PartPatch(
                    key=shards[cell].key,
                    # Cell subgraphs are small: shipping the refreshed one
                    # outright is cheaper than delta bookkeeping in local
                    # ids — and sidesteps keyword-id order entirely.
                    graph=state.subgraph,
                    tables=state.tables if cell in repaired else None,
                    index=state.index if cell in reindexed else None,
                )
            )
        self._shards = tuple(shards)

        # The cross-cell twin always refreshes: even a keyword-only
        # change rewrote the full graph it binds queries against.
        self._border_engine = BorderEngine(
            self._graph, tables=world.tables, index=world.index
        )
        self._crosscell_handle.reset(self._border_engine)
        delta = update.delta
        # A delta that interned new keywords cannot be replayed remotely:
        # the worker would intern in merged-delta order, not op order,
        # and disagree with the shipped index on keyword ids.  Ship the
        # full graph in that case (adjacency-sized, not table-sized).
        structural_only = not delta.set_keywords
        patches.append(
            PartPatch(
                key=self._crosscell_handle.key,
                graph=None if structural_only else self._graph,
                graph_delta=delta if structural_only else None,
                cell_tables=tuple(
                    (cell, world.cells[cell].tables) for cell in update.repaired_cells
                ),
                border=(
                    tuple(
                        (name, getattr(world.tables, name)) for name in _BORDER_ARRAYS
                    )
                    if update.border_rebuilt
                    else ()
                ),
                index=world.index if update.index_rebuilt else None,
            )
        )
        self._backend.apply_patches(patches)
        self._cache.invalidate()

    def close(self) -> None:
        """Retire this service's engines from the backend (idempotent).

        Every shard handle (and the cross-cell one) is unregistered — on
        a shared backend the engines would otherwise stay pinned, and be
        re-shipped to every new pool worker, for the backend's lifetime.
        The backend itself is only closed when this service created it.
        A closed service must not serve further batches.
        """
        for shard in self._shards:
            self._backend.unregister(shard.key)
        self._backend.unregister(self._crosscell_handle.key)
        if self._owns_backend:
            self._backend.close()

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def plan_of(self, query: KORQuery) -> str:
        """The routing decision for *query* (``local`` / ``*-span-cells``
        / ``keywords-missing-from-graph`` / ``invalid-endpoints``),
        without running anything."""
        return self._plan(query).reason

    def _plan(self, query: KORQuery) -> _Plan:
        n = self._graph.num_nodes
        if not (0 <= query.source < n and 0 <= query.target < n):
            # Let the cross-cell engine produce the canonical QueryError.
            return _Plan(reason=INVALID_ENDPOINTS)
        table = self._graph.keyword_table
        keyword_ids = [table.get(word) for word in query.keywords]
        if any(kid is None for kid in keyword_ids):
            # Absent from the whole vocabulary: no engine can cover it.
            # One cross-cell run produces the canonical infeasible answer
            # cheaply (binding fails before any search), and skipping
            # the local attempt avoids a pointless twin task.
            return _Plan(reason=MISSING_KEYWORDS)
        src_cell = int(self._partition.cell_of[query.source])
        if int(self._partition.cell_of[query.target]) != src_cell:
            return _Plan(reason=SPAN_ENDPOINTS)
        shard = self._shards[src_cell]
        for kid in keyword_ids:
            if shard.engine.index.document_frequency(kid) == 0:
                # Keyword exists in the graph but not in this cell: only
                # a cross-cell route can cover it.
                return _Plan(reason=SPAN_KEYWORDS)
        return _Plan(reason=LOCAL, shard=shard)

    def _localize(self, shard: Shard, query: KORQuery) -> KORQuery:
        return KORQuery(
            shard.to_local[query.source],
            shard.to_local[query.target],
            query.keywords,
            query.budget_limit,
        )

    def _globalize(self, shard: Shard, query: KORQuery, result: KORResult) -> KORResult:
        """Translate a cell-engine result back to global node ids."""
        route = result.route
        if route is not None:
            route = Route(
                nodes=tuple(int(shard.to_global[v]) for v in route.nodes),
                objective_score=route.objective_score,
                budget_score=route.budget_score,
            )
        return KORResult(
            query=query,
            algorithm=result.algorithm,
            route=route,
            covers_keywords=result.covers_keywords,
            within_budget=result.within_budget,
            stats=result.stats,
            failure_reason=result.failure_reason,
            degraded=result.degraded,
        )

    # ------------------------------------------------------------------
    # single queries
    # ------------------------------------------------------------------
    def query(
        self,
        source: int,
        target: int,
        keywords: Iterable[str],
        budget_limit: float,
        algorithm: str = "bucketbound",
        **params,
    ) -> KORResult:
        """Answer one KOR query through routing and the cache."""
        return self.submit(
            KORQuery(source, target, tuple(keywords), budget_limit),
            algorithm=algorithm,
            **params,
        )

    def submit(
        self,
        query: KORQuery,
        algorithm: str = "bucketbound",
        deadline: Deadline | None = None,
        **params,
    ) -> KORResult:
        """Answer a pre-built query (a batch of one, sharing all paths).

        Cacheable submissions are single-flight protected: concurrent
        identical misses fold into one scatter wave, with the waiters
        served the leader's (already cached, already global-id) result.
        ``deadline`` travels out-of-band: it bounds the scatter wave but
        never enters the cache key.
        """
        begin = time.perf_counter()
        cacheable, keys = batch_keys([query], algorithm, dict(params))

        def compute() -> KORResult:
            report = self.execute(
                [query], algorithm=algorithm, deadline=deadline, **params
            )
            item = report.items[0]
            if item.error is not None:
                raise item.error
            return item.result

        if not cacheable:
            return compute()
        # store=False: the leader's execute() already wrote the cache
        # (epoch-guarded) — get_or_compute only adds the coalescing.
        result, how = self._cache.get_or_compute(keys[0], compute, store=False)
        if how != "computed":
            # The leader's stats were recorded inside execute(); hits
            # and coalesced waiters are accounted here instead.
            elapsed = time.perf_counter() - begin
            if how == "coalesced":
                self._stats.record_coalesced()
            self._stats.record_query(elapsed, cached=True)
            self._stats.record_busy(elapsed)
        return result

    # ------------------------------------------------------------------
    # batches
    # ------------------------------------------------------------------
    def execute(
        self,
        queries: Sequence[KORQuery],
        algorithm: str = "bucketbound",
        workers: int | None = None,
        deadline: Deadline | None = None,
        **params,
    ) -> BatchReport:
        """Run a batch through routing, the backend and the cache.

        **One wave** of backend work: every unique miss submits its
        cell-local attempt (when the routing plan has one) *and* its
        cross-cell attempt concurrently; feasible outcomes merge by
        objective score, ties preferring the cell engine.  Slot order is
        submission order; one failing query marks only its own slot.

        ``deadline`` bounds every attempt of the wave.  When the
        cross-cell attempt dies (deadline, injected fault, dead worker)
        but the cell-local attempt produced a feasible route, the cell
        answer stands in, flagged ``degraded=True`` — it is genuinely
        feasible (a subgraph route is a full-graph route) but only the
        border engine's verdict speaks for global optimality.  A wave
        whose cross attempt *completed* never degrades.
        """
        if algorithm not in ALGORITHMS:
            raise QueryError(
                f"unknown algorithm {algorithm!r}; expected one of {', '.join(ALGORITHMS)}"
            )
        if "binding" in params or "candidates" in params:
            raise QueryError(
                "'binding'/'candidates' cannot be passed to a sharded batch: "
                "they are per-query state bound to one engine's node ids"
            )
        if "deadline" in params:
            raise QueryError(
                "'deadline' is not a query parameter; pass deadline= to the "
                "service call instead"
            )
        if "trace" in params:
            # Cell engines search in cell-local node ids and the
            # concurrent cross-cell twin would interleave a second
            # engine's events into the same sink — a sharded trace would
            # silently mislead.  (Process backends additionally cannot
            # ship the sink back at all.)
            raise QueryError(
                "'trace' is not supported on a sharded service: trace "
                "events would carry cell-local node ids; trace via "
                "engine.run() or a flat QueryService instead"
            )
        begin = time.perf_counter()
        queries = list(queries)
        items = [BatchItem(index=i, query=query) for i, query in enumerate(queries)]
        cacheable, keys = batch_keys(queries, algorithm, dict(params))
        epoch = self._cache.epoch if cacheable else None
        units = dedup_units(items, keys, self._cache, cacheable, epoch)

        if units:
            effective = workers if workers is not None else self._default_workers
            plans = [self._plan(unit.query) for unit in units]
            wave: list[ShardTask] = []
            owners: list[tuple[int, bool]] = []  # (unit position, is cell attempt)
            for position, (unit, plan) in enumerate(zip(units, plans)):
                unit.plan = plan.reason
                if plan.shard is not None:
                    wave.append(
                        ShardTask.build(
                            plan.shard.key,
                            self._localize(plan.shard, unit.query),
                            algorithm,
                            params,
                            deadline=deadline,
                        )
                    )
                    owners.append((position, True))
                    if self.num_shards == 1:
                        # The single cell is the whole graph — the
                        # cross-cell twin would recompute the same answer.
                        continue
                wave.append(
                    ShardTask.build(
                        self._crosscell_handle.key,
                        unit.query,
                        algorithm,
                        params,
                        deadline=deadline,
                    )
                )
                owners.append((position, False))
            outcomes = self._scatter(wave, algorithm, params, deadline, workers=effective)
            self._record_tasks(wave, outcomes)

            cell_outcomes: dict[int, TaskOutcome] = {}
            cross_outcomes: dict[int, TaskOutcome] = {}
            for (position, is_cell), outcome in zip(owners, outcomes):
                (cell_outcomes if is_cell else cross_outcomes)[position] = outcome

            for position, (unit, plan) in enumerate(zip(units, plans)):
                self._merge(
                    unit,
                    plan,
                    cell_outcomes.get(position),
                    cross_outcomes.get(position),
                )

            for unit in units:
                if unit.error is None and cacheable:
                    self._cache.put(unit.key, unit.result, epoch=epoch)
                for slot in unit.slots:
                    items[slot].result = unit.result
                    items[slot].error = unit.error
                    items[slot].latency_seconds = unit.latency_seconds
                    items[slot].shard = unit.shard
                    items[slot].plan = unit.plan

        report = BatchReport(items=items, wall_seconds=time.perf_counter() - begin)
        for item in report.items:
            if item.ok:
                self._stats.record_query(item.latency_seconds, cached=item.cached)
            else:
                self._stats.record_error()
        self._stats.record_busy(report.wall_seconds)
        return report

    def run_batch(
        self,
        queries: Sequence[KORQuery],
        algorithm: str = "bucketbound",
        workers: int | None = None,
        deadline: Deadline | None = None,
        **params,
    ) -> list[KORResult]:
        """Run a batch and return its results in submission order.

        Raises :class:`repro.service.batch.BatchError` (carrying the full
        report) when any slot failed.
        """
        return self.execute(
            queries,
            algorithm=algorithm,
            workers=workers,
            deadline=deadline,
            **params,
        ).results()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _scatter(
        self,
        tasks: list[ShardTask],
        algorithm: str,
        params: dict,
        deadline: Deadline | None,
        workers: int | None,
    ) -> list[TaskOutcome]:
        """Dispatch the scatter plan, waving same-shard attempts together.

        Groups the plan's tasks by shard key (cell engines and the
        cross-cell assembly alike), chunks each group by the adaptive
        wave size, and ships every multi-member chunk as one
        :class:`~repro.service.backends.WaveTask` through ``submit_wave``
        — one submission (and, on a process pool, one pickle+IPC round
        trip) per shard wave instead of one per attempt.  Singleton
        chunks go per-query.  All three containment tiers are preserved:
        a poisoned member errors its own slot inside the kernel, a
        kernel-level failure re-runs the wave member by member worker-
        side (:func:`~repro.service.backends.run_wave_on_engine`), and a
        wave whose *submission* breaks outright is resubmitted here as
        the original per-query ShardTasks.  Outcomes return in task
        order regardless of dispatch shape.
        """
        if not (self._wave_kernels and len(tasks) > 1):
            return self._backend.run_tasks(tasks, workers=workers)

        groups: dict[str, list[int]] = {}
        for position, task in enumerate(tasks):
            groups.setdefault(task.shard, []).append(position)

        capacity = self._wave_controller.wave_size
        dispatches: list[tuple[list[int], object, bool]] = []
        for shard_key, positions in groups.items():
            for lo in range(0, len(positions), capacity):
                chunk = positions[lo : lo + capacity]
                if len(chunk) == 1:
                    dispatches.append(
                        ([chunk[0]], self._backend.submit_task(tasks[chunk[0]]), False)
                    )
                    self._stats.record_wave_solo()
                else:
                    wave = WaveTask.build(
                        shard_key,
                        [tasks[i].query for i in chunk],
                        algorithm,
                        params,
                        deadline=deadline,
                    )
                    dispatches.append((chunk, self._backend.submit_wave(wave), True))
                    self._stats.record_wave(len(chunk), capacity)

        outcomes: list[TaskOutcome | None] = [None] * len(tasks)
        broken: list[int] = []
        for chunk, future, is_wave in dispatches:
            if not is_wave:
                outcomes[chunk[0]] = _outcome_of(future)
                continue
            try:
                wave_outcomes = future.result()
            except Exception:  # noqa: BLE001 - broken wave, degrade per query
                broken.extend(chunk)
                continue
            if not isinstance(wave_outcomes, list) or len(wave_outcomes) != len(chunk):
                broken.extend(chunk)
                continue
            for position, outcome in zip(chunk, wave_outcomes):
                outcomes[position] = outcome

        if broken:
            self._stats.record_wave_solo(len(broken))
            retried = self._backend.run_tasks(
                [tasks[i] for i in broken], workers=workers
            )
            for position, outcome in zip(broken, retried):
                outcomes[position] = outcome
        return outcomes  # type: ignore[return-value]

    def _record_tasks(
        self, tasks: Sequence[ShardTask], outcomes: Sequence[TaskOutcome]
    ) -> None:
        for task, outcome in zip(tasks, outcomes):
            self._stats.record_shard(task.shard, errors=0 if outcome.error is None else 1)

    def _merge(
        self,
        unit,
        plan: _Plan,
        cell: TaskOutcome | None,
        cross: TaskOutcome | None,
    ) -> None:
        """Pick the winning outcome of a unit's scatter wave.

        Feasible candidates are merged by objective score (ties prefer
        the cell shard — its result was produced from less state); with
        no feasible candidate the *cross-cell* outcome stands, because
        only the border engine's verdict speaks for the whole graph
        (when only the cell attempt ran, its cell *is* the whole graph).

        **Graceful degradation**: when the cross-cell attempt *errored*
        (deadline, fault, dead worker) but the cell attempt produced a
        feasible route, that route is returned flagged
        ``degraded=True`` — feasible for sure, optimal unproven.  A
        cross attempt that completed (feasible or not) is authoritative,
        so its waves never degrade.
        """
        # Attempt seconds are summed: that is the compute the query cost,
        # and on a serial (or saturated) backend also its wall clock.  On
        # a concurrent backend the attempts overlap, so batch wall time
        # is tracked separately by BatchReport.wall_seconds.
        unit.latency_seconds = sum(
            outcome.latency_seconds for outcome in (cell, cross) if outcome is not None
        )
        candidates: list[tuple[str, TaskOutcome, Shard | None]] = []
        if cell is not None:
            assert plan.shard is not None
            candidates.append((plan.shard.key, cell, plan.shard))
        if cross is not None:
            candidates.append((self._crosscell_handle.key, cross, None))

        best: tuple[str, KORResult] | None = None
        for key, outcome, shard in candidates:
            if not (outcome.ok and outcome.result.feasible):
                continue
            result = (
                self._globalize(shard, unit.query, outcome.result)
                if shard is not None
                else outcome.result
            )
            if best is None or result.objective_score < best[1].objective_score:
                best = (key, result)
        if best is not None:
            unit.shard, unit.result = best
            unit.error = None
            cross_died = cross is not None and cross.error is not None
            if cross_died and best[0] != self._crosscell_handle.key:
                unit.result = replace(unit.result, degraded=True)
                self._stats.record_merge("degraded")
            else:
                self._stats.record_merge(
                    "crosscell" if best[0] == self._crosscell_handle.key else "cell"
                )
            return

        # Nothing feasible: the last candidate is always the one whose
        # verdict covers the full graph (cross-cell when it ran).
        key, outcome, shard = candidates[-1]
        unit.shard = key
        if outcome.error is not None:
            unit.error = outcome.error
            unit.result = None
            self._stats.record_merge("error")
        elif outcome.result is not None:
            unit.result = (
                self._globalize(shard, unit.query, outcome.result)
                if shard is not None
                else outcome.result
            )
            self._stats.record_merge("infeasible")
        else:  # pragma: no cover - backends always set one of the two
            unit.error = QueryError("backend returned an empty task outcome")
            self._stats.record_merge("error")
