"""Pluggable execution backends for the serving layer.

The serving layer describes compute work in one of two currencies:

* **in-process closures** — the batch executor's per-unit ``compute``
  functions, which capture live engine objects and a shared candidate
  map (cheap, but GIL-bound);
* **shard tasks** — :class:`ShardTask`, a picklable description of "run
  this query, with this algorithm and these parameters, against the
  engine registered under this shard key".

A third, coarser currency rides on top: **waves** (:class:`WaveTask`) —
several same-``(algorithm, params)`` queries shipped as *one*
submission and executed through one numpy lockstep kernel invocation
(:func:`repro.core.kernels.run_wave`) on the shard's engine.
:meth:`ExecutionBackend.submit_wave` resolves to one
:class:`TaskOutcome` per member; a member's failure stays in its slot,
and a wave-level failure degrades to the per-query path
(worker-side in :func:`run_wave_on_engine`, parent-side by the batch
executor resubmitting members as :class:`ShardTask` work).

Since the async front-end landed, the *primitive* every backend
implements is **futures-based submission**: :meth:`ExecutionBackend.\
submit_task` hands one :class:`ShardTask` to the backend and immediately
returns a ``concurrent.futures.Future`` resolving to its
:class:`TaskOutcome`.  The blocking batch APIs (:meth:`run_tasks`,
:meth:`map`) are thin shared wrappers over that primitive — submit,
optionally windowed to a ``workers`` limit, then gather in submission
order — so Serial/Thread/Process execute batches through one code path
and a server can interleave request handling with shard fan-out by
holding the futures instead.

Admission is bounded: construct any backend with ``max_in_flight=N`` and
the (N+1)-th concurrent submission blocks until a slot frees.  The
current depth, high-water mark and number of blocked admissions are
exposed (:attr:`~ExecutionBackend.in_flight`,
:attr:`~ExecutionBackend.peak_in_flight`,
:attr:`~ExecutionBackend.admission_waits`) and surface in service
snapshots as ``queue_depth_peak``.

:class:`SerialBackend` and :class:`ThreadBackend` execute both kinds of
work in the calling process.  :class:`ProcessBackend` executes shard
tasks out of process — and is **warm-pinned**: instead of one anonymous
pool it keeps ``workers`` single-process *lanes* and remembers which
lane first served each shard, so repeat traffic for a cell lands on the
worker that already materialised that cell's engine.  Worker-side,
engines live in a per-worker LRU under an optional byte budget
(``max_worker_engine_bytes``); parent-side, pin hits/misses/assignments
and dead-worker fallbacks are counted (:meth:`ProcessBackend.pin_stats`)
and per-worker build/eviction counters are introspectable
(:meth:`ProcessBackend.worker_stats`).  A pinned lane that is saturated
(its queue runs ``spill_margin`` deeper than the least-loaded lane)
spills to the least-loaded lane; a lane whose worker died is rebuilt and
the task retried once, transparently.

Repeated deaths trip a per-lane **circuit breaker**: after
``breaker_threshold`` consecutive dead-worker retires the lane stops
admitting work for ``breaker_backoff_seconds`` (pinned traffic spills to
healthy lanes), then a single half-open probe task decides whether the
lane re-admits or re-opens.  Breaker transitions are counted in
:meth:`ProcessBackend.breaker_stats`.

Deterministic fault injection (:mod:`repro.service.faults`) hooks both
tiers: :func:`run_task_on_engine` applies task-side delay/error rules,
and ``ProcessBackend`` applies dispatch-side worker-kill rules — both
behind a single module-global None check, so the hot path pays nothing
when no plan is installed.

All backends return outcomes **in task submission order**, so callers
get deterministic slot assignment no matter how many workers raced, and
a task that raises is reported through its own :class:`TaskOutcome`
without disturbing its neighbours.
"""

from __future__ import annotations

import itertools
import os
import pickle
import threading
import time
from abc import ABC, abstractmethod
from collections import OrderedDict
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    Future,
    InvalidStateError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from dataclasses import replace as _dataclass_replace
from typing import Callable, Mapping, Sequence

from repro.core.deadline import Deadline
from repro.core.engine import KOREngine
from repro.core.kernels import KernelContext
from repro.core.kernels import run_wave as _kernel_run_wave
from repro.core.query import KORQuery
from repro.core.results import KORResult
from repro.exceptions import QueryError
from repro.graph.mutation import GraphDelta, apply_graph_delta
from repro.service import faults

__all__ = [
    "DEFAULT_WORKERS",
    "EngineHandle",
    "ExecutionBackend",
    "PartPatch",
    "ProcessBackend",
    "RemoteTaskError",
    "SerialBackend",
    "ShardTask",
    "TaskOutcome",
    "ThreadBackend",
    "WaveTask",
    "backend_from_name",
    "run_wave_on_engine",
]

#: Fan-out width when the caller does not pick one.
DEFAULT_WORKERS = 4

#: How much deeper a pinned lane's queue may run than the least-loaded
#: lane before a task spills off its pin (counted as a pin miss).
DEFAULT_SPILL_MARGIN = 8

#: Consecutive dead-worker failures that open a lane's circuit breaker.
DEFAULT_BREAKER_THRESHOLD = 3

#: How long an open breaker refuses traffic before a half-open probe.
DEFAULT_BREAKER_BACKOFF_SECONDS = 1.0

_HANDLE_COUNTER = itertools.count()


class EngineHandle:
    """A picklable handle to one engine (one shard's worth of state).

    In the owning process the handle wraps a live engine.  Pickling ships
    the graph plus the *pre-built* cost tables and inverted index (plain
    dataclasses over numpy arrays), so a receiving worker process pays
    zero pre-processing: :meth:`engine` reassembles the engine from the
    parts on first use and caches it for the life of the worker.  The
    engine's *class* travels with the state, so a
    :class:`~repro.service.crosscell.BorderEngine` handle re-materialises
    as a ``BorderEngine`` (partitioned border tables and all), not as a
    flat :class:`~repro.core.engine.KOREngine`.

    ``key`` identifies the handle across process boundaries; two handles
    never share a key unless one was pickled from the other.
    """

    __slots__ = ("key", "_graph", "_tables", "_index", "_engine", "_engine_cls")

    def __init__(self, engine: KOREngine, key: str | None = None) -> None:
        self.key = key if key is not None else f"engine-{next(_HANDLE_COUNTER)}"
        self._engine: KOREngine | None = engine
        self._engine_cls = type(engine)
        self._graph = engine.graph
        self._tables = engine.tables
        self._index = engine.index

    def materialise(self) -> KOREngine:
        """A fresh live engine assembled from the pre-built parts.

        Unlike :meth:`engine` the result is *not* retained on the
        handle — the worker-side engine LRU owns the lifetime, so an
        evicted engine is actually freed instead of hiding here.
        """
        return self._engine_cls(self._graph, tables=self._tables, index=self._index)

    def reset(self, engine: KOREngine) -> None:
        """Swap this handle's state for *engine*'s, keeping the key.

        This is how a live update lands without re-registration: every
        registry (backend handle map, shard records, pool-worker handle
        copies) keeps pointing at the same key while the parts underneath
        change.  Worker-side copies are *not* updated by this call —
        ship them a :class:`PartPatch` (see
        :meth:`ExecutionBackend.apply_patches`).
        """
        self._engine = engine
        self._engine_cls = type(engine)
        self._graph = engine.graph
        self._tables = engine.tables
        self._index = engine.index

    def engine(self) -> KOREngine:
        """The live engine (materialised from parts after unpickling)."""
        if self._engine is None:
            self._engine = self.materialise()
        return self._engine

    def __getstate__(self) -> dict:
        return {
            "key": self.key,
            "graph": self._graph,
            "tables": self._tables,
            "index": self._index,
            "engine_cls": self._engine_cls,
        }

    def __setstate__(self, state: dict) -> None:
        self.key = state["key"]
        self._graph = state["graph"]
        self._tables = state["tables"]
        self._index = state["index"]
        self._engine_cls = state.get("engine_cls", KOREngine)
        self._engine = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EngineHandle({self.key!r}, {self._graph.num_nodes} nodes)"


@dataclass(frozen=True, eq=False)
class PartPatch:
    """A picklable *partial* update to one registered shard's state.

    This is the live-update currency: instead of unregistering a shard
    and shipping a whole rebuilt engine to every pool worker, the
    serving layer broadcasts the pieces that actually changed.  Every
    field is absolute (new state, not diffs-of-diffs), so re-applying a
    patch is a no-op — which is what makes the broadcast safe against a
    lane being (re)initialised from the already-updated parent handles
    concurrently.

    ``graph`` replaces the graph outright; ``graph_delta`` instead
    replays a :class:`~repro.graph.mutation.GraphDelta` against the
    recipient's current graph (cheaper on the wire; identical result on
    every replica because delta application is deterministic, including
    keyword-id interning order).  ``tables`` replaces the table object
    wholesale, while ``cell_tables`` + ``border`` substitute individual
    cells and border matrices into an existing
    :class:`~repro.prep.partition.PartitionedCostTables` — the
    incremental-repair fast path, shipping one repaired cell instead of
    every cell.  ``index`` replaces the inverted index.
    """

    key: str
    graph: object | None = None
    graph_delta: GraphDelta | None = None
    tables: object | None = None
    cell_tables: tuple[tuple[int, object], ...] = ()
    border: tuple[tuple[str, object], ...] = ()
    index: object | None = None

    def apply_to(self, handle: EngineHandle) -> None:
        """Fold this patch into *handle* (idempotent)."""
        graph = handle._graph
        if self.graph is not None:
            graph = self.graph
        elif self.graph_delta is not None:
            graph = apply_graph_delta(graph, self.graph_delta)
        tables = handle._tables
        if self.tables is not None:
            tables = self.tables
        elif self.cell_tables or self.border:
            cells = list(tables.cell_tables)
            for cell, cell_table in self.cell_tables:
                cells[cell] = cell_table
            # Passing the caches as None makes __post_init__ rebuild
            # them empty — the old caches memoise the old tables.
            tables = _dataclass_replace(
                tables,
                cell_tables=tuple(cells),
                **dict(self.border),
                _column_cache=None,
                _row_cache=None,
            )
        handle._graph = graph
        handle._tables = tables
        if self.index is not None:
            handle._index = self.index
        handle._engine = None


@dataclass(frozen=True)
class ShardTask:
    """One picklable unit of work: a query against one registered shard.

    ``params`` is a sorted tuple of ``(name, value)`` pairs rather than a
    dict so tasks are hashable and their pickled form is deterministic.
    """

    shard: str
    query: KORQuery
    algorithm: str
    params: tuple[tuple[str, object], ...] = ()
    #: Out-of-band cancellation deadline.  Deliberately *not* part of
    #: ``params``: cache keys and wave grouping must not see it, and its
    #: identity hash keeps the frozen task hashable.
    deadline: Deadline | None = None

    @classmethod
    def build(
        cls,
        shard: str,
        query: KORQuery,
        algorithm: str,
        params: Mapping[str, object] | None = None,
        deadline: Deadline | None = None,
    ) -> "ShardTask":
        """Normalise a params mapping into task form."""
        items = tuple(sorted(params.items())) if params else ()
        return cls(
            shard=shard, query=query, algorithm=algorithm, params=items, deadline=deadline
        )


@dataclass(frozen=True)
class WaveTask:
    """One picklable *wave*: several same-``(algorithm, params)`` queries
    against one registered shard, executed through a single
    :func:`repro.core.kernels.run_wave` invocation.

    Waves are the batch executor's fatter task currency: where a
    :class:`ShardTask` round-trips one query, a wave ships B queries in
    one submission and lets the kernel advance them in numpy lockstep.
    Failures stay per member — the wave resolves to one
    :class:`TaskOutcome` per query, in order.
    """

    shard: str
    queries: tuple[KORQuery, ...]
    algorithm: str
    params: tuple[tuple[str, object], ...] = ()
    #: Out-of-band cancellation deadline (see :class:`ShardTask`).
    deadline: Deadline | None = None

    @classmethod
    def build(
        cls,
        shard: str,
        queries: Sequence[KORQuery],
        algorithm: str,
        params: Mapping[str, object] | None = None,
        deadline: Deadline | None = None,
    ) -> "WaveTask":
        """Normalise a params mapping into task form."""
        items = tuple(sorted(params.items())) if params else ()
        return cls(
            shard=shard,
            queries=tuple(queries),
            algorithm=algorithm,
            params=items,
            deadline=deadline,
        )

    def member_task(self, query: KORQuery) -> ShardTask:
        """The :class:`ShardTask` one member would have been, solo —
        what fault plans and per-query fallbacks see."""
        return ShardTask(
            shard=self.shard,
            query=query,
            algorithm=self.algorithm,
            params=self.params,
            deadline=self.deadline,
        )


@dataclass
class TaskOutcome:
    """What one :class:`ShardTask` produced (result or error, never both)."""

    result: KORResult | None = None
    error: Exception | None = None
    latency_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the task produced a result."""
        return self.error is None and self.result is not None


class RemoteTaskError(QueryError):
    """A worker-process failure whose original exception could not cross
    the process boundary; carries the original type name and message."""


def run_task_on_engine(engine: KOREngine, task: ShardTask) -> TaskOutcome:
    """Execute *task* against a live *engine*, capturing error and timing."""
    begin = time.perf_counter()
    try:
        # Fault hook: one global load + None check when no plan is
        # installed — the zero-overhead-when-off contract.
        plan = faults._ACTIVE
        if plan is not None:
            plan.on_task(task)
        params = dict(task.params)
        if task.deadline is not None:
            params["deadline"] = task.deadline
        result = engine.run(task.query, algorithm=task.algorithm, **params)
        return TaskOutcome(result=result, latency_seconds=time.perf_counter() - begin)
    except Exception as error:  # noqa: BLE001 - reported per task
        return TaskOutcome(error=error, latency_seconds=time.perf_counter() - begin)


def run_wave_on_engine(
    engine: KOREngine, task: WaveTask, kernel_context: KernelContext | None = None
) -> list[TaskOutcome]:
    """Execute a wave against a live *engine*, one outcome per member.

    Fault rules fire per member through the kernel's ``on_member`` hook —
    each member presents to the plan as the :class:`ShardTask` it would
    have been solo, so shard/query filters written for the per-query path
    apply unchanged, and an injected error poisons only its own slot.

    A *wave-level* failure (anything :func:`repro.core.kernels.run_wave`
    itself raises, as opposed to a member's contained error) degrades to
    the per-query path: every member re-runs through
    :func:`run_task_on_engine`, so survivors still get answers.
    """
    plan = faults._ACTIVE
    on_member = None
    if plan is not None:

        def on_member(_index: int, query: KORQuery, _plan=plan) -> None:
            _plan.on_task(task.member_task(query))

    try:
        wave = _kernel_run_wave(
            engine,
            task.queries,
            task.algorithm,
            dict(task.params),
            deadline=task.deadline,
            on_member=on_member,
            kernel_context=kernel_context,
        )
    except Exception:  # noqa: BLE001 - wave-level fault, degrade per query
        return [run_task_on_engine(engine, task.member_task(q)) for q in task.queries]
    return [
        TaskOutcome(result=o.result, error=o.error, latency_seconds=o.latency_seconds)
        for o in wave
    ]


def _completed_future(outcome: TaskOutcome) -> Future:
    """A future that is already resolved to *outcome*."""
    future: Future = Future()
    future.set_result(outcome)
    return future


def _try_resolve(future: Future, outcome: TaskOutcome | None, error: BaseException | None) -> None:
    """Resolve *future* unless a racing cancellation already did."""
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(outcome)
    except InvalidStateError:  # cancelled while the work ran
        pass


def _outcome_of(future: Future) -> TaskOutcome:
    """Collapse a submission future into a :class:`TaskOutcome`."""
    try:
        return future.result()
    except CancelledError:
        return TaskOutcome(
            error=QueryError("task was cancelled before it started executing")
        )
    except Exception as error:  # noqa: BLE001 - per-task reporting
        return TaskOutcome(error=error)


def _engine_weight_bytes(engine: KOREngine) -> int:
    """Resident-byte estimate of one engine (its cost tables dominate)."""
    tables = getattr(engine, "tables", None)
    if tables is None:
        return 0
    memory = getattr(tables, "memory_bytes", None)
    if callable(memory):
        return int(memory())
    total = 0
    for name in ("os_tau", "bs_tau", "os_sigma", "bs_sigma", "pred_tau", "pred_sigma"):
        matrix = getattr(tables, name, None)
        if matrix is not None and hasattr(matrix, "nbytes"):
            total += int(matrix.nbytes)
    return total


# ----------------------------------------------------------------------
# process-worker plumbing (module level so it pickles by reference)
# ----------------------------------------------------------------------

_WORKER_STATE: dict = {
    "handles": {},
    "engines": OrderedDict(),  # shard key -> live engine (LRU order)
    "weights": {},  # shard key -> resident byte estimate
    "budget": None,
    "builds": {},  # shard key -> times materialised in this worker
    "evictions": 0,
    "kernels": {},  # shard key -> KernelContext (wave-shared caches)
}


def _process_worker_init(
    handles: tuple[EngineHandle, ...],
    engine_budget: int | None,
    fault_rules: tuple = (),
) -> None:
    """Pool initializer: install this generation's handles and budget.

    ``fault_rules`` ships the active fault plan's task-side rules into
    the worker, where the parent's module global is invisible; the
    worker installs its own plan over them so ``run_task_on_engine``'s
    single hook covers every backend.
    """
    _WORKER_STATE["handles"] = {handle.key: handle for handle in handles}
    _WORKER_STATE["engines"] = OrderedDict()
    _WORKER_STATE["weights"] = {}
    _WORKER_STATE["budget"] = engine_budget
    _WORKER_STATE["builds"] = {}
    _WORKER_STATE["evictions"] = 0
    _WORKER_STATE["kernels"] = {}
    if fault_rules:
        faults.install(faults.FaultPlan(fault_rules))
    else:
        faults.clear()


def _worker_engine(key: str) -> KOREngine:
    """This worker's engine for shard *key*, via the per-worker LRU.

    A cache hit refreshes recency; a miss materialises the engine from
    its handle (counted in ``builds``) and, when a byte budget is set,
    evicts least-recently-used engines until the resident estimate fits
    again — always keeping at least the engine just built.
    """
    engines: OrderedDict = _WORKER_STATE["engines"]
    engine = engines.get(key)
    if engine is not None:
        engines.move_to_end(key)
        return engine
    handle: EngineHandle = _WORKER_STATE["handles"][key]
    engine = handle.materialise()
    builds = _WORKER_STATE["builds"]
    builds[key] = builds.get(key, 0) + 1
    weights: dict = _WORKER_STATE["weights"]
    engines[key] = engine
    weights[key] = _engine_weight_bytes(engine)
    budget = _WORKER_STATE["budget"]
    if budget is not None:
        while len(engines) > 1 and sum(weights.values()) > budget:
            evicted_key, _evicted = engines.popitem(last=False)
            weights.pop(evicted_key, None)
            # The kernel context pins the evicted engine's graph and
            # tables; drop it so the eviction actually frees memory.
            _WORKER_STATE["kernels"].pop(evicted_key, None)
            _WORKER_STATE["evictions"] += 1
    return engine


def _worker_kernel_context(key: str, engine: KOREngine) -> KernelContext:
    """This worker's wave-shared :class:`KernelContext` for shard *key*.

    One context per resident engine: waves on one worker run
    sequentially, so the context's caches (target columns, bitmask
    arrays, adjacency blocks) accumulate across waves without locking.
    The graph-identity check rebuilds the context if the shard was
    re-registered with different state under the same key.
    """
    contexts: dict = _WORKER_STATE["kernels"]
    kctx = contexts.get(key)
    if kctx is None or kctx.graph is not engine.graph:
        kctx = KernelContext(engine.graph, engine.tables)
        contexts[key] = kctx
    return kctx


def _portable_error(error: Exception) -> Exception:
    """An exception guaranteed to survive pickling back to the parent."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:  # noqa: BLE001 - any pickling failure downgrades
        return RemoteTaskError(f"{type(error).__name__}: {error}")


def _process_run_task(task: ShardTask) -> TaskOutcome:
    """Worker-side task entry point (looks the engine up by shard key)."""
    if task.shard not in _WORKER_STATE["handles"]:
        return TaskOutcome(
            error=RemoteTaskError(
                f"shard {task.shard!r} is not registered in this worker; "
                f"known shards: {sorted(_WORKER_STATE['handles'])}"
            )
        )
    outcome = run_task_on_engine(_worker_engine(task.shard), task)
    if outcome.error is not None:
        outcome.error = _portable_error(outcome.error)
    return outcome


def _process_run_wave(task: WaveTask) -> list[TaskOutcome]:
    """Worker-side wave entry point (engine + kernel context by key)."""
    if task.shard not in _WORKER_STATE["handles"]:
        error = RemoteTaskError(
            f"shard {task.shard!r} is not registered in this worker; "
            f"known shards: {sorted(_WORKER_STATE['handles'])}"
        )
        return [TaskOutcome(error=error) for _ in task.queries]
    engine = _worker_engine(task.shard)
    outcomes = run_wave_on_engine(
        engine, task, kernel_context=_worker_kernel_context(task.shard, engine)
    )
    for outcome in outcomes:
        if outcome.error is not None:
            outcome.error = _portable_error(outcome.error)
    return outcomes


def _process_apply_patches(patches: tuple) -> bool:
    """Worker-side live update: patch handles, drop derived state.

    Runs through the lane's ordinary FIFO queue, which is the epoch
    fence: tasks submitted before the patch see the old engines, tasks
    submitted after see the new ones, and nothing in between.
    """
    for patch in patches:
        handle = _WORKER_STATE["handles"].get(patch.key)
        if handle is not None:
            patch.apply_to(handle)
        # Materialised engines, weight estimates and kernel contexts all
        # memoise the pre-patch parts; next use rebuilds from the handle.
        _WORKER_STATE["engines"].pop(patch.key, None)
        _WORKER_STATE["weights"].pop(patch.key, None)
        _WORKER_STATE["kernels"].pop(patch.key, None)
    return True


def _worker_introspect(_: int = 0) -> dict:
    """Worker-side counters for :meth:`ProcessBackend.worker_stats`."""
    return {
        "pid": os.getpid(),
        "builds": dict(_WORKER_STATE["builds"]),
        "resident": list(_WORKER_STATE["engines"]),
        "resident_bytes": sum(_WORKER_STATE["weights"].values()),
        "evictions": _WORKER_STATE["evictions"],
    }


def _worker_ping(_: int) -> bool:
    """No-op used by :meth:`ProcessBackend.warm_up`."""
    return True


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------


class ExecutionBackend(ABC):
    """Strategy for executing serving-layer work.

    The primitive is :meth:`submit_task`; :meth:`run_tasks` and
    :meth:`map` are shared submission-order wrappers over it (and over
    :meth:`submit_call` for closures).  ``in_process`` backends
    additionally support closures sharing parent memory (the batch
    executor's shared-candidate fast path); out-of-process backends only
    accept :class:`ShardTask` work, whose engines must first be made
    known via :meth:`register`.

    ``max_in_flight`` bounds concurrent submissions: the backend admits
    at most that many unresolved futures, blocking further
    ``submit_*`` calls until one completes.
    """

    #: Stable name used by benchmarks, stats and ``backend_from_name``.
    name: str = "?"
    #: Whether closures sharing parent memory can run on this backend.
    in_process: bool = True

    def __init__(self, max_in_flight: int | None = None) -> None:
        if max_in_flight is not None and max_in_flight < 1:
            raise QueryError(f"max_in_flight must be >= 1 or None, got {max_in_flight}")
        self._handles: dict[str, EngineHandle] = {}
        # Parent-side wave caches for in-process backends, one per shard.
        # A KernelContext's caches are insert-only and every value is
        # fully built before insertion, so concurrent thread-pool waves
        # at worst recompute a value — they never observe a partial one.
        self._kernel_contexts: dict[str, KernelContext] = {}
        self._max_in_flight = max_in_flight
        self._admission = (
            threading.Semaphore(max_in_flight) if max_in_flight is not None else None
        )
        self._depth_lock = threading.Lock()
        self._in_flight = 0
        self._peak_in_flight = 0
        self._admission_waits = 0

    # -- shard registry ------------------------------------------------
    def register(self, handle: EngineHandle) -> EngineHandle:
        """Make *handle*'s engine addressable by tasks naming its key."""
        existing = self._handles.get(handle.key)
        if existing is handle:
            return handle
        self._handles[handle.key] = handle
        self._kernel_contexts.pop(handle.key, None)
        self._on_register(handle)
        return handle

    def register_engine(self, engine: KOREngine, key: str | None = None) -> EngineHandle:
        """Convenience: wrap *engine* in a handle and register it."""
        return self.register(EngineHandle(engine, key=key))

    def unregister(self, key: str) -> None:
        """Forget the shard under *key* (a no-op for unknown keys).

        Callers that retire an engine (e.g. ``replace_engine``) must
        unregister its handle, or the backend keeps the graph, tables
        and index alive — and keeps shipping them to pool workers.
        Tasks already submitted for the shard run (or fail) with the
        outcome they would have had; only *new* submissions see the
        shrunk registry.
        """
        self._kernel_contexts.pop(key, None)
        if self._handles.pop(key, None) is not None:
            self._on_registry_change()

    def _on_register(self, handle: EngineHandle) -> None:
        """Hook for backends that must propagate registry additions."""
        self._on_registry_change()

    def _on_registry_change(self) -> None:
        """Hook for backends that must propagate any registry change."""

    def apply_patches(self, patches: Sequence[PartPatch]) -> None:
        """Propagate live updates for already-reset parent handles.

        The caller is expected to have folded the new state into the
        registered handles first (:meth:`EngineHandle.reset` or
        :meth:`PartPatch.apply_to`) — in-process backends read engines
        straight off those handles, so this method only drops the
        parent-side derived state (kernel contexts) and lets
        out-of-process backends forward the patches to their workers via
        :meth:`_on_patch`.  Unknown keys are ignored: patching a shard
        that was unregistered mid-flight must not fail the update.
        """
        live = tuple(patch for patch in patches if patch.key in self._handles)
        for patch in live:
            self._kernel_contexts.pop(patch.key, None)
        if live:
            self._on_patch(live)

    def _on_patch(self, patches: tuple[PartPatch, ...]) -> None:
        """Hook for backends that must forward patches to workers."""

    @property
    def shard_keys(self) -> tuple[str, ...]:
        """Keys of every registered shard, sorted."""
        return tuple(sorted(self._handles))

    def _handle_for(self, task: ShardTask) -> EngineHandle:
        handle = self._handles.get(task.shard)
        if handle is None:
            raise QueryError(
                f"shard {task.shard!r} is not registered with this "
                f"{type(self).__name__}; known shards: {sorted(self._handles)}"
            )
        return handle

    def _run_one(self, task: ShardTask) -> TaskOutcome:
        try:
            handle = self._handle_for(task)
        except QueryError as error:
            return TaskOutcome(error=error)
        return run_task_on_engine(handle.engine(), task)

    def _wave_context(self, handle: EngineHandle) -> KernelContext:
        """The shard's parent-side :class:`KernelContext` (built lazily)."""
        kctx = self._kernel_contexts.get(handle.key)
        if kctx is None or kctx.graph is not handle.engine().graph:
            kctx = KernelContext(handle.engine().graph, handle.engine().tables)
            self._kernel_contexts[handle.key] = kctx
        return kctx

    def _run_wave_one(self, task: WaveTask) -> list[TaskOutcome]:
        try:
            handle = self._handle_for(task)
        except QueryError as error:
            return [TaskOutcome(error=error) for _ in task.queries]
        return run_wave_on_engine(
            handle.engine(), task, kernel_context=self._wave_context(handle)
        )

    # -- admission -----------------------------------------------------
    @property
    def max_in_flight(self) -> int | None:
        """Admission bound (None = unbounded)."""
        return self._max_in_flight

    @property
    def in_flight(self) -> int:
        """Submissions admitted but not yet resolved."""
        with self._depth_lock:
            return self._in_flight

    @property
    def peak_in_flight(self) -> int:
        """Deepest concurrent submission queue observed so far."""
        with self._depth_lock:
            return self._peak_in_flight

    @property
    def admission_waits(self) -> int:
        """Times a submission had to block for an admission slot."""
        with self._depth_lock:
            return self._admission_waits

    def _release_slot(self, _future: Future | None = None) -> None:
        with self._depth_lock:
            self._in_flight -= 1
        if self._admission is not None:
            self._admission.release()

    def _admitted(self, submit: Callable[[], Future]) -> Future:
        """Run one submission through admission + depth accounting."""
        if self._admission is not None and not self._admission.acquire(blocking=False):
            with self._depth_lock:
                self._admission_waits += 1
            self._admission.acquire()
        with self._depth_lock:
            self._in_flight += 1
            if self._in_flight > self._peak_in_flight:
                self._peak_in_flight = self._in_flight
        try:
            future = submit()
        except BaseException:
            self._release_slot()
            raise
        future.add_done_callback(self._release_slot)
        return future

    # -- submission primitives -----------------------------------------
    @abstractmethod
    def _submit(self, task: ShardTask) -> Future:
        """Backend-specific task submission (no admission control)."""

    def submit_task(self, task: ShardTask) -> Future:
        """Submit one task, returning a ``Future[TaskOutcome]``.

        The future resolves to the task's :class:`TaskOutcome` — query
        failures are *inside* the outcome; the future itself only raises
        for submission-level faults (cancellation, a worker process that
        died beyond repair).  Blocks when ``max_in_flight`` is reached.
        """
        return self._admitted(lambda: self._submit(task))

    def _submit_wave(self, task: WaveTask) -> Future:
        """Backend-specific wave submission (no admission control).

        The in-process default executes :func:`run_wave_on_engine` on the
        backend's own closure machinery; :class:`ProcessBackend`
        overrides this to dispatch the picklable wave through its lanes.
        """
        return self._submit_call(self._run_wave_one, task)

    def submit_wave(self, task: WaveTask) -> Future:
        """Submit one wave, returning a ``Future[list[TaskOutcome]]``.

        One wave occupies one admission slot however many queries it
        carries — waves are the coarser scheduling unit by design.  The
        future resolves to one outcome per member in order; it only
        raises for submission-level faults (cancellation, a worker that
        died beyond retry), in which case the caller should fall back to
        per-query :meth:`submit_task` submissions.
        """
        return self._admitted(lambda: self._submit_wave(task))

    def _submit_call(self, fn: Callable, *args) -> Future:
        """Backend-specific closure submission (in-process backends)."""
        raise QueryError(
            f"{type(self).__name__} cannot execute in-process closures; "
            "submit ShardTask work via submit_task()/run_tasks() instead"
        )

    def submit_call(self, fn: Callable, *args) -> Future:
        """Submit an in-process closure, returning its ``Future``.

        Out-of-process backends raise :class:`QueryError` — closures
        cannot cross the process boundary; describe the work as
        :class:`ShardTask` objects instead.
        """
        if not self.in_process:
            raise QueryError(
                f"{type(self).__name__} cannot execute in-process closures; "
                "submit ShardTask work via submit_task()/run_tasks() instead"
            )
        return self._admitted(lambda: self._submit_call(fn, *args))

    # -- batch wrappers (shared across backends) -----------------------
    def _parallel_limit(self, workers: int | None) -> int | None:
        """Effective per-call submission window (None = unbounded)."""
        if workers is not None and workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        return workers

    def _submit_windowed(
        self, submit: Callable[[object], Future], items: Sequence, limit: int | None
    ) -> list[Future]:
        """Submit every item, at most *limit* unresolved at a time."""
        futures: list[Future | None] = [None] * len(items)
        if limit is None or limit >= len(items):
            for position, item in enumerate(items):
                futures[position] = submit(item)
            return futures
        pending: dict[Future, int] = {}
        position = 0
        while position < len(items) or pending:
            while position < len(items) and len(pending) < limit:
                future = submit(items[position])
                futures[position] = future
                pending[future] = position
                position += 1
            if pending:
                done, _not_done = wait(set(pending), return_when=FIRST_COMPLETED)
                for future in done:
                    pending.pop(future)
        return futures

    def run_tasks(
        self, tasks: Sequence[ShardTask], workers: int | None = None
    ) -> list[TaskOutcome]:
        """Execute *tasks*, returning outcomes in submission order."""
        if not tasks:
            return []
        futures = self._submit_windowed(
            self.submit_task, list(tasks), self._parallel_limit(workers)
        )
        return [_outcome_of(future) for future in futures]

    def map(
        self,
        fn: Callable[[object], object],
        items: Sequence[object],
        workers: int | None = None,
    ) -> list[object]:
        """Apply an in-process closure to every item (submission order).

        Out-of-process backends raise :class:`QueryError` — closures
        cannot cross the process boundary; describe the work as
        :class:`ShardTask` objects instead.
        """
        items = list(items)
        if not items:
            return []
        futures = self._submit_windowed(
            lambda item: self.submit_call(fn, item), items, self._parallel_limit(workers)
        )
        return [future.result() for future in futures]

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Release any pooled resources (idempotent).

        A closed backend may be submitted to again: pools are rebuilt
        lazily on the next submission.
        """

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(shards={list(self._handles)})"


class SerialBackend(ExecutionBackend):
    """Everything in the calling thread — the reference implementation.

    Useful as the determinism baseline and for debugging (tracebacks
    point straight at the failing query).  ``submit_task`` executes the
    task *during submission* and returns an already-resolved future.
    """

    name = "serial"
    in_process = True

    def _submit(self, task: ShardTask) -> Future:
        return _completed_future(self._run_one(task))

    def _submit_call(self, fn: Callable, *args) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as error:  # noqa: BLE001 - surfaces via future
            future.set_exception(error)
        return future


class ThreadBackend(ExecutionBackend):
    """``ThreadPoolExecutor`` fan-out — PR 1's concurrency, as a backend.

    Threads share the parent's engines directly (no pickling), which
    makes this the cheapest concurrent backend for I/O-ish or
    numpy-heavy work, but CPU-bound pure-python search loops still share
    the GIL; see :class:`ProcessBackend` for those.

    The pool is persistent (created lazily at first submission, sized
    ``workers``) so submitted futures survive between calls — the
    property the async front-end builds on.  A per-call ``workers``
    argument on :meth:`run_tasks`/:meth:`map` narrows the submission
    window below the pool width; it can no longer widen the pool.
    """

    name = "thread"
    in_process = True

    def __init__(self, workers: int = DEFAULT_WORKERS, max_in_flight: int | None = None) -> None:
        super().__init__(max_in_flight=max_in_flight)
        if workers < 1:
            raise QueryError(f"thread backend workers must be >= 1, got {workers}")
        self._workers = workers
        self._executor: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def _pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._workers,
                    thread_name_prefix="repro-backend",
                )
            return self._executor

    def _parallel_limit(self, workers: int | None) -> int | None:
        limit = super()._parallel_limit(workers)
        return limit if limit is not None else self._workers

    def _submit(self, task: ShardTask) -> Future:
        return self._pool().submit(self._run_one, task)

    def _submit_call(self, fn: Callable, *args) -> Future:
        return self._pool().submit(fn, *args)

    def close(self) -> None:
        with self._pool_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)


@dataclass
class _Lane:
    """One warm-pinnable slot of a :class:`ProcessBackend`.

    A lane owns (at most) one single-process executor; ``pending``
    counts tasks dispatched to it and not yet resolved — the signal the
    router uses for least-loaded assignment and saturation spill.
    ``generation`` increments every time the executor is retired, so
    completions of tasks dispatched to a *previous* executor neither
    decrement the rebuilt lane's count nor tear the rebuild down again
    (one dead worker = one fallback, however many tasks it sank).
    """

    index: int
    executor: ProcessPoolExecutor | None = None
    pending: int = 0
    generation: int = 0
    #: Shards this lane's current worker has been asked to serve (resets
    #: when the lane is rebuilt) — a parent-side proxy for which engines
    #: the worker has warm.
    seen: set = field(default_factory=set)
    #: Circuit-breaker state: consecutive dead-worker failures, the
    #: monotonic instant before which the breaker refuses traffic
    #: (0.0 = closed), and whether a half-open probe is in flight.
    failures: int = 0
    open_until: float = 0.0
    probing: bool = False


class ProcessBackend(ExecutionBackend):
    """Warm-pinned process fan-out over picklable shard handles.

    ``workers`` independent single-process **lanes** are created lazily;
    each lane's initializer installs every handle registered *so far*,
    so registering a new shard after a lane exists retires every lane
    (workers would not know the new key) and the next submission builds
    fresh ones.  Engines are materialised worker-side from pre-built
    parts — workers never repeat the tables/index pre-processing — and
    live in a per-worker LRU bounded by ``max_worker_engine_bytes``.

    **Warm-pinning**: the first task for a shard is assigned to the
    least-loaded lane and the shard is pinned there; later tasks for the
    same shard prefer the pinned lane, so only that worker pays the
    engine build.  When the pinned lane's queue runs ``spill_margin``
    deeper than the least-loaded lane, the task spills to the
    least-loaded lane instead (a pin *miss* — throughput beats
    affinity).  A lane whose worker process died is detected at
    submission or completion, torn down, rebuilt, and the task retried
    once (a ``dead_worker_fallbacks`` count); the retry prefers the
    rebuilt pin, whose fresh worker rebuilds the engine on demand.

    ``workers=None`` sizes the lane count to the machine.  The per-call
    ``workers`` argument of :meth:`run_tasks` is ignored (lane count is
    fixed at construction).
    """

    name = "process"
    in_process = False

    def __init__(
        self,
        workers: int | None = None,
        start_method: str | None = None,
        max_in_flight: int | None = None,
        max_worker_engine_bytes: int | None = None,
        spill_margin: int = DEFAULT_SPILL_MARGIN,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_backoff_seconds: float = DEFAULT_BREAKER_BACKOFF_SECONDS,
    ) -> None:
        super().__init__(max_in_flight=max_in_flight)
        if workers is not None and workers < 1:
            raise QueryError(f"process backend workers must be >= 1, got {workers}")
        if max_worker_engine_bytes is not None and max_worker_engine_bytes < 0:
            raise QueryError(
                f"max_worker_engine_bytes must be >= 0 or None, got {max_worker_engine_bytes}"
            )
        if spill_margin < 0:
            raise QueryError(f"spill_margin must be >= 0, got {spill_margin}")
        if breaker_threshold < 1:
            raise QueryError(f"breaker_threshold must be >= 1, got {breaker_threshold}")
        if breaker_backoff_seconds <= 0:
            raise QueryError(
                f"breaker_backoff_seconds must be > 0, got {breaker_backoff_seconds}"
            )
        if workers is None:
            try:
                workers = len(os.sched_getaffinity(0))
            except AttributeError:  # non-Linux
                workers = os.cpu_count() or 1
        self._workers = workers
        self._start_method = start_method
        self._max_worker_engine_bytes = max_worker_engine_bytes
        self._spill_margin = spill_margin
        self._breaker_threshold = breaker_threshold
        self._breaker_backoff_seconds = breaker_backoff_seconds
        self._route_lock = threading.Lock()
        self._lanes = [_Lane(index=i) for i in range(workers)]
        self._pins: dict[str, int] = {}
        self._pin_counters = {
            "assignments": 0,
            "hits": 0,
            "misses": 0,
            "dead_worker_fallbacks": 0,
        }
        self._breaker_counters = {
            "opened": 0,
            "closed": 0,
            "half_open_probes": 0,
            "short_circuits": 0,
        }

    # -- lane plumbing -------------------------------------------------
    def _mp_context(self):
        if self._start_method is None:
            return None
        import multiprocessing

        return multiprocessing.get_context(self._start_method)

    def _lane_executor_locked(self, lane: _Lane) -> ProcessPoolExecutor:
        if lane.executor is None:
            lane.executor = ProcessPoolExecutor(
                max_workers=1,
                mp_context=self._mp_context(),
                initializer=_process_worker_init,
                initargs=(
                    tuple(self._handles.values()),
                    self._max_worker_engine_bytes,
                    faults.worker_rules(),
                ),
            )
            lane.seen = set()
        return lane.executor

    def _retire_lane(
        self, lane: _Lane, generation: int | None = None, dead_worker: bool = False
    ) -> None:
        """Tear down a lane's executor (rebuilt lazily on next use).

        ``generation``, when given, makes the retire conditional: if the
        lane has already moved past that generation (another failure of
        the same dead worker got here first), this is a no-op — the
        fresh executor must not be torn down for its predecessor's
        sins, and one death counts one fallback.
        """
        with self._route_lock:
            if generation is not None and lane.generation != generation:
                return
            executor, lane.executor = lane.executor, None
            lane.pending = 0
            lane.seen = set()
            lane.generation += 1
            if dead_worker:
                self._pin_counters["dead_worker_fallbacks"] += 1
                lane.failures += 1
                lane.probing = False
                if lane.failures >= self._breaker_threshold:
                    if lane.open_until == 0.0:
                        self._breaker_counters["opened"] += 1
                    lane.open_until = time.monotonic() + self._breaker_backoff_seconds
            else:
                # Deliberate retire (registry change, close): breaker
                # state describes a worker that no longer exists.
                lane.failures = 0
                lane.open_until = 0.0
                lane.probing = False
        if executor is not None:
            # wait=False: a broken pool has nothing orderly left to wait
            # for, and a healthy one (registry change) drains on its own.
            executor.shutdown(wait=False)

    def _admitting_lanes_locked(self) -> list[_Lane]:
        """Lanes whose breaker admits traffic right now.

        Closed lanes always admit; an open lane past its backoff admits
        one half-open probe at a time (``probing`` gates the stampede).
        When *every* lane is open, the earliest-open lane is force-probed
        — routing must never deadlock on an all-open backend.
        """
        now = time.monotonic()
        admitted = [
            lane
            for lane in self._lanes
            if lane.open_until == 0.0
            or (now >= lane.open_until and not lane.probing)
        ]
        if not admitted:
            admitted = [min(self._lanes, key=lambda lane: (lane.open_until, lane.index))]
        return admitted

    def _route_locked(self, shard: str) -> _Lane:
        """Pick the lane for one task (caller holds the route lock)."""
        lanes = self._admitting_lanes_locked()
        admitted = {lane.index for lane in lanes}
        least = min(lanes, key=lambda lane: (lane.pending, lane.index))
        chosen: _Lane
        pinned_index = self._pins.get(shard)
        if pinned_index is None:
            self._pins[shard] = least.index
            self._pin_counters["assignments"] += 1
            chosen = least
        elif pinned_index not in admitted:
            # The pin's breaker is open: spill to a healthy lane without
            # re-pinning — the pin re-admits when the breaker closes.
            self._breaker_counters["short_circuits"] += 1
            self._pin_counters["misses"] += 1
            chosen = least
        else:
            pinned = self._lanes[pinned_index]
            if pinned.pending - least.pending > self._spill_margin:
                # Saturated pin: prefer a lane that has already seen this
                # shard (its worker likely holds the engine warm) before
                # paying a cold build on the least-loaded lane.
                warm = [
                    lane
                    for lane in lanes
                    if shard in lane.seen
                    and pinned.pending - lane.pending > self._spill_margin
                ]
                self._pin_counters["misses"] += 1
                chosen = (
                    min(warm, key=lambda lane: (lane.pending, lane.index))
                    if warm
                    else least
                )
            else:
                self._pin_counters["hits"] += 1
                chosen = pinned
        if chosen.open_until > 0.0 and not chosen.probing:
            chosen.probing = True
            self._breaker_counters["half_open_probes"] += 1
        return chosen

    # -- registry / lifecycle ------------------------------------------
    def _on_registry_change(self) -> None:
        # Workers of existing lanes were initialised with a different
        # handle set; retire them so the next submission ships the
        # current one.
        for lane in self._lanes:
            self._retire_lane(lane)

    def _on_patch(self, patches: tuple[PartPatch, ...]) -> None:
        """Broadcast a live update to every started lane, in-band.

        Unlike a registry change this does *not* retire lanes: the patch
        travels the same single-worker FIFO queue as ordinary tasks, so
        each worker applies it after everything submitted before the
        update and before everything submitted after — a per-lane epoch
        fence that keeps warm engines warm for every unpatched shard.
        Lanes not yet started need nothing: their initializer will ship
        the already-patched parent handles.  A lane whose broadcast
        fails is retired (its next submission rebuilds it with current
        state), so a crashed worker cannot keep serving pre-update data.
        """
        with self._route_lock:
            live = [
                (lane, lane.executor, lane.generation)
                for lane in self._lanes
                if lane.executor is not None
            ]
        pending = []
        for lane, executor, generation in live:
            try:
                pending.append((lane, generation, executor.submit(_process_apply_patches, patches)))
            except (BrokenProcessPool, RuntimeError):
                self._retire_lane(lane, generation=generation, dead_worker=True)
        for lane, generation, future in pending:
            try:
                future.result()
            except (BrokenProcessPool, CancelledError, RuntimeError):
                self._retire_lane(lane, generation=generation, dead_worker=True)

    def close(self) -> None:
        for lane in self._lanes:
            with self._route_lock:
                executor, lane.executor = lane.executor, None
                lane.pending = 0
                lane.seen = set()
                lane.generation += 1
                lane.failures = 0
                lane.open_until = 0.0
                lane.probing = False
            if executor is not None:
                executor.shutdown(wait=True)

    # -- submission ----------------------------------------------------
    def _submit(self, task: ShardTask) -> Future:
        if task.shard not in self._handles:
            # Fail fast in the parent: the workers would only echo this.
            return _completed_future(
                TaskOutcome(
                    error=QueryError(
                        f"shard {task.shard!r} is not registered with this "
                        f"ProcessBackend; known shards: {sorted(self._handles)}"
                    )
                )
            )
        outer: Future = Future()
        self._dispatch(task, outer, retried=False)
        return outer

    def _submit_wave(self, task: WaveTask) -> Future:
        if task.shard not in self._handles:
            error = QueryError(
                f"shard {task.shard!r} is not registered with this "
                f"ProcessBackend; known shards: {sorted(self._handles)}"
            )
            future: Future = Future()
            future.set_result([TaskOutcome(error=error) for _ in task.queries])
            return future
        outer: Future = Future()
        self._dispatch(task, outer, retried=False, entry=_process_run_wave)
        return outer

    def _dispatch(
        self,
        task: ShardTask | WaveTask,
        outer: Future,
        retried: bool,
        entry: Callable = _process_run_task,
    ) -> None:
        with self._route_lock:
            lane = self._route_locked(task.shard)
            executor = self._lane_executor_locked(lane)
            generation = lane.generation
            lane.pending += 1
            lane.seen.add(task.shard)
        plan = faults._ACTIVE
        if plan is not None:
            # Parent-side kill faults fire here, where the routed lane's
            # worker pid is known — the submit below then trips the
            # dead-worker retry (and, repeated, the breaker).
            plan.on_dispatch(lane.index, executor, task)
        try:
            inner = executor.submit(entry, task)
        except (BrokenProcessPool, RuntimeError) as error:
            with self._route_lock:
                if lane.generation == generation:
                    lane.pending -= 1
            if not retried:
                self._retire_lane(lane, generation=generation, dead_worker=True)
                self._dispatch(task, outer, retried=True, entry=entry)
                return
            _try_resolve(outer, None, error)
            return
        inner.add_done_callback(
            lambda f, task=task, lane=lane, generation=generation: self._finish(
                task, outer, lane, generation, f, retried, entry
            )
        )

    @staticmethod
    def _cancelled_outcome(task: ShardTask | WaveTask):
        error = QueryError("task was cancelled in the worker pool")
        if isinstance(task, WaveTask):
            return [TaskOutcome(error=error) for _ in task.queries]
        return TaskOutcome(error=error)

    def _finish(
        self,
        task: ShardTask | WaveTask,
        outer: Future,
        lane: _Lane,
        generation: int,
        inner: Future,
        retried: bool,
        entry: Callable = _process_run_task,
    ) -> None:
        worked = not inner.cancelled() and inner.exception() is None
        with self._route_lock:
            if lane.generation == generation:
                lane.pending -= 1
                if worked and (lane.failures or lane.open_until or lane.probing):
                    # A completed task on this executor generation proves
                    # the worker is healthy: close the breaker.
                    if lane.open_until > 0.0 or lane.probing:
                        self._breaker_counters["closed"] += 1
                    lane.failures = 0
                    lane.open_until = 0.0
                    lane.probing = False
        if inner.cancelled():
            if not outer.cancel():
                _try_resolve(outer, self._cancelled_outcome(task), None)
            return
        error = inner.exception()
        if isinstance(error, BrokenProcessPool) and not retried:
            # The lane's worker died under this task: rebuild the lane
            # (once — sibling victims of the same death find the
            # generation already moved on) and retry transparently.
            self._retire_lane(lane, generation=generation, dead_worker=True)
            self._dispatch(task, outer, retried=True, entry=entry)
            return
        if error is not None:
            _try_resolve(outer, None, error)
        else:
            _try_resolve(outer, inner.result(), None)

    def _parallel_limit(self, workers: int | None) -> int | None:
        # Lane count is fixed at construction; the per-call argument is
        # accepted for interface compatibility and ignored.
        return None

    # -- introspection -------------------------------------------------
    def pin_stats(self) -> dict[str, int]:
        """Parent-side warm-pinning counters (see class docstring)."""
        with self._route_lock:
            return dict(self._pin_counters)

    def breaker_stats(self) -> dict:
        """Circuit-breaker transition counters plus per-lane state."""
        now = time.monotonic()
        with self._route_lock:
            lanes = [
                {
                    "lane": lane.index,
                    "state": (
                        "closed"
                        if lane.open_until == 0.0
                        else ("half_open" if now >= lane.open_until else "open")
                    ),
                    "failures": lane.failures,
                    "probing": lane.probing,
                }
                for lane in self._lanes
            ]
            return {**self._breaker_counters, "lanes": lanes}

    def worker_stats(self, timeout: float = 60.0) -> dict[int, dict]:
        """Per-lane worker counters (pid, builds, resident engines,
        evictions) for every lane whose pool has been started.

        This round-trips a control task through each live lane — cheap,
        but not free; meant for tests, demos and debugging endpoints.
        """
        with self._route_lock:
            live = [
                (lane.index, lane.executor)
                for lane in self._lanes
                if lane.executor is not None
            ]
        stats: dict[int, dict] = {}
        for index, executor in live:
            try:
                stats[index] = executor.submit(_worker_introspect).result(timeout=timeout)
            except Exception as error:  # noqa: BLE001 - introspection only
                stats[index] = {"error": f"{type(error).__name__}: {error}"}
        return stats

    def warm_up(self) -> None:
        """Start every lane and spawn its worker process.

        Pinging each lane makes it spawn its worker up front, so a later
        timed run does not pay process start-up.  Per-shard engine
        assembly inside each worker is still lazy — warm real engines by
        running one un-timed batch.
        """
        pings = []
        for lane in self._lanes:
            with self._route_lock:
                executor = self._lane_executor_locked(lane)
            pings.append(executor.submit(_worker_ping, lane.index))
        for ping in pings:
            ping.result()


def backend_from_name(
    name: str, workers: int | None = None, **kwargs
) -> ExecutionBackend:
    """Build a backend from its :attr:`~ExecutionBackend.name`.

    Recognised names: ``serial``, ``thread``, ``process``.  This is what
    the test suite and CI matrix use to honour the ``REPRO_BACKEND``
    environment variable.
    """
    normalized = name.strip().lower()
    if normalized == "serial":
        return SerialBackend(**kwargs)
    if normalized == "thread":
        return ThreadBackend(
            workers=workers if workers is not None else DEFAULT_WORKERS, **kwargs
        )
    if normalized == "process":
        return ProcessBackend(workers=workers, **kwargs)
    raise QueryError(
        f"unknown execution backend {name!r}; expected serial, thread or process"
    )
