"""Pluggable execution backends for the serving layer.

The serving layer describes compute work in one of two currencies:

* **in-process closures** — the batch executor's per-unit ``compute``
  functions, which capture live engine objects and a shared candidate
  map (cheap, but GIL-bound);
* **shard tasks** — :class:`ShardTask`, a picklable description of "run
  this query, with this algorithm and these parameters, against the
  engine registered under this shard key".

:class:`SerialBackend` and :class:`ThreadBackend` execute both kinds in
the calling process.  :class:`ProcessBackend` executes shard tasks in a
``concurrent.futures.ProcessPoolExecutor``: every registered engine is
wrapped in a picklable :class:`EngineHandle` (graph + pre-built cost
tables + inverted index — no locks, no open files), shipped to each
worker exactly once through the pool initializer, and materialised into
a worker-local :class:`repro.core.engine.KOREngine` on first use.  That
is what finally lets CPU-bound batch fan-out scale past the GIL.

All three backends return outcomes **in task submission order**, so
callers get deterministic slot assignment no matter how many workers
raced, and a task that raises is reported through its own
:class:`TaskOutcome` without disturbing its neighbours.
"""

from __future__ import annotations

import itertools
import pickle
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.engine import KOREngine
from repro.core.query import KORQuery
from repro.core.results import KORResult
from repro.exceptions import QueryError

__all__ = [
    "DEFAULT_WORKERS",
    "EngineHandle",
    "ExecutionBackend",
    "ProcessBackend",
    "RemoteTaskError",
    "SerialBackend",
    "ShardTask",
    "TaskOutcome",
    "ThreadBackend",
    "backend_from_name",
]

#: Fan-out width when the caller does not pick one.
DEFAULT_WORKERS = 4

_HANDLE_COUNTER = itertools.count()


class EngineHandle:
    """A picklable handle to one engine (one shard's worth of state).

    In the owning process the handle wraps a live engine.  Pickling ships
    the graph plus the *pre-built* cost tables and inverted index (plain
    dataclasses over numpy arrays), so a receiving worker process pays
    zero pre-processing: :meth:`engine` reassembles the engine from the
    parts on first use and caches it for the life of the worker.  The
    engine's *class* travels with the state, so a
    :class:`~repro.service.crosscell.BorderEngine` handle re-materialises
    as a ``BorderEngine`` (partitioned border tables and all), not as a
    flat :class:`~repro.core.engine.KOREngine`.

    ``key`` identifies the handle across process boundaries; two handles
    never share a key unless one was pickled from the other.
    """

    __slots__ = ("key", "_graph", "_tables", "_index", "_engine", "_engine_cls")

    def __init__(self, engine: KOREngine, key: str | None = None) -> None:
        self.key = key if key is not None else f"engine-{next(_HANDLE_COUNTER)}"
        self._engine: KOREngine | None = engine
        self._engine_cls = type(engine)
        self._graph = engine.graph
        self._tables = engine.tables
        self._index = engine.index

    def engine(self) -> KOREngine:
        """The live engine (materialised from parts after unpickling)."""
        if self._engine is None:
            self._engine = self._engine_cls(
                self._graph, tables=self._tables, index=self._index
            )
        return self._engine

    def __getstate__(self) -> dict:
        return {
            "key": self.key,
            "graph": self._graph,
            "tables": self._tables,
            "index": self._index,
            "engine_cls": self._engine_cls,
        }

    def __setstate__(self, state: dict) -> None:
        self.key = state["key"]
        self._graph = state["graph"]
        self._tables = state["tables"]
        self._index = state["index"]
        self._engine_cls = state.get("engine_cls", KOREngine)
        self._engine = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EngineHandle({self.key!r}, {self._graph.num_nodes} nodes)"


@dataclass(frozen=True)
class ShardTask:
    """One picklable unit of work: a query against one registered shard.

    ``params`` is a sorted tuple of ``(name, value)`` pairs rather than a
    dict so tasks are hashable and their pickled form is deterministic.
    """

    shard: str
    query: KORQuery
    algorithm: str
    params: tuple[tuple[str, object], ...] = ()

    @classmethod
    def build(
        cls,
        shard: str,
        query: KORQuery,
        algorithm: str,
        params: Mapping[str, object] | None = None,
    ) -> "ShardTask":
        """Normalise a params mapping into task form."""
        items = tuple(sorted(params.items())) if params else ()
        return cls(shard=shard, query=query, algorithm=algorithm, params=items)


@dataclass
class TaskOutcome:
    """What one :class:`ShardTask` produced (result or error, never both)."""

    result: KORResult | None = None
    error: Exception | None = None
    latency_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the task produced a result."""
        return self.error is None and self.result is not None


class RemoteTaskError(QueryError):
    """A worker-process failure whose original exception could not cross
    the process boundary; carries the original type name and message."""


def run_task_on_engine(engine: KOREngine, task: ShardTask) -> TaskOutcome:
    """Execute *task* against a live *engine*, capturing error and timing."""
    begin = time.perf_counter()
    try:
        result = engine.run(task.query, algorithm=task.algorithm, **dict(task.params))
        return TaskOutcome(result=result, latency_seconds=time.perf_counter() - begin)
    except Exception as error:  # noqa: BLE001 - reported per task
        return TaskOutcome(error=error, latency_seconds=time.perf_counter() - begin)


# ----------------------------------------------------------------------
# process-worker plumbing (module level so it pickles by reference)
# ----------------------------------------------------------------------

_WORKER_HANDLES: dict[str, EngineHandle] = {}


def _process_worker_init(handles: tuple[EngineHandle, ...]) -> None:
    """Pool initializer: install this pool generation's shard handles."""
    _WORKER_HANDLES.clear()
    _WORKER_HANDLES.update({handle.key: handle for handle in handles})


def _portable_error(error: Exception) -> Exception:
    """An exception guaranteed to survive pickling back to the parent."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:  # noqa: BLE001 - any pickling failure downgrades
        return RemoteTaskError(f"{type(error).__name__}: {error}")


def _process_run_task(task: ShardTask) -> TaskOutcome:
    """Worker-side task entry point (looks the engine up by shard key)."""
    handle = _WORKER_HANDLES.get(task.shard)
    if handle is None:
        return TaskOutcome(
            error=RemoteTaskError(
                f"shard {task.shard!r} is not registered in this worker; "
                f"known shards: {sorted(_WORKER_HANDLES)}"
            )
        )
    outcome = run_task_on_engine(handle.engine(), task)
    if outcome.error is not None:
        outcome.error = _portable_error(outcome.error)
    return outcome


def _worker_ping(_: int) -> bool:
    """No-op used by :meth:`ProcessBackend.warm_up`."""
    return True


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------


class ExecutionBackend(ABC):
    """Strategy for executing serving-layer work.

    ``in_process`` backends additionally support :meth:`map` over
    arbitrary closures (the batch executor's shared-candidate fast path);
    out-of-process backends only accept :class:`ShardTask` work, whose
    engines must first be made known via :meth:`register`.
    """

    #: Stable name used by benchmarks, stats and ``backend_from_name``.
    name: str = "?"
    #: Whether closures sharing parent memory can run on this backend.
    in_process: bool = True

    def __init__(self) -> None:
        self._handles: dict[str, EngineHandle] = {}

    # -- shard registry ------------------------------------------------
    def register(self, handle: EngineHandle) -> EngineHandle:
        """Make *handle*'s engine addressable by tasks naming its key."""
        existing = self._handles.get(handle.key)
        if existing is handle:
            return handle
        self._handles[handle.key] = handle
        self._on_register(handle)
        return handle

    def register_engine(self, engine: KOREngine, key: str | None = None) -> EngineHandle:
        """Convenience: wrap *engine* in a handle and register it."""
        return self.register(EngineHandle(engine, key=key))

    def unregister(self, key: str) -> None:
        """Forget the shard under *key* (a no-op for unknown keys).

        Callers that retire an engine (e.g. ``replace_engine``) must
        unregister its handle, or the backend keeps the graph, tables
        and index alive — and keeps shipping them to pool workers.
        """
        if self._handles.pop(key, None) is not None:
            self._on_registry_change()

    def _on_register(self, handle: EngineHandle) -> None:
        """Hook for backends that must propagate registry additions."""
        self._on_registry_change()

    def _on_registry_change(self) -> None:
        """Hook for backends that must propagate any registry change."""

    @property
    def shard_keys(self) -> tuple[str, ...]:
        """Keys of every registered shard, sorted."""
        return tuple(sorted(self._handles))

    def _handle_for(self, task: ShardTask) -> EngineHandle:
        handle = self._handles.get(task.shard)
        if handle is None:
            raise QueryError(
                f"shard {task.shard!r} is not registered with this "
                f"{type(self).__name__}; known shards: {sorted(self._handles)}"
            )
        return handle

    def _run_one(self, task: ShardTask) -> TaskOutcome:
        try:
            handle = self._handle_for(task)
        except QueryError as error:
            return TaskOutcome(error=error)
        return run_task_on_engine(handle.engine(), task)

    # -- execution -----------------------------------------------------
    @abstractmethod
    def run_tasks(
        self, tasks: Sequence[ShardTask], workers: int | None = None
    ) -> list[TaskOutcome]:
        """Execute *tasks*, returning outcomes in submission order."""

    def map(
        self,
        fn: Callable[[object], object],
        items: Sequence[object],
        workers: int | None = None,
    ) -> list[object]:
        """Apply an in-process closure to every item (submission order).

        Out-of-process backends raise :class:`QueryError` — closures
        cannot cross the process boundary; describe the work as
        :class:`ShardTask` objects instead.
        """
        raise QueryError(
            f"{type(self).__name__} cannot execute in-process closures; "
            "submit ShardTask work via run_tasks() instead"
        )

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Release any pooled resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(shards={list(self._handles)})"


class SerialBackend(ExecutionBackend):
    """Everything in the calling thread — the reference implementation.

    Useful as the determinism baseline and for debugging (tracebacks
    point straight at the failing query).
    """

    name = "serial"
    in_process = True

    def run_tasks(
        self, tasks: Sequence[ShardTask], workers: int | None = None
    ) -> list[TaskOutcome]:
        return [self._run_one(task) for task in tasks]

    def map(
        self,
        fn: Callable[[object], object],
        items: Sequence[object],
        workers: int | None = None,
    ) -> list[object]:
        return [fn(item) for item in items]


class ThreadBackend(ExecutionBackend):
    """``ThreadPoolExecutor`` fan-out — PR 1's concurrency, as a backend.

    Threads share the parent's engines directly (no pickling), which
    makes this the cheapest concurrent backend for I/O-ish or
    numpy-heavy work, but CPU-bound pure-python search loops still share
    the GIL; see :class:`ProcessBackend` for those.

    Pools are transient per call, sized ``workers`` (argument) falling
    back to the construction-time default — identical lifecycle to the
    executor the batch module used to own.
    """

    name = "thread"
    in_process = True

    def __init__(self, workers: int = DEFAULT_WORKERS) -> None:
        super().__init__()
        if workers < 1:
            raise QueryError(f"thread backend workers must be >= 1, got {workers}")
        self._workers = workers

    def _effective_workers(self, workers: int | None) -> int:
        if workers is None:
            return self._workers
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        return workers

    def map(
        self,
        fn: Callable[[object], object],
        items: Sequence[object],
        workers: int | None = None,
    ) -> list[object]:
        effective = self._effective_workers(workers)
        if effective <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=effective) as pool:
            return list(pool.map(fn, items))

    def run_tasks(
        self, tasks: Sequence[ShardTask], workers: int | None = None
    ) -> list[TaskOutcome]:
        return self.map(self._run_one, tasks, workers=workers)


class ProcessBackend(ExecutionBackend):
    """``ProcessPoolExecutor`` fan-out over picklable shard handles.

    The pool is created lazily; its initializer installs every handle
    registered *so far* into each worker, so registering a new shard
    after the pool exists retires the old pool (workers would not know
    the new key) and the next :meth:`run_tasks` builds a fresh one.
    Engines are materialised worker-side from pre-built parts — workers
    never repeat the tables/index pre-processing.

    ``workers=None`` lets ``concurrent.futures`` size the pool to the
    machine.  The per-call ``workers`` argument is ignored (a process
    pool's width is fixed at creation); pass it at construction instead.
    """

    name = "process"
    in_process = False

    def __init__(self, workers: int | None = None, start_method: str | None = None) -> None:
        super().__init__()
        if workers is not None and workers < 1:
            raise QueryError(f"process backend workers must be >= 1, got {workers}")
        self._workers = workers
        self._start_method = start_method
        self._executor: ProcessPoolExecutor | None = None

    def _on_registry_change(self) -> None:
        # Workers of an existing pool were initialised with a different
        # handle set; retire the pool so the next run ships the current one.
        self.close()

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            import multiprocessing

            context = (
                multiprocessing.get_context(self._start_method)
                if self._start_method is not None
                else None
            )
            self._executor = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=context,
                initializer=_process_worker_init,
                initargs=(tuple(self._handles.values()),),
            )
        return self._executor

    def warm_up(self) -> None:
        """Start the pool and spawn its worker processes.

        Submitting a full round of no-ops makes the executor spawn every
        worker process up front, so a later timed run does not pay
        process start-up.  Per-shard engine assembly inside each worker
        is still lazy — warm real engines by running one un-timed batch.
        """
        pool = self._pool()
        width = pool._max_workers  # noqa: SLF001 - executor exposes no getter
        list(pool.map(_worker_ping, range(width)))

    def run_tasks(
        self, tasks: Sequence[ShardTask], workers: int | None = None
    ) -> list[TaskOutcome]:
        if not tasks:
            return []
        known = set(self._handles)
        outcomes: list[TaskOutcome | None] = [None] * len(tasks)
        dispatch: list[tuple[int, ShardTask]] = []
        for position, task in enumerate(tasks):
            if task.shard in known:
                dispatch.append((position, task))
            else:
                # Fail fast in the parent: the workers would only echo this.
                outcomes[position] = self._run_one(task)
        if dispatch:
            pool = self._pool()
            # Chunk to amortise IPC per task while keeping enough chunks
            # for the pool to balance uneven query costs.
            chunksize = max(1, len(dispatch) // (pool._max_workers * 4))  # noqa: SLF001
            remote = pool.map(
                _process_run_task,
                [task for _, task in dispatch],
                chunksize=chunksize,
            )
            for (position, _task), outcome in zip(dispatch, remote):
                outcomes[position] = outcome
        return outcomes

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


def backend_from_name(
    name: str, workers: int | None = None, **kwargs
) -> ExecutionBackend:
    """Build a backend from its :attr:`~ExecutionBackend.name`.

    Recognised names: ``serial``, ``thread``, ``process``.  This is what
    the test suite and CI matrix use to honour the ``REPRO_BACKEND``
    environment variable.
    """
    normalized = name.strip().lower()
    if normalized == "serial":
        return SerialBackend()
    if normalized == "thread":
        return ThreadBackend(workers=workers if workers is not None else DEFAULT_WORKERS)
    if normalized == "process":
        return ProcessBackend(workers=workers, **kwargs)
    raise QueryError(
        f"unknown execution backend {name!r}; expected serial, thread or process"
    )
