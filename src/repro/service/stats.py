"""Serving-mode metrics: latency percentiles, hit rate, throughput.

One :class:`ServiceStats` instance lives inside each ``QueryService``;
every answered query records a latency sample (cache hits included —
their near-zero latencies are what a cache is *for*) plus whether it hit.
``snapshot()`` freezes the aggregates the benchmark harness reports.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["ServiceStats", "StatsSnapshot", "percentile"]


def percentile(samples: list[float], q: float) -> float:
    """The *q*-th percentile (0..100) by linear interpolation, 0.0 if empty.

    Matches ``numpy.percentile``'s default method but avoids forcing the
    hot recording path through array conversions.
    """
    if not samples:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be within [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


@dataclass(frozen=True)
class StatsSnapshot:
    """Immutable aggregate view of one :class:`ServiceStats`."""

    queries: int
    errors: int
    cache_hits: int
    cache_misses: int
    p50_latency_seconds: float
    p95_latency_seconds: float
    mean_latency_seconds: float
    busy_seconds: float
    #: Tail latency over the same window as p50/p95 (the serving tier's
    #: SLO currency: the network front door gates on it).
    p99_latency_seconds: float = 0.0
    #: The latency SLO the recording service was configured with (None =
    #: no SLO accounting).
    slo_seconds: float | None = None
    #: Queries answered slower than ``slo_seconds`` (0 without an SLO).
    slo_violations: int = 0
    #: HTTP endpoint -> ``{"requests": n, "errors": n}`` (empty off the
    #: network path; filled by the server tier).
    endpoints: dict = field(default_factory=dict)
    #: Shard key -> tasks executed there (empty for unsharded services).
    shard_tasks: dict = field(default_factory=dict)
    #: Shard key -> tasks that raised there.
    shard_errors: dict = field(default_factory=dict)
    #: Scatter-merge outcomes of a sharded service: how many computed
    #: queries were won by the cell attempt (``cell``), by the
    #: cross-cell assembly (``crosscell``), proven infeasible
    #: (``infeasible``) or failed outright (``error``).
    merge_wins: dict = field(default_factory=dict)
    #: Requests served by coalescing onto another caller's in-flight
    #: computation (single-flight) instead of computing themselves.
    coalesced: int = 0
    #: Requests that gave up waiting (async per-request timeouts).
    timeouts: int = 0
    #: Requests refused at the front door by admission control (the
    #: HTTP tier's 503 + Retry-After path); they never reach the engine.
    shed: int = 0
    #: Deepest submission queue observed (in-flight backend tasks or
    #: pending async requests, whichever the recorder measures).
    queue_depth_peak: int = 0
    #: Warm-pinning counters of a pinned process backend (``hits`` /
    #: ``misses`` / ``assignments`` / ``dead_worker_fallbacks``); empty
    #: for in-process backends, which have nothing to pin.
    pinning: dict = field(default_factory=dict)
    #: Wave-dispatch counters (``formed`` / ``members`` / ``capacity`` /
    #: ``solo_fallbacks`` plus the derived ``mean_members`` and
    #: ``fill_rate``); empty for services that never formed a wave.
    #: Additive optional field of ``kor.service_stats.v1``.
    waves: dict = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Cache hits per answered query (0.0 when idle)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def slo_violation_rate(self) -> float:
        """SLO violations per answered query (0.0 when idle or no SLO)."""
        return self.slo_violations / self.queries if self.queries else 0.0

    def slo_budget_used(self, budget_fraction: float = 0.01) -> float:
        """Fraction of the SLO error budget consumed.

        An error budget of ``budget_fraction`` (default 1%) allows that
        share of queries to miss the SLO; 1.0 means the budget is spent,
        values above 1.0 mean the service is in violation.
        """
        if budget_fraction <= 0.0:
            raise ValueError(f"budget_fraction must be > 0, got {budget_fraction}")
        return self.slo_violation_rate / budget_fraction

    @property
    def throughput_qps(self) -> float:
        """Queries per second of busy time (inf for all-hit workloads
        measured below clock resolution, 0.0 when idle)."""
        if not self.queries:
            return 0.0
        if self.busy_seconds <= 0.0:
            return float("inf")
        return self.queries / self.busy_seconds

    def describe(self) -> str:
        """One-line human-readable summary."""
        line = (
            f"{self.queries} queries ({self.errors} errors), "
            f"hit rate {100.0 * self.hit_rate:.1f}%, "
            f"p50 {1000.0 * self.p50_latency_seconds:.3f} ms, "
            f"p95 {1000.0 * self.p95_latency_seconds:.3f} ms, "
            f"p99 {1000.0 * self.p99_latency_seconds:.3f} ms, "
            f"{self.throughput_qps:.0f} qps"
        )
        if self.slo_seconds is not None:
            line += (
                f"; SLO {1000.0 * self.slo_seconds:.0f} ms: "
                f"{self.slo_violations} violations "
                f"({100.0 * self.slo_violation_rate:.2f}%)"
            )
        if self.shard_tasks:
            shards = ", ".join(
                f"{shard}={count}" for shard, count in sorted(self.shard_tasks.items())
            )
            line += f"; shard tasks: {shards}"
        if self.merge_wins:
            wins = ", ".join(
                f"{winner}={count}" for winner, count in sorted(self.merge_wins.items())
            )
            line += f"; merge wins: {wins}"
        if self.coalesced or self.timeouts or self.shed:
            line += (
                f"; coalesced {self.coalesced}, timeouts {self.timeouts}, "
                f"shed {self.shed}"
            )
        if self.queue_depth_peak:
            line += f"; peak queue depth {self.queue_depth_peak}"
        if self.pinning:
            pins = ", ".join(
                f"{name}={count}" for name, count in sorted(self.pinning.items())
            )
            line += f"; pinning: {pins}"
        if self.waves:
            line += (
                f"; waves: {self.waves.get('formed', 0)} formed, "
                f"mean {self.waves.get('mean_members', 0.0):.1f} members, "
                f"fill {100.0 * self.waves.get('fill_rate', 0.0):.0f}%, "
                f"{self.waves.get('solo_fallbacks', 0)} solo"
            )
        return line


class ServiceStats:
    """Thread-safe accumulator behind :meth:`snapshot`.

    ``busy_seconds`` sums *wall* time of the service's serve calls (a
    batch counts once, however many workers it fanned out over), so the
    throughput it yields is what a caller actually observed.

    Latency samples live in a bounded sliding window (``window`` most
    recent queries) so a long-lived service does not grow without bound;
    the percentiles are therefore *recent* percentiles, while the
    query/hit/error counters cover the whole lifetime.
    """

    def __init__(self, window: int = 8192, slo_seconds: float | None = None) -> None:
        if window < 1:
            raise ValueError(f"latency window must be >= 1, got {window}")
        if slo_seconds is not None and slo_seconds <= 0.0:
            raise ValueError(f"slo_seconds must be > 0 or None, got {slo_seconds}")
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=window)
        self._queries = 0
        self._errors = 0
        self._hits = 0
        self._misses = 0
        self._busy_seconds = 0.0
        self._shard_tasks: dict[str, int] = {}
        self._shard_errors: dict[str, int] = {}
        self._merge_wins: dict[str, int] = {}
        self._coalesced = 0
        self._timeouts = 0
        self._shed = 0
        self._queue_depth_peak = 0
        self._slo_seconds = slo_seconds
        self._slo_violations = 0
        self._endpoints: dict[str, dict[str, int]] = {}
        self._waves_formed = 0
        self._wave_members = 0
        self._wave_capacity = 0
        self._wave_solo = 0

    def record_query(self, latency_seconds: float, cached: bool) -> None:
        """One answered query (hit or computed)."""
        with self._lock:
            self._latencies.append(latency_seconds)
            self._queries += 1
            if cached:
                self._hits += 1
            else:
                self._misses += 1
            if self._slo_seconds is not None and latency_seconds > self._slo_seconds:
                self._slo_violations += 1

    def record_endpoint(self, endpoint: str, error: bool = False) -> None:
        """One request handled on a named HTTP endpoint.

        Endpoint counters are the network tier's currency: they count
        *requests at the front door* (including health probes and schema
        rejections), not engine queries — a batch of 50 is one ``/batch``
        request here and 50 queries in the query counters.
        """
        with self._lock:
            counters = self._endpoints.setdefault(endpoint, {"requests": 0, "errors": 0})
            counters["requests"] += 1
            if error:
                counters["errors"] += 1

    def record_error(self) -> None:
        """One query that raised instead of answering."""
        with self._lock:
            self._errors += 1

    def record_busy(self, seconds: float) -> None:
        """Wall time of one serve call (single query or whole batch)."""
        with self._lock:
            self._busy_seconds += seconds

    def record_shard(self, shard: str, tasks: int = 1, errors: int = 0) -> None:
        """Account *tasks* executed (and *errors* raised) on one shard.

        These count backend *tasks*, not client queries: one scatter-
        gathered query contributes to every shard it touched, and cache
        hits contribute nowhere.
        """
        with self._lock:
            self._shard_tasks[shard] = self._shard_tasks.get(shard, 0) + tasks
            if errors:
                self._shard_errors[shard] = self._shard_errors.get(shard, 0) + errors

    def record_merge(self, winner: str) -> None:
        """Account one scatter-merge outcome (``cell`` / ``crosscell`` /
        ``degraded`` / ``infeasible`` / ``error``) on a sharded
        service."""
        with self._lock:
            self._merge_wins[winner] = self._merge_wins.get(winner, 0) + 1

    def record_coalesced(self, count: int = 1) -> None:
        """Account *count* requests served off another's computation."""
        with self._lock:
            self._coalesced += count

    def record_timeout(self) -> None:
        """Account one request that stopped waiting for its answer."""
        with self._lock:
            self._timeouts += 1

    def record_shed(self) -> None:
        """Account one request refused by front-door admission control."""
        with self._lock:
            self._shed += 1

    def record_queue_depth(self, depth: int) -> None:
        """Track the deepest submission queue seen so far."""
        with self._lock:
            if depth > self._queue_depth_peak:
                self._queue_depth_peak = depth

    def record_wave(self, members: int, capacity: int) -> None:
        """Account one wave dispatched with *members* queries aboard.

        *capacity* is the wave size the scheduler could have filled to;
        the ratio of the two sums is the fill rate the snapshot exposes.
        """
        with self._lock:
            self._waves_formed += 1
            self._wave_members += members
            self._wave_capacity += capacity

    def record_wave_solo(self, count: int = 1) -> None:
        """Account *count* queries dispatched per-query instead of waved
        (singleton shard groups and broken-wave resubmissions)."""
        with self._lock:
            self._wave_solo += count

    def snapshot(
        self,
        pinning: Mapping[str, int] | None = None,
        queue_depth_peak: int | None = None,
    ) -> StatsSnapshot:
        """Freeze the current aggregates (percentiles over the window).

        ``pinning`` and ``queue_depth_peak``, when given, are *live*
        backend readings folded into the returned snapshot only — the
        accumulator itself is not mutated, so :meth:`reset` semantics
        stay intact for the service's own counters.  (A backend's peak
        is backend-lifetime; resetting the service cannot rewind it.)
        """
        with self._lock:
            latencies = list(self._latencies)
            return StatsSnapshot(
                queries=self._queries,
                errors=self._errors,
                cache_hits=self._hits,
                cache_misses=self._misses,
                p50_latency_seconds=percentile(latencies, 50.0),
                p95_latency_seconds=percentile(latencies, 95.0),
                p99_latency_seconds=percentile(latencies, 99.0),
                mean_latency_seconds=(
                    sum(latencies) / len(latencies) if latencies else 0.0
                ),
                busy_seconds=self._busy_seconds,
                slo_seconds=self._slo_seconds,
                slo_violations=self._slo_violations,
                endpoints={name: dict(c) for name, c in self._endpoints.items()},
                shard_tasks=dict(self._shard_tasks),
                shard_errors=dict(self._shard_errors),
                merge_wins=dict(self._merge_wins),
                coalesced=self._coalesced,
                timeouts=self._timeouts,
                shed=self._shed,
                queue_depth_peak=max(
                    self._queue_depth_peak, queue_depth_peak or 0
                ),
                pinning=dict(pinning) if pinning else {},
                waves=(
                    {
                        "formed": self._waves_formed,
                        "members": self._wave_members,
                        "capacity": self._wave_capacity,
                        "solo_fallbacks": self._wave_solo,
                        "mean_members": (
                            self._wave_members / self._waves_formed
                            if self._waves_formed
                            else 0.0
                        ),
                        "fill_rate": (
                            self._wave_members / self._wave_capacity
                            if self._wave_capacity
                            else 0.0
                        ),
                    }
                    if self._waves_formed or self._wave_solo
                    else {}
                ),
            )

    def reset(self) -> None:
        """Zero every counter and drop all samples."""
        with self._lock:
            self._latencies.clear()
            self._queries = 0
            self._errors = 0
            self._hits = 0
            self._misses = 0
            self._busy_seconds = 0.0
            self._shard_tasks.clear()
            self._shard_errors.clear()
            self._merge_wins.clear()
            self._coalesced = 0
            self._timeouts = 0
            self._shed = 0
            self._queue_depth_peak = 0
            self._slo_violations = 0
            self._endpoints.clear()
            self._waves_formed = 0
            self._wave_members = 0
            self._wave_capacity = 0
            self._wave_solo = 0
