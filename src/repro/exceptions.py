"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type to handle any
library-level failure while letting genuine bugs (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for invalid graph construction or malformed graph input."""


class QueryError(ReproError):
    """Raised for invalid KOR/KkR queries (unknown nodes, empty keywords...)."""


class DeadlineExceeded(QueryError):
    """Raised when a query's deadline expires mid-search.

    Search loops check their :class:`repro.core.deadline.Deadline` at a
    periodic checkpoint, so a request whose caller gave up stops within
    a bounded number of loop iterations instead of running to
    completion.  The HTTP tier maps this to 504.
    """


class ServiceClosed(QueryError):
    """Raised for work submitted to (or still queued in) a closed service.

    Distinct from a timeout: the service is shutting down and the
    request was never dispatched, so retrying against another instance
    is safe.  The HTTP tier maps this to 503.
    """


class PrepError(ReproError):
    """Raised when pre-processing tables are missing, stale, or inconsistent."""


class StorageError(ReproError):
    """Raised by the disk-resident index substrate (pages, buffer pool, B+-tree)."""


class DatasetError(ReproError):
    """Raised by the synthetic dataset generators for invalid parameters."""
