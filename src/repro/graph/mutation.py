"""Live graph mutation: deltas, application, and the stateful mutator.

:class:`~repro.graph.digraph.SpatialKeywordGraph` is immutable by
design — pre-processing caches CSR exports and weight extrema against
it.  A *dynamic* world therefore mutates by **replacement**: every
change is first resolved into a :class:`GraphDelta` (a frozen, picklable
record of absolute edge/keyword assignments) and then applied with
:func:`apply_graph_delta`, which builds a fresh graph sharing the
append-only :class:`~repro.graph.keywords.KeywordTable`.

Deltas are deliberately **absolute and idempotent**:

* ``set_edges`` *upserts* — the edge gets exactly these weights whether
  or not it currently exists (this is what makes node re-opening a plain
  delta, and what makes re-applying a delta a no-op);
* ``drop_edges`` removes an edge if present and is silent otherwise;
* ``set_keywords`` replaces a node's keyword set with exactly these
  *strings* — strings, not interned ids, so a delta shipped to a
  process-pool worker interns new words into the worker's own table copy
  in the same first-seen order the parent did, keeping keyword ids
  identical on both sides of the pickle boundary.

:class:`GraphMutator` layers the user-facing operations on top —
``update_edge_cost`` / ``close_node`` / ``open_node`` /
``update_keywords`` — validating each against the *current* graph and
remembering enough history (cost overrides, closure set) that re-opening
a node restores its most recently configured edges and keywords.

The validation/resolution split matters downstream: resolution is strict
(closing a closed node is an error), application is lenient (re-applying
an already-applied delta changes nothing) — so a delta can be broadcast
to every process-pool worker without coordinating exactly-once delivery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.exceptions import GraphError
from repro.graph.digraph import SpatialKeywordGraph

__all__ = [
    "GraphDelta",
    "GraphMutator",
    "MutationError",
    "apply_graph_delta",
    "resolve_ops",
]

#: Operation names accepted by :func:`resolve_ops` (the wire-level set).
OP_NAMES = ("update_edge_cost", "close_node", "open_node", "update_keywords")


class MutationError(GraphError):
    """An invalid mutation request (unknown edge, double close, ...)."""


@dataclass(frozen=True)
class GraphDelta:
    """One batch of absolute graph changes, picklable and replayable.

    ``set_edges`` holds ``(u, v, objective, budget)`` upserts,
    ``drop_edges`` holds ``(u, v)`` removals and ``set_keywords`` holds
    ``(node, words)`` replacements with ``words`` a sorted tuple of
    keyword strings.  An edge never appears in both ``set_edges`` and
    ``drop_edges``; a node appears at most once in ``set_keywords``.
    """

    set_edges: tuple[tuple[int, int, float, float], ...] = ()
    drop_edges: tuple[tuple[int, int], ...] = ()
    set_keywords: tuple[tuple[int, tuple[str, ...]], ...] = ()

    @property
    def is_empty(self) -> bool:
        """Whether applying this delta can change anything."""
        return not (self.set_edges or self.drop_edges or self.set_keywords)

    @property
    def structural(self) -> bool:
        """Whether the delta changes edges (vs keywords only)."""
        return bool(self.set_edges or self.drop_edges)

    def touched_nodes(self) -> frozenset[int]:
        """Every node an applied change is anchored at."""
        nodes: set[int] = set()
        for u, v, _obj, _bud in self.set_edges:
            nodes.add(u)
            nodes.add(v)
        for u, v in self.drop_edges:
            nodes.add(u)
            nodes.add(v)
        for node, _words in self.set_keywords:
            nodes.add(node)
        return frozenset(nodes)

    def merge(self, later: "GraphDelta") -> "GraphDelta":
        """The delta equivalent to applying ``self`` then *later*.

        Sound because every entry is absolute: a later assignment to the
        same edge or node simply wins.
        """
        edges: dict[tuple[int, int], tuple[float, float] | None] = {}
        for u, v, obj, bud in self.set_edges:
            edges[(u, v)] = (obj, bud)
        for u, v in self.drop_edges:
            edges[(u, v)] = None
        for u, v, obj, bud in later.set_edges:
            edges[(u, v)] = (obj, bud)
        for u, v in later.drop_edges:
            edges[(u, v)] = None
        keywords: dict[int, tuple[str, ...]] = dict(self.set_keywords)
        keywords.update(dict(later.set_keywords))
        return GraphDelta(
            set_edges=tuple(
                (u, v, weights[0], weights[1])
                for (u, v), weights in sorted(edges.items())
                if weights is not None
            ),
            drop_edges=tuple(
                (u, v) for (u, v), weights in sorted(edges.items()) if weights is None
            ),
            set_keywords=tuple(sorted(keywords.items())),
        )


def apply_graph_delta(
    graph: SpatialKeywordGraph, delta: GraphDelta
) -> SpatialKeywordGraph:
    """A new graph with *delta* applied (lenient, idempotent).

    Shares the graph's (append-only) keyword table, names and
    coordinates.  Adjacency order is stable: an updated edge keeps its
    position, a re-created edge appends — so replaying the same delta
    sequence always reproduces the same adjacency (and therefore the
    same search tie-breaking) on every replica.
    """
    if delta.is_empty:
        return graph
    n = graph.num_nodes
    adjacency: list[list[tuple[int, float, float]]] = [
        list(graph.out_edges(u)) for u in range(n)
    ]
    for u, v in delta.drop_edges:
        _check_node(n, u)
        _check_node(n, v)
        adjacency[u] = [edge for edge in adjacency[u] if edge[0] != v]
    for u, v, obj, bud in delta.set_edges:
        _check_node(n, u)
        _check_node(n, v)
        out = adjacency[u]
        for position, (target, _o, _b) in enumerate(out):
            if target == v:
                out[position] = (v, obj, bud)
                break
        else:
            out.append((v, obj, bud))
    node_keywords = [graph.node_keywords(u) for u in range(n)]
    table = graph.keyword_table
    for node, words in delta.set_keywords:
        _check_node(n, node)
        # Interning in the delta's (sorted, deduplicated) word order keeps
        # fresh ids identical across every replica applying this delta.
        node_keywords[node] = table.intern_many(words)
    coordinates = graph.coordinate_arrays
    return SpatialKeywordGraph(
        adjacency,
        node_keywords,
        table,
        names=[graph.name_of(u) for u in range(n)],
        xs=None if coordinates is None else coordinates[0],
        ys=None if coordinates is None else coordinates[1],
    )


def _check_node(n: int, node: int) -> None:
    if not (isinstance(node, int) and 0 <= node < n):
        raise MutationError(f"node {node!r} is outside the graph's 0..{n - 1} range")


def _normalised_words(words: Iterable[str]) -> tuple[str, ...]:
    """Sorted, deduplicated keyword strings (the canonical delta form)."""
    unique = set()
    for word in words:
        if not isinstance(word, str) or not word:
            raise MutationError(f"keywords must be non-empty strings, got {word!r}")
        unique.add(word)
    return tuple(sorted(unique))


class GraphMutator:
    """Stateful front door over :class:`GraphDelta` resolution.

    Tracks the *current* graph plus the closure set and the latest
    per-edge cost / per-node keyword overrides, so operations validate
    against what the world looks like now and ``open_node`` restores the
    most recently configured state, not the original one.  Mutations
    never grow the world: the node set is fixed and ``set_edges`` only
    ever re-creates edges that existed at construction time (possibly
    with updated costs) — which is what lets a partition computed over
    the base graph stay the unit of repair forever.
    """

    def __init__(self, graph: SpatialKeywordGraph) -> None:
        self._base = graph
        self._graph = graph
        self._closed: set[int] = set()
        #: Latest explicit weights per base edge, surviving closures.
        self._edge_costs: dict[tuple[int, int], tuple[float, float]] = {}
        #: Latest explicit keyword sets per node, surviving closures.
        self._keywords: dict[int, tuple[str, ...]] = {}

    @property
    def graph(self) -> SpatialKeywordGraph:
        """The current (latest-delta-applied) graph."""
        return self._graph

    @property
    def base_graph(self) -> SpatialKeywordGraph:
        """The graph the mutator was constructed over."""
        return self._base

    @property
    def closed_nodes(self) -> frozenset[int]:
        """Nodes currently closed."""
        return frozenset(self._closed)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def update_edge_cost(
        self,
        u: int,
        v: int,
        objective: float | None = None,
        budget: float | None = None,
    ) -> GraphDelta:
        """Re-cost the existing edge ``(u, v)``; unset weights persist."""
        n = self._graph.num_nodes
        _check_node(n, u)
        _check_node(n, v)
        if u in self._closed or v in self._closed:
            raise MutationError(
                f"cannot update edge ({u}, {v}): one of its endpoints is closed"
            )
        if not self._graph.has_edge(u, v):
            raise MutationError(f"no edge ({u}, {v}) to update")
        if objective is None and budget is None:
            raise MutationError("update_edge_cost needs objective=, budget=, or both")
        current_obj, current_bud = self._graph.edge(u, v)
        obj = float(objective) if objective is not None else current_obj
        bud = float(budget) if budget is not None else current_bud
        for name, value in (("objective", obj), ("budget", bud)):
            if not (value > 0.0) or not math.isfinite(value):
                raise MutationError(
                    f"edge ({u}, {v}) {name} must be finite and > 0, got {value}"
                )
        self._edge_costs[(u, v)] = (obj, bud)
        return self._resolve(GraphDelta(set_edges=((u, v, obj, bud),)))

    def close_node(self, node: int) -> GraphDelta:
        """Remove *node* from service: strip its edges and keywords.

        The node id stays valid (the world never renumbers); it simply
        becomes unreachable and keyword-less until :meth:`open_node`.
        """
        _check_node(self._graph.num_nodes, node)
        if node in self._closed:
            raise MutationError(f"node {node} is already closed")
        # Remember the pre-closure keywords unless an explicit override
        # already speaks for this node.
        self._keywords.setdefault(
            node, _normalised_words(self._graph.node_keyword_strings(node))
        )
        drops = [(node, v) for v, _obj, _bud in self._graph.out_edges(node)]
        for u in range(self._graph.num_nodes):
            if u != node and self._graph.has_edge(u, node):
                drops.append((u, node))
        self._closed.add(node)
        return self._resolve(
            GraphDelta(drop_edges=tuple(drops), set_keywords=((node, ()),))
        )

    def open_node(self, node: int) -> GraphDelta:
        """Re-open a closed node, restoring its latest edges and keywords.

        Restores every *base-graph* edge incident to the node whose other
        endpoint is currently open, at the most recently configured
        weights; edges toward still-closed neighbours come back when
        those neighbours re-open.
        """
        _check_node(self._graph.num_nodes, node)
        if node not in self._closed:
            raise MutationError(f"node {node} is not closed")
        self._closed.discard(node)
        restored: list[tuple[int, int, float, float]] = []
        for u, v, obj, bud in self._incident_base_edges(node):
            if u in self._closed or v in self._closed:
                continue
            obj, bud = self._edge_costs.get((u, v), (obj, bud))
            restored.append((u, v, obj, bud))
        words = self._keywords.get(node, ())
        return self._resolve(
            GraphDelta(set_edges=tuple(restored), set_keywords=((node, words),))
        )

    def update_keywords(self, node: int, keywords: Iterable[str]) -> GraphDelta:
        """Replace *node*'s keyword set (open nodes only)."""
        _check_node(self._graph.num_nodes, node)
        if node in self._closed:
            raise MutationError(
                f"cannot update keywords of closed node {node}; open it first"
            )
        words = _normalised_words(keywords)
        self._keywords[node] = words
        return self._resolve(GraphDelta(set_keywords=((node, words),)))

    def apply_op(self, op: Mapping[str, object]) -> GraphDelta:
        """Apply one wire-shaped operation (see :data:`OP_NAMES`)."""
        kind = op.get("op")
        if kind == "update_edge_cost":
            return self.update_edge_cost(
                op["u"], op["v"], objective=op.get("objective"), budget=op.get("budget")
            )
        if kind == "close_node":
            return self.close_node(op["node"])
        if kind == "open_node":
            return self.open_node(op["node"])
        if kind == "update_keywords":
            return self.update_keywords(op["node"], op["keywords"])
        raise MutationError(
            f"unknown mutation op {kind!r}; expected one of {', '.join(OP_NAMES)}"
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _resolve(self, delta: GraphDelta) -> GraphDelta:
        self._graph = apply_graph_delta(self._graph, delta)
        return delta

    def _incident_base_edges(self, node: int):
        for v, obj, bud in self._base.out_edges(node):
            if v != node:
                yield node, v, obj, bud
        for u in range(self._base.num_nodes):
            if u != node and self._base.has_edge(u, node):
                obj, bud = self._base.edge(u, node)
                yield u, node, obj, bud


def resolve_ops(
    mutator: GraphMutator, ops: Sequence[Mapping[str, object]]
) -> GraphDelta:
    """Resolve a sequence of operations into one merged delta.

    Validation is sequential (each op sees its predecessors applied);
    the merged result is equivalent to applying the ops in order because
    every delta entry is absolute.  On a validation error, ops already
    resolved *stay applied* to the mutator — callers wanting all-or-
    nothing semantics should validate the batch first.
    """
    merged = GraphDelta()
    for op in ops:
        merged = merged.merge(mutator.apply_op(op))
    return merged
