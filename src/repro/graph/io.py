"""Serialisation of spatial-keyword graphs.

Two formats are provided:

* **JSON** — human-readable, good for small fixtures and interchange.
* **NPZ** — compact binary (numpy archive), good for the generated
  benchmark datasets; round-trips coordinates and weights losslessly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import SpatialKeywordGraph

__all__ = ["save_json", "load_json", "save_npz", "load_npz"]

_JSON_VERSION = 1


def save_json(graph: SpatialKeywordGraph, path: str | Path) -> None:
    """Write *graph* to *path* as a self-describing JSON document."""
    nodes = []
    for u in range(graph.num_nodes):
        node: dict[str, object] = {
            "name": graph.name_of(u),
            "keywords": sorted(graph.node_keyword_strings(u)),
        }
        coords = graph.coordinates(u)
        if coords is not None:
            node["x"], node["y"] = coords
        nodes.append(node)
    edges = [
        {"u": e.u, "v": e.v, "objective": e.objective, "budget": e.budget}
        for e in graph.iter_edges()
    ]
    doc = {"format": "repro-graph", "version": _JSON_VERSION, "nodes": nodes, "edges": edges}
    Path(path).write_text(json.dumps(doc, indent=1, sort_keys=True))


def load_json(path: str | Path) -> SpatialKeywordGraph:
    """Load a graph previously written by :func:`save_json`."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise GraphError(f"cannot read graph from {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != "repro-graph":
        raise GraphError(f"{path} is not a repro graph JSON document")
    if doc.get("version") != _JSON_VERSION:
        raise GraphError(f"unsupported graph format version: {doc.get('version')!r}")

    builder = GraphBuilder()
    for node in doc["nodes"]:
        builder.add_node(
            keywords=node.get("keywords", []),
            name=node.get("name"),
            x=node.get("x"),
            y=node.get("y"),
        )
    for edge in doc["edges"]:
        builder.add_edge(
            int(edge["u"]), int(edge["v"]), float(edge["objective"]), float(edge["budget"])
        )
    return builder.build()


def save_npz(graph: SpatialKeywordGraph, path: str | Path) -> None:
    """Write *graph* to *path* as a compressed numpy archive."""
    indptr, indices, objectives, budgets = graph.to_csr()
    names = np.array([graph.name_of(u) for u in range(graph.num_nodes)])
    vocabulary = np.array(list(graph.keyword_table.words), dtype=object)

    # Node keyword sets become a ragged -> (offsets, flat ids) pair.
    kw_offsets = np.zeros(graph.num_nodes + 1, dtype=np.int64)
    flat_ids: list[int] = []
    for u in range(graph.num_nodes):
        ids = sorted(graph.node_keywords(u))
        flat_ids.extend(ids)
        kw_offsets[u + 1] = len(flat_ids)
    arrays: dict[str, np.ndarray] = {
        "indptr": indptr,
        "indices": indices,
        "objectives": objectives,
        "budgets": budgets,
        "names": names,
        "vocabulary": vocabulary,
        "kw_offsets": kw_offsets,
        "kw_ids": np.asarray(flat_ids, dtype=np.int64),
    }
    coords = graph.coordinate_arrays
    if coords is not None:
        arrays["xs"], arrays["ys"] = coords
    np.savez_compressed(path, **arrays)


def load_npz(path: str | Path) -> SpatialKeywordGraph:
    """Load a graph previously written by :func:`save_npz`."""
    try:
        data = np.load(path, allow_pickle=True)
    except OSError as exc:
        raise GraphError(f"cannot read graph from {path}: {exc}") from exc
    required = {"indptr", "indices", "objectives", "budgets", "names", "vocabulary"}
    missing = required - set(data.files)
    if missing:
        raise GraphError(f"{path} misses arrays: {sorted(missing)}")

    builder = GraphBuilder()
    vocabulary = [str(w) for w in data["vocabulary"]]
    kw_offsets = data["kw_offsets"]
    kw_ids = data["kw_ids"]
    names = data["names"]
    has_coords = "xs" in data.files
    n = len(names)
    for u in range(n):
        word_ids = kw_ids[kw_offsets[u] : kw_offsets[u + 1]]
        builder.add_node(
            keywords=[vocabulary[int(k)] for k in word_ids],
            name=str(names[u]),
            x=float(data["xs"][u]) if has_coords else None,
            y=float(data["ys"][u]) if has_coords else None,
        )
    indptr = data["indptr"]
    indices = data["indices"]
    objectives = data["objectives"]
    budgets = data["budgets"]
    for u in range(n):
        for pos in range(int(indptr[u]), int(indptr[u + 1])):
            builder.add_edge(u, int(indices[pos]), float(objectives[pos]), float(budgets[pos]))
    return builder.build()
