"""Interoperability with :mod:`networkx`.

networkx is **not** a dependency of the core library; these helpers import
it lazily.  They exist so that (a) users with existing networkx pipelines
can adopt the KOR engine in one call, and (b) the test suite can use
networkx shortest paths as an independent oracle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import SpatialKeywordGraph

if TYPE_CHECKING:  # pragma: no cover
    import networkx as nx

__all__ = ["from_networkx", "to_networkx"]


def _require_networkx():
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - environment guard
        raise GraphError("networkx is required for graph interop") from exc
    return networkx


def from_networkx(
    nx_graph: "nx.DiGraph",
    keyword_attr: str = "keywords",
    objective_attr: str = "objective",
    budget_attr: str = "budget",
) -> tuple[SpatialKeywordGraph, dict[object, int]]:
    """Convert a networkx ``DiGraph`` into a :class:`SpatialKeywordGraph`.

    Node keyword sets are read from the *keyword_attr* node attribute
    (any iterable of strings, missing means "no keywords"); edge weights
    from *objective_attr* / *budget_attr*.  Returns the graph plus the
    mapping from original networkx node keys to dense integer ids.
    """
    _require_networkx()
    builder = GraphBuilder()
    mapping: dict[object, int] = {}
    for node, attrs in nx_graph.nodes(data=True):
        keywords = attrs.get(keyword_attr, ())
        pos = attrs.get("pos")
        x, y = (pos if pos is not None else (None, None))
        mapping[node] = builder.add_node(keywords=list(keywords), name=str(node), x=x, y=y)
    for u, v, attrs in nx_graph.edges(data=True):
        if objective_attr not in attrs or budget_attr not in attrs:
            raise GraphError(
                f"edge ({u!r}, {v!r}) lacks '{objective_attr}'/'{budget_attr}' attributes"
            )
        builder.add_edge(
            mapping[u], mapping[v], float(attrs[objective_attr]), float(attrs[budget_attr])
        )
    return builder.build(), mapping


def to_networkx(graph: SpatialKeywordGraph) -> "nx.DiGraph":
    """Convert a :class:`SpatialKeywordGraph` into a networkx ``DiGraph``.

    Node attributes: ``keywords`` (frozenset of strings), ``name``, and
    ``pos`` when the graph has coordinates.  Edge attributes: ``objective``
    and ``budget``.
    """
    networkx = _require_networkx()
    out = networkx.DiGraph()
    for u in range(graph.num_nodes):
        attrs: dict[str, object] = {
            "keywords": graph.node_keyword_strings(u),
            "name": graph.name_of(u),
        }
        coords = graph.coordinates(u)
        if coords is not None:
            attrs["pos"] = coords
        out.add_node(u, **attrs)
    for edge in graph.iter_edges():
        out.add_edge(edge.u, edge.v, objective=edge.objective, budget=edge.budget)
    return out
