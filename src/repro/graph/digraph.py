"""The spatial-keyword digraph substrate.

This is the graph of Definition 1 in the paper: a directed graph whose
nodes carry keyword sets (``v.psi``) and whose edges carry two strictly
positive weights — an **objective value** ``o(vi, vj)`` and a **budget
value** ``b(vi, vj)`` (Definition 3 sums these along a route).

The structure is immutable once constructed (use
:class:`repro.graph.builder.GraphBuilder` to assemble one); immutability
lets us cache derived artifacts (CSR matrices, weight extrema) that the
pre-processing and search layers rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import GraphError
from repro.graph.keywords import KeywordTable

__all__ = ["SpatialKeywordGraph", "Edge", "GraphStats"]


@dataclass(frozen=True)
class Edge:
    """A single directed edge ``(u, v)`` with its two weights."""

    u: int
    v: int
    objective: float
    budget: float


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics used by reports, tests and the dataset generators."""

    num_nodes: int
    num_edges: int
    min_objective: float
    max_objective: float
    min_budget: float
    max_budget: float
    max_out_degree: int
    mean_out_degree: float
    num_keywords: int
    mean_keywords_per_node: float


class SpatialKeywordGraph:
    """Immutable directed graph with per-node keywords and two edge weights.

    Parameters
    ----------
    adjacency:
        ``adjacency[u]`` is a list of ``(v, objective, budget)`` tuples for
        every out-edge of node ``u``.  Node ids must be dense integers
        ``0 .. n-1``.
    node_keywords:
        ``node_keywords[u]`` is a frozenset of interned keyword ids.
    keyword_table:
        The :class:`KeywordTable` that interned the keyword ids.
    names:
        Optional human-readable node names (e.g. ``"v0"`` or a POI name).
    xs, ys:
        Optional node coordinates (used by the dataset generators, the
        greedy examples and plots; never consulted by the core algorithms).
    """

    __slots__ = (
        "_adj",
        "_node_keywords",
        "_keyword_table",
        "_names",
        "_xs",
        "_ys",
        "_num_edges",
        "_objective_bounds",
        "_budget_bounds",
        "_csr_cache",
        "_edge_lookup",
    )

    def __init__(
        self,
        adjacency: Sequence[Sequence[tuple[int, float, float]]],
        node_keywords: Sequence[frozenset[int]],
        keyword_table: KeywordTable,
        names: Sequence[str] | None = None,
        xs: Sequence[float] | None = None,
        ys: Sequence[float] | None = None,
    ) -> None:
        n = len(adjacency)
        if len(node_keywords) != n:
            raise GraphError(
                f"adjacency has {n} nodes but node_keywords has {len(node_keywords)}"
            )
        if names is not None and len(names) != n:
            raise GraphError(f"names has {len(names)} entries for {n} nodes")
        if (xs is None) != (ys is None):
            raise GraphError("xs and ys must be supplied together")
        if xs is not None and (len(xs) != n or len(ys) != n):
            raise GraphError("coordinate arrays must have one entry per node")

        num_edges = 0
        o_min, o_max = np.inf, -np.inf
        b_min, b_max = np.inf, -np.inf
        frozen_adj: list[tuple[tuple[int, float, float], ...]] = []
        for u, out in enumerate(adjacency):
            seen_targets: set[int] = set()
            for v, obj, bud in out:
                if not (0 <= v < n):
                    raise GraphError(f"edge ({u}, {v}) points outside the node range")
                if v in seen_targets:
                    raise GraphError(f"duplicate edge ({u}, {v})")
                seen_targets.add(v)
                if not (obj > 0.0) or not np.isfinite(obj):
                    raise GraphError(
                        f"edge ({u}, {v}) objective must be finite and > 0, got {obj}"
                    )
                if not (bud > 0.0) or not np.isfinite(bud):
                    raise GraphError(
                        f"edge ({u}, {v}) budget must be finite and > 0, got {bud}"
                    )
                num_edges += 1
                o_min = min(o_min, obj)
                o_max = max(o_max, obj)
                b_min = min(b_min, bud)
                b_max = max(b_max, bud)
            frozen_adj.append(tuple((int(v), float(o), float(b)) for v, o, b in out))

        self._adj: tuple[tuple[tuple[int, float, float], ...], ...] = tuple(frozen_adj)
        self._node_keywords: tuple[frozenset[int], ...] = tuple(
            frozenset(ks) for ks in node_keywords
        )
        self._keyword_table = keyword_table
        self._names: tuple[str, ...] = (
            tuple(names) if names is not None else tuple(f"v{i}" for i in range(n))
        )
        self._xs = None if xs is None else np.asarray(xs, dtype=np.float64)
        self._ys = None if ys is None else np.asarray(ys, dtype=np.float64)
        self._num_edges = num_edges
        self._objective_bounds = (float(o_min), float(o_max))
        self._budget_bounds = (float(b_min), float(b_max))
        self._csr_cache: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None
        self._edge_lookup: dict[tuple[int, int], tuple[float, float]] | None = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``|E|``."""
        return self._num_edges

    @property
    def keyword_table(self) -> KeywordTable:
        """The interning table shared by this graph's keyword ids."""
        return self._keyword_table

    def out_edges(self, u: int) -> tuple[tuple[int, float, float], ...]:
        """Out-edges of *u* as ``(v, objective, budget)`` tuples."""
        return self._adj[u]

    def out_degree(self, u: int) -> int:
        """Number of out-edges of *u*."""
        return len(self._adj[u])

    def node_keywords(self, u: int) -> frozenset[int]:
        """Interned keyword ids attached to node *u* (``v.psi``)."""
        return self._node_keywords[u]

    def node_keyword_strings(self, u: int) -> frozenset[str]:
        """Keyword strings attached to node *u* (convenience for reports)."""
        return self._keyword_table.words_of(self._node_keywords[u])

    def name_of(self, u: int) -> str:
        """Human-readable name of node *u*."""
        return self._names[u]

    def index_of(self, name: str) -> int:
        """Inverse of :meth:`name_of`; linear scan, intended for tests/examples."""
        try:
            return self._names.index(name)
        except ValueError:
            raise GraphError(f"unknown node name: {name!r}") from None

    def coordinates(self, u: int) -> tuple[float, float] | None:
        """``(x, y)`` of node *u*, or ``None`` when the graph has no geometry."""
        if self._xs is None:
            return None
        return float(self._xs[u]), float(self._ys[u])

    @property
    def has_coordinates(self) -> bool:
        """Whether nodes carry geometric coordinates."""
        return self._xs is not None

    @property
    def coordinate_arrays(self) -> tuple[np.ndarray, np.ndarray] | None:
        """The raw ``(xs, ys)`` arrays, or ``None``."""
        if self._xs is None:
            return None
        return self._xs, self._ys

    # ------------------------------------------------------------------
    # weights
    # ------------------------------------------------------------------
    @property
    def min_objective(self) -> float:
        """Smallest edge objective value ``o_min`` (Lemma 1 / scaling factor)."""
        return self._objective_bounds[0]

    @property
    def max_objective(self) -> float:
        """Largest edge objective value ``o_max`` (Lemma 1)."""
        return self._objective_bounds[1]

    @property
    def min_budget(self) -> float:
        """Smallest edge budget value ``b_min`` (Lemma 1 / scaling factor)."""
        return self._budget_bounds[0]

    @property
    def max_budget(self) -> float:
        """Largest edge budget value."""
        return self._budget_bounds[1]

    def edge(self, u: int, v: int) -> tuple[float, float]:
        """Return ``(objective, budget)`` of edge ``(u, v)``.

        Raises :class:`GraphError` when the edge does not exist.  Lookups are
        backed by a lazily built hash map so repeated scoring of explicit
        routes (Definition 3) is O(1) per edge.
        """
        if self._edge_lookup is None:
            lookup: dict[tuple[int, int], tuple[float, float]] = {}
            for u_, out in enumerate(self._adj):
                for v_, obj, bud in out:
                    lookup[(u_, v_)] = (obj, bud)
            self._edge_lookup = lookup
        try:
            return self._edge_lookup[(u, v)]
        except KeyError:
            raise GraphError(f"no edge ({u}, {v})") from None

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``(u, v)`` exists."""
        try:
            self.edge(u, v)
        except GraphError:
            return False
        return True

    def iter_edges(self) -> Iterator[Edge]:
        """Iterate over every directed edge."""
        for u, out in enumerate(self._adj):
            for v, obj, bud in out:
                yield Edge(u, v, obj, bud)

    # ------------------------------------------------------------------
    # derived structures
    # ------------------------------------------------------------------
    def to_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Export ``(indptr, indices, objectives, budgets)`` CSR arrays.

        The result is cached; it feeds :func:`scipy.sparse.csgraph.dijkstra`
        in the pre-processing layer.
        """
        if self._csr_cache is None:
            n = self.num_nodes
            indptr = np.zeros(n + 1, dtype=np.int64)
            for u in range(n):
                indptr[u + 1] = indptr[u] + len(self._adj[u])
            m = int(indptr[-1])
            indices = np.empty(m, dtype=np.int64)
            objectives = np.empty(m, dtype=np.float64)
            budgets = np.empty(m, dtype=np.float64)
            pos = 0
            for out in self._adj:
                for v, obj, bud in out:
                    indices[pos] = v
                    objectives[pos] = obj
                    budgets[pos] = bud
                    pos += 1
            self._csr_cache = (indptr, indices, objectives, budgets)
        return self._csr_cache

    def induced_subgraph(self, nodes: Sequence[int]) -> tuple["SpatialKeywordGraph", dict[int, int]]:
        """Subgraph induced by *nodes*, re-indexed densely.

        Returns the new graph plus the mapping ``old id -> new id``.  The
        keyword table is shared (ids stay valid across both graphs).
        """
        keep = sorted(set(int(v) for v in nodes))
        if not keep:
            raise GraphError("cannot induce a subgraph on an empty node set")
        mapping = {old: new for new, old in enumerate(keep)}
        adjacency: list[list[tuple[int, float, float]]] = [[] for _ in keep]
        for old in keep:
            new_u = mapping[old]
            for v, obj, bud in self._adj[old]:
                new_v = mapping.get(v)
                if new_v is not None:
                    adjacency[new_u].append((new_v, obj, bud))
        return (
            SpatialKeywordGraph(
                adjacency,
                [self._node_keywords[old] for old in keep],
                self._keyword_table,
                names=[self._names[old] for old in keep],
                xs=None if self._xs is None else [float(self._xs[old]) for old in keep],
                ys=None if self._ys is None else [float(self._ys[old]) for old in keep],
            ),
            mapping,
        )

    def reverse(self) -> "SpatialKeywordGraph":
        """Return a new graph with every edge direction flipped."""
        rev: list[list[tuple[int, float, float]]] = [[] for _ in range(self.num_nodes)]
        for u, out in enumerate(self._adj):
            for v, obj, bud in out:
                rev[v].append((u, obj, bud))
        return SpatialKeywordGraph(
            rev,
            self._node_keywords,
            self._keyword_table,
            names=self._names,
            xs=self._xs,
            ys=self._ys,
        )

    def stats(self) -> GraphStats:
        """Summary statistics of the graph."""
        n = self.num_nodes
        degrees = [len(out) for out in self._adj]
        kw_counts = [len(ks) for ks in self._node_keywords]
        return GraphStats(
            num_nodes=n,
            num_edges=self._num_edges,
            min_objective=self.min_objective,
            max_objective=self.max_objective,
            min_budget=self.min_budget,
            max_budget=self.max_budget,
            max_out_degree=max(degrees, default=0),
            mean_out_degree=(self._num_edges / n) if n else 0.0,
            num_keywords=len(self._keyword_table),
            mean_keywords_per_node=(sum(kw_counts) / n) if n else 0.0,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpatialKeywordGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"keywords={len(self._keyword_table)})"
        )
