"""Spatial-keyword digraph substrate (Definition 1 of the paper)."""

from repro.graph.builder import GraphBuilder
from repro.graph.digraph import Edge, GraphStats, SpatialKeywordGraph
from repro.graph.generators import (
    FIGURE_1_EDGES,
    FIGURE_1_KEYWORDS,
    complete_bigraph,
    figure_1_graph,
    grid_graph,
    line_graph,
)
from repro.graph.io import load_json, load_npz, save_json, save_npz
from repro.graph.keywords import KeywordTable
from repro.graph.validation import (
    ValidationReport,
    is_strongly_connected,
    largest_scc,
    reachable_from,
    strongly_connected_components,
    validate_graph,
)

__all__ = [
    "Edge",
    "FIGURE_1_EDGES",
    "FIGURE_1_KEYWORDS",
    "GraphBuilder",
    "GraphStats",
    "KeywordTable",
    "SpatialKeywordGraph",
    "ValidationReport",
    "complete_bigraph",
    "figure_1_graph",
    "grid_graph",
    "is_strongly_connected",
    "largest_scc",
    "line_graph",
    "strongly_connected_components",
    "load_json",
    "load_npz",
    "reachable_from",
    "save_json",
    "save_npz",
    "validate_graph",
]
