"""Keyword interning.

The paper's graphs attach a *set of keywords* to every node (Definition 1:
``v.psi``).  Algorithms never care about the keyword strings themselves,
only about set membership, so we intern every distinct keyword string to a
dense integer id once, at graph-build time.  Query processing later maps the
(at most ~10) *query* keywords to bit positions of a machine-word bitmask;
that query-local binding lives in :mod:`repro.core.query`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.exceptions import GraphError

__all__ = ["KeywordTable"]


class KeywordTable:
    """A bidirectional mapping between keyword strings and dense integer ids.

    Ids are assigned in first-seen order starting from 0 and are never
    reused.  The table is append-only: keywords cannot be removed, which
    keeps ids stable for the lifetime of a graph.
    """

    __slots__ = ("_id_by_word", "_words")

    def __init__(self) -> None:
        self._id_by_word: dict[str, int] = {}
        self._words: list[str] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def intern(self, word: str) -> int:
        """Return the id for *word*, assigning a fresh id on first sight."""
        if not isinstance(word, str):
            raise GraphError(f"keyword must be a string, got {type(word).__name__}")
        if not word:
            raise GraphError("keyword must be a non-empty string")
        existing = self._id_by_word.get(word)
        if existing is not None:
            return existing
        new_id = len(self._words)
        self._id_by_word[word] = new_id
        self._words.append(word)
        return new_id

    def intern_many(self, words: Iterable[str]) -> frozenset[int]:
        """Intern every word in *words* and return their ids as a frozenset."""
        return frozenset(self.intern(word) for word in words)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def id_of(self, word: str) -> int:
        """Return the id of a known *word*.

        Raises :class:`~repro.exceptions.GraphError` if the word was never
        interned, which almost always indicates a query keyword that occurs
        nowhere in the graph.
        """
        try:
            return self._id_by_word[word]
        except KeyError:
            raise GraphError(f"unknown keyword: {word!r}") from None

    def get(self, word: str) -> int | None:
        """Return the id of *word* or ``None`` when it was never interned."""
        return self._id_by_word.get(word)

    def word_of(self, keyword_id: int) -> str:
        """Return the keyword string for *keyword_id*."""
        if 0 <= keyword_id < len(self._words):
            return self._words[keyword_id]
        raise GraphError(f"unknown keyword id: {keyword_id}")

    def words_of(self, keyword_ids: Iterable[int]) -> frozenset[str]:
        """Map a collection of keyword ids back to their strings."""
        return frozenset(self.word_of(kid) for kid in keyword_ids)

    # ------------------------------------------------------------------
    # protocol support
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._words)

    def __contains__(self, word: object) -> bool:
        return isinstance(word, str) and word in self._id_by_word

    def __iter__(self) -> Iterator[str]:
        return iter(self._words)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeywordTable({len(self._words)} keywords)"

    @property
    def words(self) -> tuple[str, ...]:
        """All interned keywords, in id order."""
        return tuple(self._words)
