"""Small deterministic graphs used across tests, docs and examples.

The centrepiece is :func:`figure_1_graph`, a faithful reconstruction of the
paper's running example (Figure 1).  The figure itself is an image, but its
edge weights and keyword assignment are fully determined by the worked facts
scattered through the text; see the module-level notes below for the
derivation and for two internal inconsistencies in the paper's own examples.

Reconstruction facts (all asserted by ``tests/graph/test_generators.py``):

* Route ``<v0,v3,v5,v7>`` has OS = 2+3+4 = 9 and BS = 2+2+1 = 5  (Section 2).
* ``tau_{0,7} = <v0,v3,v4,v7>`` with OS 4, BS 7; ``sigma_{0,7} =
  <v0,v3,v5,v7>`` with OS 9, BS 5  (Section 3.1).
* Example 1 (Delta=10, eps=0.5): theta = 1/20, so ``o_min * b_min = 1``;
  ``R1 = <v0,v2,v3,v4>`` has label (·, 100, 5, 7) and ``R2 =
  <v0,v2,v6,v5,v4>`` has label (·, 120, 6, 11), and R1's label dominates.
* Example 2 / Table 1 pins nine labels exactly, which fixes the weights of
  the edges out of v0, v2 and v3 and the query-keyword membership of every
  node they reach; ``BS(sigma_{6,7}) = 7``, ``OS(tau_{3,7}) = 2`` with budget
  5, and ``OS(tau_{5,7}) = 3`` with budget 4 pin the rest.
* The Section-2 query ``<v0,v7,{t1,t2,t3},8>`` has optimum ``<v0,v3,v4,v7>``
  (OS 4, BS 7) and with Delta = 6 the optimum is ``<v0,v3,v5,v7>``
  (OS 9, BS 5); this forces ``t3 in psi(v0)`` and ``t2 in psi(v7)``.

Known paper errata uncovered by the reconstruction:

1. Example 1 prints the label keyword set of ``<v0,v2,v3,v4>`` as
   ``<t1,t2,t4>``; with psi(v0)={t3} the *full* coverage also includes t3.
   The printed set matches coverage restricted to the implicit query
   keywords {t1,t2,t4}, which is how labels behave in Algorithm 1.
2. Example 2 concludes "the best route is R1" (OS 6), yet the Section-2
   example asserts that ``<v0,v3,v4,v7>`` covers {t1,t2,t3} within budget 8.
   Any route feasible for ({t1,t2,t3}, Delta=8) is feasible for the
   Example-2 query ({t1,t2}, Delta=10), and OS 4 < 6 — the two claims are
   mutually inconsistent *independent of the figure*.  We keep the
   Section-2 semantics (t2 on v7), so a faithful Algorithm-1 run returns
   OS 4; the Example-2 trace through step (d), including every Table-1
   label, still reproduces exactly.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.digraph import SpatialKeywordGraph

__all__ = [
    "figure_1_graph",
    "FIGURE_1_KEYWORDS",
    "FIGURE_1_EDGES",
    "line_graph",
    "grid_graph",
    "complete_bigraph",
]

#: Keyword of each node v0..v7 in the reconstructed Figure 1.
FIGURE_1_KEYWORDS: tuple[str, ...] = ("t3", "t5", "t2", "t1", "t4", "t2", "t1", "t2")

#: Directed edges ``(u, v, objective, budget)`` of the reconstructed Figure 1.
FIGURE_1_EDGES: tuple[tuple[int, int, float, float], ...] = (
    (0, 1, 4.0, 1.0),
    (0, 2, 1.0, 3.0),
    (0, 3, 2.0, 2.0),
    (1, 4, 1.0, 7.0),
    (1, 7, 3.0, 6.0),
    (2, 3, 3.0, 2.0),
    (2, 6, 1.0, 1.0),
    (3, 1, 1.0, 2.0),
    (3, 4, 1.0, 2.0),
    (3, 5, 3.0, 2.0),
    (4, 7, 1.0, 3.0),
    (5, 4, 2.0, 1.0),
    (5, 7, 4.0, 1.0),
    (6, 5, 2.0, 6.0),
)


def figure_1_graph() -> SpatialKeywordGraph:
    """The paper's Figure 1 example graph (8 nodes, 5 keywords).

    Every worked example in the paper (Examples 1 and 2, Table 1, the
    Section-2 queries and the Section-3.1 pre-processing facts) evaluates
    exactly on this graph; see the module docstring for the derivation.
    """
    builder = GraphBuilder()
    for i, keyword in enumerate(FIGURE_1_KEYWORDS):
        builder.add_node(keywords=[keyword], name=f"v{i}")
    for u, v, objective, budget in FIGURE_1_EDGES:
        builder.add_edge(u, v, objective, budget)
    return builder.build()


def line_graph(
    num_nodes: int,
    keywords: list[list[str]] | None = None,
    objective: float = 1.0,
    budget: float = 1.0,
) -> SpatialKeywordGraph:
    """A simple directed path ``0 -> 1 -> ... -> n-1`` with uniform weights.

    Handy for edge-case tests (single feasible route, tight budgets).
    """
    builder = GraphBuilder()
    for i in range(num_nodes):
        kws = keywords[i] if keywords is not None else []
        builder.add_node(keywords=kws)
    for i in range(num_nodes - 1):
        builder.add_edge(i, i + 1, objective, budget)
    return builder.build()


def grid_graph(
    rows: int,
    cols: int,
    objective: float = 1.0,
    budget: float = 1.0,
    keywords: dict[int, list[str]] | None = None,
) -> SpatialKeywordGraph:
    """A bidirectional grid; node ``(r, c)`` has id ``r * cols + c``.

    Used by unit tests that need multiple route alternatives with
    predictable scores.
    """
    builder = GraphBuilder()
    for r in range(rows):
        for c in range(cols):
            node_id = r * cols + c
            kws = keywords.get(node_id, []) if keywords else []
            builder.add_node(keywords=kws, x=float(c), y=float(r))
    for r in range(rows):
        for c in range(cols):
            node_id = r * cols + c
            if c + 1 < cols:
                builder.add_bidirectional_edge(node_id, node_id + 1, objective, budget)
            if r + 1 < rows:
                builder.add_bidirectional_edge(node_id, node_id + cols, objective, budget)
    return builder.build()


def complete_bigraph(
    num_nodes: int, objective: float = 1.0, budget: float = 1.0
) -> SpatialKeywordGraph:
    """A complete digraph with uniform weights and no keywords.

    Worst case for label proliferation; exercises domination pruning.
    """
    builder = GraphBuilder()
    for _ in range(num_nodes):
        builder.add_node()
    for u in range(num_nodes):
        for v in range(num_nodes):
            if u != v:
                builder.add_edge(u, v, objective, budget)
    return builder.build()
