"""Incremental construction of :class:`SpatialKeywordGraph` instances.

The builder accepts keyword *strings* (interning them on the fly), tolerates
nodes being declared in any order, validates weights eagerly, and produces an
immutable graph via :meth:`GraphBuilder.build`.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import GraphError
from repro.graph.digraph import SpatialKeywordGraph
from repro.graph.keywords import KeywordTable

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Mutable accumulator for nodes and edges of a spatial-keyword graph.

    Typical usage::

        builder = GraphBuilder()
        a = builder.add_node(keywords=["pub"], name="corner pub", x=1.0, y=2.0)
        b = builder.add_node(keywords=["mall", "restaurant"])
        builder.add_edge(a, b, objective=0.7, budget=1.2)
        graph = builder.build()
    """

    def __init__(self, keyword_table: KeywordTable | None = None) -> None:
        self._keywords = keyword_table if keyword_table is not None else KeywordTable()
        self._node_keywords: list[frozenset[int]] = []
        self._names: list[str] = []
        self._xs: list[float] = []
        self._ys: list[float] = []
        self._has_coords: bool | None = None
        self._edges: dict[tuple[int, int], tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes added so far."""
        return len(self._node_keywords)

    @property
    def num_edges(self) -> int:
        """Number of edges added so far."""
        return len(self._edges)

    @property
    def keyword_table(self) -> KeywordTable:
        """The (shared) keyword interning table."""
        return self._keywords

    def add_node(
        self,
        keywords: Iterable[str] = (),
        name: str | None = None,
        x: float | None = None,
        y: float | None = None,
    ) -> int:
        """Add a node and return its id.

        Either every node carries ``(x, y)`` coordinates or none does;
        mixing raises :class:`GraphError`.
        """
        has_coords = x is not None or y is not None
        if has_coords and (x is None or y is None):
            raise GraphError("both x and y must be given for a located node")
        if self._has_coords is None:
            self._has_coords = has_coords
        elif self._has_coords != has_coords:
            raise GraphError("all nodes must consistently have or lack coordinates")

        node_id = len(self._node_keywords)
        self._node_keywords.append(self._keywords.intern_many(keywords))
        self._names.append(name if name is not None else f"v{node_id}")
        if has_coords:
            self._xs.append(float(x))  # type: ignore[arg-type]
            self._ys.append(float(y))  # type: ignore[arg-type]
        return node_id

    def add_keywords(self, node: int, keywords: Iterable[str]) -> None:
        """Attach additional keywords to an existing node."""
        self._check_node(node)
        self._node_keywords[node] = self._node_keywords[node] | self._keywords.intern_many(
            keywords
        )

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def add_edge(
        self,
        u: int,
        v: int,
        objective: float,
        budget: float,
        overwrite: bool = False,
    ) -> None:
        """Add the directed edge ``(u, v)``.

        Weights must be finite and strictly positive: the scaling factor
        ``theta = eps * o_min * b_min / Delta`` (Section 3.2) divides by both
        minima, and Lemma 1's label bound divides by ``b_min``.
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise GraphError(f"self-loop ({u}, {u}) is not allowed")
        objective = float(objective)
        budget = float(budget)
        if not objective > 0.0:
            raise GraphError(f"edge ({u}, {v}) objective must be > 0, got {objective}")
        if not budget > 0.0:
            raise GraphError(f"edge ({u}, {v}) budget must be > 0, got {budget}")
        key = (u, v)
        if key in self._edges and not overwrite:
            raise GraphError(f"duplicate edge ({u}, {v}); pass overwrite=True to replace")
        self._edges[key] = (objective, budget)

    def add_bidirectional_edge(
        self, u: int, v: int, objective: float, budget: float, overwrite: bool = False
    ) -> None:
        """Add both ``(u, v)`` and ``(v, u)`` with identical weights.

        The paper treats directed graphs but notes the discussion "can be
        extended to undirected graphs straightforwardly" — this is that
        extension: an undirected road segment is two symmetric arcs.
        """
        self.add_edge(u, v, objective, budget, overwrite=overwrite)
        self.add_edge(v, u, objective, budget, overwrite=overwrite)

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------
    def build(self) -> SpatialKeywordGraph:
        """Freeze the accumulated nodes/edges into an immutable graph."""
        if not self._node_keywords:
            raise GraphError("cannot build an empty graph")
        if not self._edges:
            raise GraphError("cannot build a graph with no edges")
        n = len(self._node_keywords)
        adjacency: list[list[tuple[int, float, float]]] = [[] for _ in range(n)]
        for (u, v), (obj, bud) in sorted(self._edges.items()):
            adjacency[u].append((v, obj, bud))
        xs = self._xs if self._has_coords else None
        ys = self._ys if self._has_coords else None
        return SpatialKeywordGraph(
            adjacency,
            self._node_keywords,
            self._keywords,
            names=self._names,
            xs=xs,
            ys=ys,
        )

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not (0 <= node < len(self._node_keywords)):
            raise GraphError(f"unknown node id {node}; add_node() it first")
