"""Structural validation helpers for spatial-keyword graphs.

These checks are used by the dataset generators (to guarantee that the
synthetic workloads are well-formed before benchmarking) and surfaced to
library users through :func:`validate_graph`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.graph.digraph import SpatialKeywordGraph

__all__ = [
    "ValidationReport",
    "validate_graph",
    "reachable_from",
    "is_strongly_connected",
    "strongly_connected_components",
    "largest_scc",
]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_graph`."""

    num_nodes: int
    num_edges: int
    num_sinks: int
    num_sources: int
    num_isolated: int
    num_keywordless: int
    strongly_connected: bool
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no warnings were produced."""
        return not self.warnings


def reachable_from(graph: SpatialKeywordGraph, source: int) -> set[int]:
    """Set of nodes reachable from *source* by directed edges (BFS)."""
    seen = {source}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        for v, _obj, _bud in graph.out_edges(u):
            if v not in seen:
                seen.add(v)
                frontier.append(v)
    return seen


def is_strongly_connected(graph: SpatialKeywordGraph) -> bool:
    """Whether every node can reach every other node.

    Checked as: all nodes reachable from node 0 in the graph *and* in its
    reverse — the standard two-BFS test.
    """
    n = graph.num_nodes
    if n <= 1:
        return True
    if len(reachable_from(graph, 0)) != n:
        return False
    return len(reachable_from(graph.reverse(), 0)) == n


def strongly_connected_components(graph: SpatialKeywordGraph) -> list[list[int]]:
    """Strongly connected components via Kosaraju's two-pass algorithm.

    Iterative (explicit stacks), so it copes with graphs whose components
    are deeper than Python's recursion limit.
    """
    n = graph.num_nodes
    order: list[int] = []
    seen = [False] * n
    for start in range(n):
        if seen[start]:
            continue
        # First pass: record reverse-finish order.
        stack: list[tuple[int, int]] = [(start, 0)]
        seen[start] = True
        while stack:
            node, edge_pos = stack[-1]
            out = graph.out_edges(node)
            advanced = False
            while edge_pos < len(out):
                nxt = out[edge_pos][0]
                edge_pos += 1
                if not seen[nxt]:
                    stack[-1] = (node, edge_pos)
                    stack.append((nxt, 0))
                    seen[nxt] = True
                    advanced = True
                    break
            if not advanced:
                stack[-1] = (node, edge_pos)
                if edge_pos >= len(out):
                    order.append(node)
                    stack.pop()

    reverse_adj: list[list[int]] = [[] for _ in range(n)]
    for u in range(n):
        for v, _obj, _bud in graph.out_edges(u):
            reverse_adj[v].append(u)

    components: list[list[int]] = []
    assigned = [False] * n
    for node in reversed(order):
        if assigned[node]:
            continue
        component = [node]
        assigned[node] = True
        frontier = deque([node])
        while frontier:
            u = frontier.popleft()
            for v in reverse_adj[u]:
                if not assigned[v]:
                    assigned[v] = True
                    component.append(v)
                    frontier.append(v)
        components.append(component)
    return components


def largest_scc(graph: SpatialKeywordGraph) -> tuple[SpatialKeywordGraph, dict[int, int]]:
    """The subgraph induced by the largest strongly connected component.

    Used by the dataset builders so that benchmark queries are rarely
    trivially infeasible.  Returns the subgraph and the old->new mapping.
    """
    components = strongly_connected_components(graph)
    biggest = max(components, key=len)
    return graph.induced_subgraph(biggest)


def validate_graph(graph: SpatialKeywordGraph) -> ValidationReport:
    """Run structural sanity checks and return a report.

    Sinks (no out-edges) and unreachable regions are legal but usually
    indicate a broken dataset build, so they are reported as warnings
    rather than errors.
    """
    n = graph.num_nodes
    out_deg = [graph.out_degree(u) for u in range(n)]
    in_deg = [0] * n
    for u in range(n):
        for v, _obj, _bud in graph.out_edges(u):
            in_deg[v] += 1

    sinks = sum(1 for d in out_deg if d == 0)
    sources = sum(1 for d in in_deg if d == 0)
    isolated = sum(1 for u in range(n) if out_deg[u] == 0 and in_deg[u] == 0)
    keywordless = sum(1 for u in range(n) if not graph.node_keywords(u))
    strongly = is_strongly_connected(graph)

    warnings: list[str] = []
    if isolated:
        warnings.append(f"{isolated} isolated node(s)")
    if sinks:
        warnings.append(f"{sinks} sink node(s) cannot start any out-edge")
    if not strongly:
        warnings.append("graph is not strongly connected; some queries are infeasible")
    if keywordless == n:
        warnings.append("no node carries any keyword; every KOR query will fail")

    return ValidationReport(
        num_nodes=n,
        num_edges=graph.num_edges,
        num_sinks=sinks,
        num_sources=sources,
        num_isolated=isolated,
        num_keywordless=keywordless,
        strongly_connected=strongly,
        warnings=warnings,
    )
