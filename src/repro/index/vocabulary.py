"""Vocabulary statistics over node keyword sets.

Optimisation Strategy 2 of the paper exploits *infrequent* query keywords:
if the least frequent query keyword appears in fewer than a threshold
fraction of nodes (the paper suggests 1%), the few nodes containing it
become mandatory waypoints that prune labels aggressively.  This module
provides the document-frequency bookkeeping behind that strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import QueryError
from repro.graph.digraph import SpatialKeywordGraph

__all__ = ["Vocabulary", "TermStats"]


@dataclass(frozen=True)
class TermStats:
    """Statistics for one keyword."""

    keyword_id: int
    word: str
    document_frequency: int


class Vocabulary:
    """Document frequencies of every keyword in a graph.

    "Document" means *node*: ``df(t)`` is the number of nodes whose keyword
    set contains ``t``.
    """

    def __init__(self, graph: SpatialKeywordGraph) -> None:
        self._graph = graph
        counts: dict[int, int] = {}
        for u in range(graph.num_nodes):
            for kid in graph.node_keywords(u):
                counts[kid] = counts.get(kid, 0) + 1
        self._df = counts
        self._num_nodes = graph.num_nodes

    @property
    def num_nodes(self) -> int:
        """Number of documents (nodes) the statistics cover."""
        return self._num_nodes

    def document_frequency(self, keyword_id: int) -> int:
        """Number of nodes containing *keyword_id* (0 when absent)."""
        return self._df.get(keyword_id, 0)

    def relative_frequency(self, keyword_id: int) -> float:
        """``df / num_nodes`` — the fraction used by Strategy 2's threshold."""
        if self._num_nodes == 0:
            return 0.0
        return self.document_frequency(keyword_id) / self._num_nodes

    def is_infrequent(self, keyword_id: int, threshold: float = 0.01) -> bool:
        """Whether the keyword appears in fewer than ``threshold`` of nodes."""
        df = self.document_frequency(keyword_id)
        return 0 < df < max(1.0, threshold * self._num_nodes)

    def least_frequent(self, keyword_ids: list[int]) -> int:
        """The rarest of *keyword_ids* (ties broken by id for determinism)."""
        if not keyword_ids:
            raise QueryError("least_frequent() requires at least one keyword")
        return min(keyword_ids, key=lambda k: (self.document_frequency(k), k))

    def stats(self, keyword_id: int) -> TermStats:
        """Full statistics record for one keyword."""
        return TermStats(
            keyword_id=keyword_id,
            word=self._graph.keyword_table.word_of(keyword_id),
            document_frequency=self.document_frequency(keyword_id),
        )

    def __len__(self) -> int:
        return len(self._df)
