"""An LRU buffer pool over a :class:`~repro.index.pages.PageStore`.

The B+-tree never touches the page store directly; it reads and writes
through this pool, which caches hot pages, tracks dirty ones and writes
them back on eviction or flush — the standard database discipline.  Hit
and miss counters feed the index ablation benchmark.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.exceptions import StorageError
from repro.index.pages import PageStore

__all__ = ["BufferPool", "BufferStats"]


@dataclass
class BufferStats:
    """Counters exposed for benchmarks and tests."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of page requests served from memory."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferPool:
    """Fixed-capacity LRU cache of page payloads with write-back."""

    def __init__(self, store: PageStore, capacity: int = 64) -> None:
        if capacity < 1:
            raise StorageError(f"buffer pool capacity must be >= 1, got {capacity}")
        self._store = store
        self._capacity = capacity
        self._pages: OrderedDict[int, bytearray] = OrderedDict()
        self._dirty: set[int] = set()
        self.stats = BufferStats()

    # ------------------------------------------------------------------
    @property
    def store(self) -> PageStore:
        """The underlying page store."""
        return self._store

    @property
    def capacity(self) -> int:
        """Maximum number of cached pages."""
        return self._capacity

    def allocate(self) -> int:
        """Allocate a fresh page and cache it as dirty-empty."""
        page_id = self._store.allocate()
        self._insert(page_id, bytearray())
        self._dirty.add(page_id)
        return page_id

    def get(self, page_id: int) -> bytes:
        """Read a page payload through the cache."""
        cached = self._pages.get(page_id)
        if cached is not None:
            self.stats.hits += 1
            self._pages.move_to_end(page_id)
            return bytes(cached)
        self.stats.misses += 1
        payload = self._store.read_page(page_id)
        self._insert(page_id, bytearray(payload))
        return payload

    def put(self, page_id: int, payload: bytes) -> None:
        """Replace a page payload (write-back on eviction/flush)."""
        if len(payload) > self._store.payload_capacity:
            raise StorageError(
                f"payload of {len(payload)} bytes exceeds page capacity "
                f"{self._store.payload_capacity}"
            )
        self._insert(page_id, bytearray(payload))
        self._dirty.add(page_id)

    def flush(self) -> None:
        """Write every dirty page back to the store."""
        for page_id in sorted(self._dirty):
            payload = self._pages.get(page_id)
            if payload is None:  # pragma: no cover - dirty pages stay cached
                continue
            self._store.write_page(page_id, bytes(payload))
            self.stats.writebacks += 1
        self._dirty.clear()
        self._store.flush()

    # ------------------------------------------------------------------
    def _insert(self, page_id: int, payload: bytearray) -> None:
        if page_id in self._pages:
            self._pages[page_id] = payload
            self._pages.move_to_end(page_id)
            return
        while len(self._pages) >= self._capacity:
            victim_id, victim = self._pages.popitem(last=False)
            self.stats.evictions += 1
            if victim_id in self._dirty:
                self._store.write_page(victim_id, bytes(victim))
                self._dirty.discard(victim_id)
                self.stats.writebacks += 1
        self._pages[page_id] = payload
