"""Inverted-file substrate (paper Section 3.1): vocabulary + posting lists.

Two interchangeable realisations:

* :class:`repro.index.inverted.InvertedIndex` — in-memory (default).
* :class:`repro.index.diskindex.DiskInvertedIndex` — the paper's
  disk-resident B+-tree inverted file, built on the page/buffer-pool stack.
"""

from repro.index.inverted import InvertedIndex
from repro.index.vocabulary import TermStats, Vocabulary

__all__ = ["InvertedIndex", "TermStats", "Vocabulary"]
