"""A disk-resident B+-tree over the buffer pool.

Variable-length byte keys and values; leaves are chained for range scans;
splits trigger on *serialized size* (pages hold as many entries as fit),
which is how real engines handle variable-length keys.  The tree backs
the paper's disk-resident inverted file (Section 3.1): terms are keys and
values point at posting-list page chains.

Page layout — meta page (page 0)::

    magic "KORB" | root page id (i32)

Leaf node::

    type 0x01 | next leaf (i32, -1 = none) | count (u16)
    count * [ key len (u16) | key | value len (u16) | value ]

Internal node::

    type 0x02 | count (u16) | child_0 (i32)
    count * [ key len (u16) | key | child (i32) ]

Deletion is *lazy* (the entry is removed from its leaf; underfull pages
are not merged), the same trade-off SQLite makes without ``VACUUM`` —
lookups stay correct and the paper's workload never deletes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import StorageError
from repro.index.buffer import BufferPool

__all__ = ["BPlusTree"]

_MAGIC = b"KORB"
_LEAF = 0x01
_INTERNAL = 0x02
_I32 = struct.Struct("<i")
_U16 = struct.Struct("<H")


@dataclass
class _Leaf:
    next_leaf: int
    keys: list[bytes]
    values: list[bytes]

    def serialize(self) -> bytes:
        parts = [bytes([_LEAF]), _I32.pack(self.next_leaf), _U16.pack(len(self.keys))]
        for key, value in zip(self.keys, self.values):
            parts.append(_U16.pack(len(key)))
            parts.append(key)
            parts.append(_U16.pack(len(value)))
            parts.append(value)
        return b"".join(parts)

    def size(self) -> int:
        return 7 + sum(4 + len(k) + len(v) for k, v in zip(self.keys, self.values))


@dataclass
class _Internal:
    children: list[int]  # len(children) == len(keys) + 1
    keys: list[bytes]

    def serialize(self) -> bytes:
        parts = [bytes([_INTERNAL]), _U16.pack(len(self.keys)), _I32.pack(self.children[0])]
        for key, child in zip(self.keys, self.children[1:]):
            parts.append(_U16.pack(len(key)))
            parts.append(key)
            parts.append(_I32.pack(child))
        return b"".join(parts)

    def size(self) -> int:
        return 7 + sum(6 + len(k) for k in self.keys)


class BPlusTree:
    """Ordered byte-key -> byte-value map stored in pages."""

    def __init__(self, pool: BufferPool) -> None:
        self._pool = pool
        if pool.store.num_pages == 0:
            meta = pool.allocate()  # page 0
            assert meta == 0
            root = pool.allocate()
            self._root = root
            self._write_node(root, _Leaf(next_leaf=-1, keys=[], values=[]))
            self._write_meta()
        else:
            payload = pool.get(0)
            if payload[:4] != _MAGIC:
                raise StorageError("page 0 does not contain a B+-tree meta block")
            (self._root,) = _I32.unpack_from(payload, 4)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def get(self, key: bytes) -> bytes | None:
        """Value stored under *key*, or ``None``."""
        leaf = self._descend_to_leaf(key)
        index = self._find(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return None

    def insert(self, key: bytes, value: bytes) -> None:
        """Upsert ``key -> value``."""
        if not key:
            raise StorageError("B+-tree keys must be non-empty")
        split = self._insert_into(self._root, key, value)
        if split is not None:
            promoted, right = split
            new_root = self._pool.allocate()
            self._write_node(
                new_root, _Internal(children=[self._root, right], keys=[promoted])
            )
            self._root = new_root
            self._write_meta()

    def delete(self, key: bytes) -> bool:
        """Lazily remove *key*; returns whether it was present."""
        path = self._path_to_leaf(key)
        page_id, leaf = path[-1]
        index = self._find(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        del leaf.keys[index]
        del leaf.values[index]
        self._write_node(page_id, leaf)
        return True

    def range(self, start: bytes | None = None, end: bytes | None = None) -> Iterator[tuple[bytes, bytes]]:
        """Yield ``(key, value)`` with ``start <= key < end``, in key order."""
        leaf = self._descend_to_leaf(start if start is not None else b"\x00")
        index = 0 if start is None else self._find(leaf.keys, start)
        while True:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if end is not None and key >= end:
                    return
                yield key, leaf.values[index]
                index += 1
            if leaf.next_leaf < 0:
                return
            leaf = self._read_node(leaf.next_leaf)
            if not isinstance(leaf, _Leaf):  # pragma: no cover - corruption guard
                raise StorageError("leaf chain points at an internal node")
            index = 0

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Every entry in key order."""
        return self.range()

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def flush(self) -> None:
        """Write every dirty page back through the buffer pool."""
        self._pool.flush()

    def depth(self) -> int:
        """Height of the tree (1 = a single leaf)."""
        depth, node_id = 1, self._root
        node = self._read_node(node_id)
        while isinstance(node, _Internal):
            depth += 1
            node = self._read_node(node.children[0])
        return depth

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _capacity(self) -> int:
        return self._pool.store.payload_capacity

    def _write_meta(self) -> None:
        self._pool.put(0, _MAGIC + _I32.pack(self._root))

    def _write_node(self, page_id: int, node: _Leaf | _Internal) -> None:
        self._pool.put(page_id, node.serialize())

    def _read_node(self, page_id: int) -> "_Leaf | _Internal":
        payload = self._pool.get(page_id)
        if not payload:
            raise StorageError(f"page {page_id} is empty, expected a node")
        kind = payload[0]
        if kind == _LEAF:
            (next_leaf,) = _I32.unpack_from(payload, 1)
            (count,) = _U16.unpack_from(payload, 5)
            offset = 7
            keys: list[bytes] = []
            values: list[bytes] = []
            for _ in range(count):
                (klen,) = _U16.unpack_from(payload, offset)
                offset += 2
                keys.append(payload[offset : offset + klen])
                offset += klen
                (vlen,) = _U16.unpack_from(payload, offset)
                offset += 2
                values.append(payload[offset : offset + vlen])
                offset += vlen
            return _Leaf(next_leaf=next_leaf, keys=keys, values=values)
        if kind == _INTERNAL:
            (count,) = _U16.unpack_from(payload, 1)
            (first_child,) = _I32.unpack_from(payload, 3)
            offset = 7
            keys = []
            children = [first_child]
            for _ in range(count):
                (klen,) = _U16.unpack_from(payload, offset)
                offset += 2
                keys.append(payload[offset : offset + klen])
                offset += klen
                (child,) = _I32.unpack_from(payload, offset)
                offset += 4
                children.append(child)
            return _Internal(children=children, keys=keys)
        raise StorageError(f"page {page_id} has unknown node type {kind:#x}")

    @staticmethod
    def _find(keys: list[bytes], key: bytes) -> int:
        """Leftmost index with ``keys[index] >= key`` (binary search)."""
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _descend_to_leaf(self, key: bytes) -> _Leaf:
        node = self._read_node(self._root)
        while isinstance(node, _Internal):
            node = self._read_node(self._child_for(node, key))
        return node

    def _path_to_leaf(self, key: bytes) -> list[tuple[int, "_Leaf | _Internal"]]:
        path: list[tuple[int, _Leaf | _Internal]] = []
        page_id = self._root
        node = self._read_node(page_id)
        path.append((page_id, node))
        while isinstance(node, _Internal):
            page_id = self._child_for(node, key)
            node = self._read_node(page_id)
            path.append((page_id, node))
        return path

    @staticmethod
    def _child_for(node: _Internal, key: bytes) -> int:
        index = 0
        while index < len(node.keys) and key >= node.keys[index]:
            index += 1
        return node.children[index]

    def _insert_into(self, page_id: int, key: bytes, value: bytes) -> tuple[bytes, int] | None:
        """Recursive insert; returns ``(promoted_key, new_right_page)`` on split."""
        node = self._read_node(page_id)
        if isinstance(node, _Leaf):
            index = self._find(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
            else:
                node.keys.insert(index, key)
                node.values.insert(index, value)
            if node.size() <= self._capacity():
                self._write_node(page_id, node)
                return None
            return self._split_leaf(page_id, node)

        child_index = 0
        while child_index < len(node.keys) and key >= node.keys[child_index]:
            child_index += 1
        split = self._insert_into(node.children[child_index], key, value)
        if split is None:
            return None
        promoted, right = split
        node.keys.insert(child_index, promoted)
        node.children.insert(child_index + 1, right)
        if node.size() <= self._capacity():
            self._write_node(page_id, node)
            return None
        return self._split_internal(page_id, node)

    def _split_leaf(self, page_id: int, node: _Leaf) -> tuple[bytes, int]:
        middle = len(node.keys) // 2
        right_page = self._pool.allocate()
        right = _Leaf(
            next_leaf=node.next_leaf,
            keys=node.keys[middle:],
            values=node.values[middle:],
        )
        left = _Leaf(next_leaf=right_page, keys=node.keys[:middle], values=node.values[:middle])
        if left.size() > self._capacity() or right.size() > self._capacity():
            raise StorageError(
                "a single entry exceeds the page capacity; "
                "use larger pages or shorter keys/values"
            )
        self._write_node(right_page, right)
        self._write_node(page_id, left)
        return right.keys[0], right_page

    def _split_internal(self, page_id: int, node: _Internal) -> tuple[bytes, int]:
        middle = len(node.keys) // 2
        promoted = node.keys[middle]
        right_page = self._pool.allocate()
        right = _Internal(
            children=node.children[middle + 1 :],
            keys=node.keys[middle + 1 :],
        )
        left = _Internal(children=node.children[: middle + 1], keys=node.keys[:middle])
        if left.size() > self._capacity() or right.size() > self._capacity():
            raise StorageError(
                "a single separator exceeds the page capacity; "
                "use larger pages or shorter keys"
            )
        self._write_node(right_page, right)
        self._write_node(page_id, left)
        return promoted, right_page
