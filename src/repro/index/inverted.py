"""In-memory inverted file over node keywords.

The paper's index (Section 3.1) has two components: a vocabulary and one
posting list per word holding the ids of the nodes whose description
contains the word.  The paper makes it disk resident via a B+-tree; that
variant lives in :mod:`repro.index.diskindex` with an identical query
interface, so the two are interchangeable (and tested for equivalence).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.exceptions import QueryError
from repro.graph.digraph import SpatialKeywordGraph
from repro.index.vocabulary import Vocabulary

__all__ = ["InvertedIndex"]

_EMPTY = np.empty(0, dtype=np.int64)


class InvertedIndex:
    """Keyword-id -> sorted node-id posting lists, held in memory."""

    def __init__(
        self, postings: dict[int, np.ndarray], vocabulary: Vocabulary
    ) -> None:
        self._postings = postings
        self._vocabulary = vocabulary

    @classmethod
    def from_graph(cls, graph: SpatialKeywordGraph) -> "InvertedIndex":
        """Build the index by one pass over the graph's nodes."""
        lists: dict[int, list[int]] = {}
        for u in range(graph.num_nodes):
            for kid in graph.node_keywords(u):
                lists.setdefault(kid, []).append(u)
        postings = {
            kid: np.asarray(nodes, dtype=np.int64) for kid, nodes in lists.items()
        }
        return cls(postings, Vocabulary(graph))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def vocabulary(self) -> Vocabulary:
        """Document-frequency statistics backing Strategy 2."""
        return self._vocabulary

    def postings(self, keyword_id: int) -> np.ndarray:
        """Sorted node ids containing *keyword_id* (empty when absent)."""
        return self._postings.get(keyword_id, _EMPTY)

    def document_frequency(self, keyword_id: int) -> int:
        """Posting-list length of *keyword_id*."""
        return len(self.postings(keyword_id))

    def nodes_covering_any(self, keyword_ids: Iterable[int]) -> np.ndarray:
        """Union of posting lists — the greedy algorithm's ``nodeSet``."""
        lists = [self.postings(kid) for kid in keyword_ids]
        lists = [lst for lst in lists if len(lst)]
        if not lists:
            return _EMPTY
        return np.unique(np.concatenate(lists))

    def nodes_covering_all(self, keyword_ids: Iterable[int]) -> np.ndarray:
        """Intersection of posting lists (nodes covering every keyword)."""
        ids = list(keyword_ids)
        if not ids:
            raise QueryError("nodes_covering_all() requires at least one keyword")
        result = self.postings(ids[0])
        for kid in ids[1:]:
            if len(result) == 0:
                break
            result = np.intersect1d(result, self.postings(kid), assume_unique=True)
        return result

    def candidate_sets(self, keyword_ids: Iterable[int]) -> dict[int, np.ndarray]:
        """Posting list per keyword id, fetched once per distinct id.

        The shared candidate-set API of both index back ends: a batch of
        queries collects the union of its keyword ids, resolves them in a
        single call, and every query binding then reuses the returned map
        instead of hitting the index again (``QueryBinding.bind``'s
        ``candidates`` argument).  Absent keywords map to empty arrays so
        callers can distinguish "looked up, nowhere" from "not looked up".
        """
        return {kid: self.postings(kid) for kid in dict.fromkeys(keyword_ids)}

    def __len__(self) -> int:
        return len(self._postings)
