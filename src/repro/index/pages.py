"""Fixed-size page storage — the bottom of the disk-index stack.

The paper keeps its inverted file "disk resident" behind a B+-tree; this
module provides the storage layer: a file (or an in-memory buffer, for
tests) divided into fixed-size pages.  Every page carries a small header
with a CRC32 checksum so torn or corrupted pages are detected on read —
the failure-injection tests exercise exactly that.

Layout of each page::

    bytes 0..3   CRC32 of payload
    bytes 4..7   payload length (uint32)
    bytes 8..    payload (up to page_size - 8 bytes)
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path

from repro.exceptions import StorageError

__all__ = ["PageStore", "DEFAULT_PAGE_SIZE", "PAGE_HEADER_SIZE"]

DEFAULT_PAGE_SIZE = 4096
PAGE_HEADER_SIZE = 8
_HEADER = struct.Struct("<II")


class PageStore:
    """Allocate / read / write fixed-size pages on a file or in memory.

    Pass ``path=None`` for a memory-backed store (unit tests, ephemeral
    indexes); otherwise the store owns an on-disk file.
    """

    def __init__(self, path: str | Path | None = None, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size <= PAGE_HEADER_SIZE + 16:
            raise StorageError(f"page_size {page_size} is too small")
        self._page_size = page_size
        self._path = Path(path) if path is not None else None
        self._file = None
        self._memory: list[bytes] | None = None
        self._num_pages = 0
        self._closed = False
        if self._path is None:
            self._memory = []
        else:
            # "w+b" truncates: a store always starts empty; reopening an
            # existing index goes through :meth:`open`.
            self._file = open(self._path, "w+b")

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: str | Path, page_size: int = DEFAULT_PAGE_SIZE) -> "PageStore":
        """Open an existing on-disk store for reading and writing."""
        path = Path(path)
        if not path.exists():
            raise StorageError(f"page store {path} does not exist")
        store = cls.__new__(cls)
        store._page_size = page_size
        store._path = path
        store._memory = None
        store._file = open(path, "r+b")
        store._closed = False
        size = path.stat().st_size
        if size % page_size:
            raise StorageError(
                f"{path} has size {size}, not a multiple of page_size {page_size}"
            )
        store._num_pages = size // page_size
        return store

    # ------------------------------------------------------------------
    @property
    def page_size(self) -> int:
        """Raw page size, including the 8-byte header."""
        return self._page_size

    @property
    def payload_capacity(self) -> int:
        """Usable bytes per page."""
        return self._page_size - PAGE_HEADER_SIZE

    @property
    def num_pages(self) -> int:
        """Number of allocated pages."""
        return self._num_pages

    def allocate(self) -> int:
        """Append an empty page; returns its id."""
        self._check_open()
        page_id = self._num_pages
        empty = self._encode(b"")
        if self._memory is not None:
            self._memory.append(empty)
        else:
            self._file.seek(page_id * self._page_size)
            self._file.write(empty)
        self._num_pages += 1
        return page_id

    def write_page(self, page_id: int, payload: bytes) -> None:
        """Replace the payload of *page_id* (checksummed)."""
        self._check_open()
        self._check_id(page_id)
        if len(payload) > self.payload_capacity:
            raise StorageError(
                f"payload of {len(payload)} bytes exceeds capacity {self.payload_capacity}"
            )
        raw = self._encode(payload)
        if self._memory is not None:
            self._memory[page_id] = raw
        else:
            self._file.seek(page_id * self._page_size)
            self._file.write(raw)

    def read_page(self, page_id: int) -> bytes:
        """Return the payload of *page_id*, verifying its checksum."""
        self._check_open()
        self._check_id(page_id)
        if self._memory is not None:
            raw = self._memory[page_id]
        else:
            self._file.seek(page_id * self._page_size)
            raw = self._file.read(self._page_size)
        if len(raw) < PAGE_HEADER_SIZE:
            raise StorageError(f"page {page_id} is truncated")
        crc, length = _HEADER.unpack_from(raw)
        if length > self.payload_capacity:
            raise StorageError(f"page {page_id} header declares invalid length {length}")
        payload = raw[PAGE_HEADER_SIZE : PAGE_HEADER_SIZE + length]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise StorageError(f"page {page_id} failed checksum verification")
        return payload

    def flush(self) -> None:
        """Force file contents to the OS (no-op for memory stores)."""
        if self._file is not None and not self._closed:
            self._file.flush()

    def close(self) -> None:
        """Flush and release the backing file."""
        if self._file is not None and not self._closed:
            self._file.flush()
            self._file.close()
        self._closed = True

    def __enter__(self) -> "PageStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def corrupt_page_for_testing(self, page_id: int, offset: int = 0) -> None:
        """Flip a payload byte — used by failure-injection tests only."""
        self._check_open()
        self._check_id(page_id)
        position = PAGE_HEADER_SIZE + offset
        if self._memory is not None:
            raw = bytearray(self._memory[page_id])
            raw[position] ^= 0xFF
            self._memory[page_id] = bytes(raw)
        else:
            self._file.seek(page_id * self._page_size + position)
            byte = self._file.read(1)
            self._file.seek(page_id * self._page_size + position)
            self._file.write(bytes([byte[0] ^ 0xFF]))

    # ------------------------------------------------------------------
    def _encode(self, payload: bytes) -> bytes:
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        raw = _HEADER.pack(crc, len(payload)) + payload
        return raw.ljust(self._page_size, b"\x00")

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("page store is closed")

    def _check_id(self, page_id: int) -> None:
        if not (0 <= page_id < self._num_pages):
            raise StorageError(f"page id {page_id} outside 0..{self._num_pages - 1}")
