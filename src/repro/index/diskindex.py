"""The paper's disk-resident inverted file (Section 3.1).

Terms live in a B+-tree; each term's value points at a chain of pages
holding its posting list, stored *delta-compressed with varints* — the
classic inverted-file encoding (sorted node ids, store gaps, 7 bits per
byte with a continuation bit).  The query interface matches
:class:`repro.index.inverted.InvertedIndex`, so the two back ends are
interchangeable and tested for equivalence.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.exceptions import StorageError
from repro.graph.digraph import SpatialKeywordGraph
from repro.index.btree import BPlusTree
from repro.index.buffer import BufferPool
from repro.index.pages import DEFAULT_PAGE_SIZE, PageStore
from repro.index.vocabulary import Vocabulary

__all__ = ["DiskInvertedIndex", "encode_postings", "decode_postings"]

_ENTRY = struct.Struct("<iiI")  # head page, -, count  (second field reserved)
_CHAIN_HEADER = struct.Struct("<i")  # next page id (-1 = end)

_EMPTY = np.empty(0, dtype=np.int64)


def encode_postings(node_ids: np.ndarray) -> bytes:
    """Delta + varint encode a sorted array of node ids."""
    out = bytearray()
    previous = 0
    for node in node_ids:
        gap = int(node) - previous
        if gap < 0:
            raise StorageError("posting lists must be sorted ascending")
        previous = int(node)
        while True:
            byte = gap & 0x7F
            gap >>= 7
            if gap:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def decode_postings(blob: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`encode_postings`."""
    values = np.empty(count, dtype=np.int64)
    position = 0
    current = 0
    for i in range(count):
        gap = 0
        shift = 0
        while True:
            if position >= len(blob):
                raise StorageError("posting blob truncated")
            byte = blob[position]
            position += 1
            gap |= (byte & 0x7F) << shift
            shift += 7
            if not byte & 0x80:
                break
        current += gap
        values[i] = current
    return values


class DiskInvertedIndex:
    """Disk-resident keyword-id -> posting-list index behind a B+-tree."""

    def __init__(self, pool: BufferPool, vocabulary: Vocabulary) -> None:
        self._pool = pool
        self._tree = BPlusTree(pool)
        self._vocabulary = vocabulary

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: SpatialKeywordGraph,
        path: str | Path | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_capacity: int = 64,
    ) -> "DiskInvertedIndex":
        """Build the index for *graph* (on disk at *path*, or in memory)."""
        store = PageStore(path, page_size=page_size)
        pool = BufferPool(store, capacity=buffer_capacity)
        index = cls(pool, Vocabulary(graph))

        lists: dict[int, list[int]] = {}
        for node in range(graph.num_nodes):
            for kid in graph.node_keywords(node):
                lists.setdefault(kid, []).append(node)
        for kid in sorted(lists):
            node_ids = np.asarray(sorted(lists[kid]), dtype=np.int64)
            index._store_postings(kid, node_ids)
        pool.flush()
        return index

    def _store_postings(self, keyword_id: int, node_ids: np.ndarray) -> None:
        blob = encode_postings(node_ids)
        capacity = self._pool.store.payload_capacity - _CHAIN_HEADER.size
        chunks = [blob[i : i + capacity] for i in range(0, len(blob), capacity)] or [b""]
        # Allocate the chain back to front so each page knows its successor.
        next_page = -1
        for chunk in reversed(chunks):
            page_id = self._pool.allocate()
            self._pool.put(page_id, _CHAIN_HEADER.pack(next_page) + chunk)
            next_page = page_id
        key = _term_key(keyword_id)
        self._tree.insert(key, _ENTRY.pack(next_page, 0, len(node_ids)))

    # ------------------------------------------------------------------
    # the InvertedIndex-compatible query interface
    # ------------------------------------------------------------------
    @property
    def vocabulary(self) -> Vocabulary:
        """Document-frequency statistics (Strategy 2)."""
        return self._vocabulary

    @property
    def buffer_pool(self) -> BufferPool:
        """The pool, exposed so benchmarks can read hit-rate statistics."""
        return self._pool

    def postings(self, keyword_id: int) -> np.ndarray:
        """Sorted node ids containing *keyword_id* (empty when absent)."""
        entry = self._tree.get(_term_key(keyword_id))
        if entry is None:
            return _EMPTY
        head, _reserved, count = _ENTRY.unpack(entry)
        parts: list[bytes] = []
        page_id = head
        while page_id >= 0:
            payload = self._pool.get(page_id)
            (next_page,) = _CHAIN_HEADER.unpack_from(payload)
            parts.append(payload[_CHAIN_HEADER.size :])
            page_id = next_page
        return decode_postings(b"".join(parts), count)

    def document_frequency(self, keyword_id: int) -> int:
        """Posting-list length without decoding the chain."""
        entry = self._tree.get(_term_key(keyword_id))
        if entry is None:
            return 0
        _head, _reserved, count = _ENTRY.unpack(entry)
        return count

    def nodes_covering_any(self, keyword_ids: Iterable[int]) -> np.ndarray:
        """Union of posting lists."""
        lists = [self.postings(kid) for kid in keyword_ids]
        lists = [lst for lst in lists if len(lst)]
        if not lists:
            return _EMPTY
        return np.unique(np.concatenate(lists))

    def nodes_covering_all(self, keyword_ids: Iterable[int]) -> np.ndarray:
        """Intersection of posting lists."""
        ids = list(keyword_ids)
        if not ids:
            raise StorageError("nodes_covering_all() requires at least one keyword")
        result = self.postings(ids[0])
        for kid in ids[1:]:
            if len(result) == 0:
                break
            result = np.intersect1d(result, self.postings(kid), assume_unique=True)
        return result

    def candidate_sets(self, keyword_ids: Iterable[int]) -> dict[int, np.ndarray]:
        """Posting list per keyword id, each chain decoded exactly once.

        Mirror of :meth:`repro.index.inverted.InvertedIndex.candidate_sets`
        — the shared candidate-set API the serving layer batches through.
        On this back end the batching matters most: each distinct keyword
        costs one B+-tree descent plus a page-chain decode, so resolving
        a batch's keyword union up front keeps the per-query fan-out from
        touching the (single-threaded) buffer pool at all.
        """
        return {kid: self.postings(kid) for kid in dict.fromkeys(keyword_ids)}

    def flush(self) -> None:
        """Persist all dirty pages."""
        self._pool.flush()

    def close(self) -> None:
        """Flush and close the backing store."""
        self._pool.flush()
        self._pool.store.close()


def _term_key(keyword_id: int) -> bytes:
    """Fixed-width big-endian key keeps B+-tree order == numeric order."""
    return struct.pack(">I", keyword_id)
