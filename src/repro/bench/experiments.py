"""One function per figure of the paper's evaluation (Section 4).

Every function returns an :class:`ExperimentResult` holding the x-axis,
the per-algorithm series and provenance notes; ``result.to_table()``
renders the same rows the paper plots.  Heavy work (running an algorithm
over a query set) goes through a module-level cell cache so that figures
sharing measurements (e.g. Figure 4 and Figure 10 both consume the
keyword-sweep grid) never recompute them.

Conventions carried over from the paper:

* default parameters ``eps = 0.5``, ``beta = 1.2``, ``alpha = 0.5``;
* relative ratios are measured against OSScaling at ``eps = 0.1``
  (Section 4.2.2's protocol — the exact optimum is intractable);
* Figure 12/13's x-axis follows the paper's *experimental* reading of
  alpha (larger alpha = more budget-driven = fewer failures), which
  contradicts Equation 1 as printed; we map ``alpha_figure =
  1 - alpha_eq1`` and document the discrepancy in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.harness import (
    RunSummary,
    failure_percentage,
    relative_ratio,
    run_query_set,
)
from repro.bench.reporting import render_table, save_json
from repro.bench.workloads import (
    FLICKR_DELTAS,
    KEYWORD_COUNTS,
    ROAD_DELTAS,
    Workload,
    flickr_workload,
    road_default_size,
    road_sizes,
    road_workload,
)

__all__ = [
    "ExperimentResult",
    "fig04_runtime_vs_keywords",
    "fig05_runtime_vs_budget",
    "fig06_runtime_vs_epsilon",
    "fig07_ratio_vs_epsilon",
    "fig08_runtime_vs_beta",
    "fig09_ratio_vs_beta",
    "fig10_ratio_vs_keywords",
    "fig11_ratio_vs_budget",
    "fig12_ratio_vs_alpha",
    "fig13_failure_vs_alpha",
    "fig14_runtime_equal_bound",
    "fig15_ratio_equal_bound",
    "fig16_topk_runtime",
    "fig17_scalability",
    "fig18_road_runtime_vs_keywords",
    "fig19_road_runtime_vs_budget",
    "ablation_opt_strategies",
    "ablation_epsilon_labels",
    "kernel_throughput",
    "sharded_wave_throughput",
    "service_throughput",
    "sharded_throughput",
    "border_heavy_throughput",
    "async_throughput",
    "sharded_memory",
    "update_latency",
    "all_experiments",
    "clear_cell_cache",
]

#: Default knobs shared across experiments (paper Section 4.2.1).
DEFAULT_EPSILON = 0.5
DEFAULT_BETA = 1.2
DEFAULT_ALPHA = 0.5
#: Ratio base (Section 4.2.2): OSScaling at eps = 0.1.
BASE_EPSILON = 0.1

#: The four algorithms of every runtime figure, in the paper's legend order.
RUNTIME_ALGORITHMS = ("OSScaling", "BucketBound", "Greedy-2", "Greedy-1")


@dataclass
class ExperimentResult:
    """A reproduced figure: x-axis plus one series per algorithm."""

    figure: str
    title: str
    x_name: str
    xs: list
    series: dict[str, list[float]]
    y_name: str = "value"
    notes: str = ""
    meta: dict = field(default_factory=dict)

    def to_table(self) -> str:
        """Fixed-width text table mirroring the paper's plotted series."""
        return render_table(
            title=f"{self.figure}: {self.title}",
            x_name=self.x_name,
            xs=self.xs,
            series=self.series,
            y_name=self.y_name,
            notes=self.notes,
        )

    def save(self, directory: str | Path) -> Path:
        """Write ``<figure>.json`` and ``<figure>.txt`` under *directory*."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "figure": self.figure,
            "title": self.title,
            "x_name": self.x_name,
            "xs": self.xs,
            "y_name": self.y_name,
            "series": self.series,
            "notes": self.notes,
            "meta": self.meta,
        }
        save_json(directory / f"{self.figure}.json", payload)
        (directory / f"{self.figure}.txt").write_text(self.to_table())
        return directory / f"{self.figure}.json"


# ----------------------------------------------------------------------
# measurement cells (cached)
# ----------------------------------------------------------------------

_CELLS: dict[tuple, RunSummary] = {}


def clear_cell_cache() -> None:
    """Forget every cached measurement (use after changing env knobs)."""
    _CELLS.clear()


def cell_summary(
    workload: Workload,
    algorithm: str,
    num_keywords: int,
    delta: float,
    **params,
) -> RunSummary:
    """Run (or recall) one algorithm over one cached query set."""
    key = (
        workload.name,
        algorithm,
        num_keywords,
        round(delta, 6),
        tuple(sorted(params.items())),
    )
    cached = _CELLS.get(key)
    if cached is None:
        queries = workload.query_set(num_keywords, delta)
        cached = run_query_set(workload.engine, queries, algorithm, **params)
        _CELLS[key] = cached
    return cached


def base_cell(workload: Workload, num_keywords: int, delta: float) -> RunSummary:
    """The ratio base: OSScaling at eps = 0.1 on the same query set."""
    return cell_summary(workload, "osscaling", num_keywords, delta, epsilon=BASE_EPSILON)


def named_cell(
    workload: Workload, name: str, num_keywords: int, delta: float
) -> RunSummary:
    """Dispatch a paper legend name to an engine call with default knobs."""
    if name == "OSScaling":
        return cell_summary(workload, "osscaling", num_keywords, delta, epsilon=DEFAULT_EPSILON)
    if name == "BucketBound":
        return cell_summary(
            workload,
            "bucketbound",
            num_keywords,
            delta,
            epsilon=DEFAULT_EPSILON,
            beta=DEFAULT_BETA,
        )
    if name == "Greedy-1":
        return cell_summary(workload, "greedy", num_keywords, delta, alpha=DEFAULT_ALPHA)
    if name == "Greedy-2":
        return cell_summary(workload, "greedy2", num_keywords, delta, alpha=DEFAULT_ALPHA)
    raise ValueError(f"unknown algorithm name {name!r}")


def _mean(values: list[float]) -> float:
    finite = [v for v in values if not math.isnan(v)]
    return sum(finite) / len(finite) if finite else float("nan")


# ----------------------------------------------------------------------
# Figures 4-5: runtime on the Flickr graph
# ----------------------------------------------------------------------

def fig04_runtime_vs_keywords(workload: Workload | None = None) -> ExperimentResult:
    """Figure 4: runtime vs #keywords, averaged over the Delta sweep."""
    workload = workload or flickr_workload()
    series = {
        name: [
            _mean(
                [
                    named_cell(workload, name, kw, delta).mean_runtime_ms
                    for delta in FLICKR_DELTAS
                ]
            )
            for kw in KEYWORD_COUNTS
        ]
        for name in RUNTIME_ALGORITHMS
    }
    return ExperimentResult(
        figure="fig04",
        title="Runtime (Flickr) vs number of query keywords",
        x_name="number of query keywords",
        xs=list(KEYWORD_COUNTS),
        series=series,
        y_name="runtime (ms)",
        notes=f"each point averages over Delta in {FLICKR_DELTAS} km, "
        f"dataset {workload.name}",
    )


def fig05_runtime_vs_budget(workload: Workload | None = None) -> ExperimentResult:
    """Figure 5: runtime vs Delta, averaged over the keyword sweep."""
    workload = workload or flickr_workload()
    series = {
        name: [
            _mean(
                [
                    named_cell(workload, name, kw, delta).mean_runtime_ms
                    for kw in KEYWORD_COUNTS
                ]
            )
            for delta in FLICKR_DELTAS
        ]
        for name in RUNTIME_ALGORITHMS
    }
    return ExperimentResult(
        figure="fig05",
        title="Runtime (Flickr) vs budget limit Delta",
        x_name="Delta (km)",
        xs=list(FLICKR_DELTAS),
        series=series,
        y_name="runtime (ms)",
        notes=f"each point averages over keyword counts {KEYWORD_COUNTS}, "
        f"dataset {workload.name}",
    )


# ----------------------------------------------------------------------
# Figures 6-7: the epsilon knob of OSScaling
# ----------------------------------------------------------------------

EPSILONS = (0.1, 0.3, 0.5, 0.7, 0.9)


def fig06_runtime_vs_epsilon(workload: Workload | None = None) -> ExperimentResult:
    """Figure 6: OSScaling runtime vs eps (Delta=6, 6 keywords)."""
    workload = workload or flickr_workload()
    runtimes = [
        cell_summary(workload, "osscaling", 6, 6.0, epsilon=eps).mean_runtime_ms
        for eps in EPSILONS
    ]
    return ExperimentResult(
        figure="fig06",
        title="OSScaling runtime vs epsilon",
        x_name="epsilon",
        xs=list(EPSILONS),
        series={"OSScaling": runtimes},
        y_name="runtime (ms)",
        notes="Delta = 6 km, 6 query keywords",
    )


def fig07_ratio_vs_epsilon(workload: Workload | None = None) -> ExperimentResult:
    """Figure 7: OSScaling relative ratio vs eps (base eps=0.1)."""
    workload = workload or flickr_workload()
    base = base_cell(workload, 6, 6.0)
    ratios = [
        relative_ratio(cell_summary(workload, "osscaling", 6, 6.0, epsilon=eps), base)
        for eps in EPSILONS
    ]
    return ExperimentResult(
        figure="fig07",
        title="OSScaling relative ratio vs epsilon",
        x_name="epsilon",
        xs=list(EPSILONS),
        series={"OSScaling": ratios},
        y_name="relative ratio",
        notes="base: OSScaling eps=0.1; Delta = 6 km, 6 query keywords",
    )


# ----------------------------------------------------------------------
# Figures 8-9: the beta knob of BucketBound
# ----------------------------------------------------------------------

BETAS = (1.2, 1.4, 1.6, 1.8, 2.0)


def fig08_runtime_vs_beta(workload: Workload | None = None) -> ExperimentResult:
    """Figure 8: BucketBound runtime vs beta (eps=0.5, Delta=6, 6 kw)."""
    workload = workload or flickr_workload()
    runtimes = [
        cell_summary(
            workload, "bucketbound", 6, 6.0, epsilon=DEFAULT_EPSILON, beta=beta
        ).mean_runtime_ms
        for beta in BETAS
    ]
    return ExperimentResult(
        figure="fig08",
        title="BucketBound runtime vs beta",
        x_name="beta",
        xs=list(BETAS),
        series={"BucketBound": runtimes},
        y_name="runtime (ms)",
        notes="eps = 0.5, Delta = 6 km, 6 query keywords",
    )


def fig09_ratio_vs_beta(workload: Workload | None = None) -> ExperimentResult:
    """Figure 9: BucketBound relative ratio vs beta (must stay < beta)."""
    workload = workload or flickr_workload()
    base = base_cell(workload, 6, 6.0)
    ratios = [
        relative_ratio(
            cell_summary(workload, "bucketbound", 6, 6.0, epsilon=DEFAULT_EPSILON, beta=beta),
            base,
        )
        for beta in BETAS
    ]
    return ExperimentResult(
        figure="fig09",
        title="BucketBound relative ratio vs beta",
        x_name="beta",
        xs=list(BETAS),
        series={"BucketBound": ratios},
        y_name="relative ratio",
        notes="base: OSScaling eps=0.1; eps = 0.5, Delta = 6 km, 6 query keywords",
    )


# ----------------------------------------------------------------------
# Figures 10-11: accuracy of the fast algorithms
# ----------------------------------------------------------------------

RATIO_ALGORITHMS = ("BucketBound", "Greedy-2", "Greedy-1")


def fig10_ratio_vs_keywords(workload: Workload | None = None) -> ExperimentResult:
    """Figure 10: relative ratio vs #keywords (Delta = 6 km)."""
    workload = workload or flickr_workload()
    series: dict[str, list[float]] = {name: [] for name in RATIO_ALGORITHMS}
    for kw in KEYWORD_COUNTS:
        base = base_cell(workload, kw, 6.0)
        for name in RATIO_ALGORITHMS:
            series[name].append(relative_ratio(named_cell(workload, name, kw, 6.0), base))
    return ExperimentResult(
        figure="fig10",
        title="Relative ratio vs number of query keywords",
        x_name="number of query keywords",
        xs=list(KEYWORD_COUNTS),
        series=series,
        y_name="relative ratio",
        notes="base: OSScaling eps=0.1; Delta = 6 km; greedy ratios measured "
        "on the queries each greedy solves (paper protocol)",
    )


def fig11_ratio_vs_budget(workload: Workload | None = None) -> ExperimentResult:
    """Figure 11: relative ratio vs Delta (6 keywords)."""
    workload = workload or flickr_workload()
    series: dict[str, list[float]] = {name: [] for name in RATIO_ALGORITHMS}
    for delta in FLICKR_DELTAS:
        base = base_cell(workload, 6, delta)
        for name in RATIO_ALGORITHMS:
            series[name].append(
                relative_ratio(named_cell(workload, name, 6, delta), base)
            )
    return ExperimentResult(
        figure="fig11",
        title="Relative ratio vs budget limit Delta",
        x_name="Delta (km)",
        xs=list(FLICKR_DELTAS),
        series=series,
        y_name="relative ratio",
        notes="base: OSScaling eps=0.1; 6 query keywords",
    )


# ----------------------------------------------------------------------
# Figures 12-13: the alpha knob of Greedy
# ----------------------------------------------------------------------

ALPHAS = (0.0, 0.25, 0.5, 0.75, 1.0)


def _alpha_cells(
    workload: Workload, figure_alpha: float
) -> tuple[list[RunSummary], list[RunSummary], list[RunSummary]]:
    """Greedy-1/Greedy-2 runs plus base runs over the keyword battery.

    ``figure_alpha`` follows the paper's experimental semantics (1 =
    budget-driven); Equation 1 as printed weighs the objective by alpha,
    so the engine receives ``1 - figure_alpha`` (see module docstring).
    """
    eq1_alpha = 1.0 - figure_alpha
    greedy1 = [
        cell_summary(workload, "greedy", kw, 6.0, alpha=eq1_alpha) for kw in KEYWORD_COUNTS
    ]
    greedy2 = [
        cell_summary(workload, "greedy2", kw, 6.0, alpha=eq1_alpha) for kw in KEYWORD_COUNTS
    ]
    bases = [base_cell(workload, kw, 6.0) for kw in KEYWORD_COUNTS]
    return greedy1, greedy2, bases


def fig12_ratio_vs_alpha(workload: Workload | None = None) -> ExperimentResult:
    """Figure 12: greedy relative ratio vs alpha (Delta = 6 km)."""
    workload = workload or flickr_workload()
    series: dict[str, list[float]] = {"Greedy-1": [], "Greedy-2": []}
    for alpha in ALPHAS:
        greedy1, greedy2, bases = _alpha_cells(workload, alpha)
        series["Greedy-1"].append(
            _mean([relative_ratio(run, base) for run, base in zip(greedy1, bases)])
        )
        series["Greedy-2"].append(
            _mean([relative_ratio(run, base) for run, base in zip(greedy2, bases)])
        )
    return ExperimentResult(
        figure="fig12",
        title="Greedy relative ratio vs alpha",
        x_name="alpha",
        xs=list(ALPHAS),
        series=series,
        y_name="relative ratio",
        notes="Delta = 6 km, averaged over keyword counts; alpha follows the "
        "paper's experimental semantics (engine gets 1 - alpha, see DESIGN.md)",
    )


def fig13_failure_vs_alpha(workload: Workload | None = None) -> ExperimentResult:
    """Figure 13: greedy failure percentage vs alpha (Delta = 6 km)."""
    workload = workload or flickr_workload()
    series: dict[str, list[float]] = {"Greedy-1": [], "Greedy-2": []}
    for alpha in ALPHAS:
        greedy1, greedy2, bases = _alpha_cells(workload, alpha)
        series["Greedy-1"].append(
            _mean([failure_percentage(run, base) for run, base in zip(greedy1, bases)])
        )
        series["Greedy-2"].append(
            _mean([failure_percentage(run, base) for run, base in zip(greedy2, bases)])
        )
    return ExperimentResult(
        figure="fig13",
        title="Greedy failure percentage vs alpha",
        x_name="alpha",
        xs=list(ALPHAS),
        series=series,
        y_name="failure (%)",
        notes="failures counted over queries with feasible solutions "
        "(certified by OSScaling eps=0.1), as in the paper",
    )


# ----------------------------------------------------------------------
# Figures 14-15: equal theoretical approximation bounds
# ----------------------------------------------------------------------

EQUAL_BOUNDS = (2.0, 4.0, 6.0, 8.0, 10.0)


def _equal_bound_params(bound: float) -> tuple[float, float, float]:
    """(eps_osscaling, eps_bucketbound, beta) achieving ratio *bound*.

    OSScaling's bound is ``1/(1-eps)``; BucketBound's is ``beta/(1-eps)``
    with ``beta`` fixed at 1.2, so its eps solves ``beta/(1-eps) = bound``.
    """
    eps_os = 1.0 - 1.0 / bound
    eps_bb = 1.0 - DEFAULT_BETA / bound
    return eps_os, eps_bb, DEFAULT_BETA


def fig14_runtime_equal_bound(workload: Workload | None = None) -> ExperimentResult:
    """Figure 14: runtime at matched theoretical bounds."""
    workload = workload or flickr_workload()
    os_times, bb_times = [], []
    for bound in EQUAL_BOUNDS:
        eps_os, eps_bb, beta = _equal_bound_params(bound)
        os_times.append(
            cell_summary(workload, "osscaling", 6, 6.0, epsilon=eps_os).mean_runtime_ms
        )
        bb_times.append(
            cell_summary(
                workload, "bucketbound", 6, 6.0, epsilon=eps_bb, beta=beta
            ).mean_runtime_ms
        )
    return ExperimentResult(
        figure="fig14",
        title="Runtime at equal theoretical approximation bound",
        x_name="theoretical bound",
        xs=list(EQUAL_BOUNDS),
        series={"OSScaling": os_times, "BucketBound": bb_times},
        y_name="runtime (ms)",
        notes="OSScaling eps = 1 - 1/bound; BucketBound beta = 1.2, "
        "eps = 1 - beta/bound; Delta = 6 km, 6 keywords",
    )


def fig15_ratio_equal_bound(workload: Workload | None = None) -> ExperimentResult:
    """Figure 15: relative ratio at matched theoretical bounds."""
    workload = workload or flickr_workload()
    base = base_cell(workload, 6, 6.0)
    os_ratios, bb_ratios = [], []
    for bound in EQUAL_BOUNDS:
        eps_os, eps_bb, beta = _equal_bound_params(bound)
        os_ratios.append(
            relative_ratio(cell_summary(workload, "osscaling", 6, 6.0, epsilon=eps_os), base)
        )
        bb_ratios.append(
            relative_ratio(
                cell_summary(workload, "bucketbound", 6, 6.0, epsilon=eps_bb, beta=beta), base
            )
        )
    return ExperimentResult(
        figure="fig15",
        title="Relative ratio at equal theoretical approximation bound",
        x_name="theoretical bound",
        xs=list(EQUAL_BOUNDS),
        series={"OSScaling": os_ratios, "BucketBound": bb_ratios},
        y_name="relative ratio",
        notes="base: OSScaling eps=0.1; same parameters as fig14",
    )


# ----------------------------------------------------------------------
# Figure 16: the KkR top-k extension
# ----------------------------------------------------------------------

TOPK_KS = (1, 2, 3, 4, 5)


def fig16_topk_runtime(workload: Workload | None = None) -> ExperimentResult:
    """Figure 16: KkR runtime vs k (eps=0.5, beta=1.2, Delta=6)."""
    import time as _time

    workload = workload or flickr_workload()
    series: dict[str, list[float]] = {"OSScaling": [], "BucketBound": []}
    for k in TOPK_KS:
        for name, algorithm in (("OSScaling", "osscaling"), ("BucketBound", "bucketbound")):
            total = 0.0
            count = 0
            for kw in KEYWORD_COUNTS:
                for query in workload.query_set(kw, 6.0):
                    begin = _time.perf_counter()
                    workload.engine.top_k(
                        query.source,
                        query.target,
                        query.keywords,
                        query.budget_limit,
                        k=k,
                        algorithm=algorithm,
                        epsilon=DEFAULT_EPSILON,
                        **({"beta": DEFAULT_BETA} if algorithm == "bucketbound" else {}),
                    )
                    total += _time.perf_counter() - begin
                    count += 1
            series[name].append(1000.0 * total / count)
    return ExperimentResult(
        figure="fig16",
        title="KkR runtime vs k",
        x_name="k",
        xs=list(TOPK_KS),
        series=series,
        y_name="runtime (ms)",
        notes="eps = 0.5, beta = 1.2, Delta = 6 km, averaged over keyword counts",
    )


# ----------------------------------------------------------------------
# Figures 17-19: road-network datasets
# ----------------------------------------------------------------------

def fig17_scalability() -> ExperimentResult:
    """Figure 17: runtime vs graph size on road networks (6 keywords)."""
    sizes = road_sizes()
    series: dict[str, list[float]] = {name: [] for name in RUNTIME_ALGORITHMS}
    for size in sizes:
        workload = road_workload(size)
        for name in RUNTIME_ALGORITHMS:
            series[name].append(
                named_cell(
                    workload, name, 6, workload.default_delta
                ).mean_runtime_ms
            )
    return ExperimentResult(
        figure="fig17",
        title="Scalability: runtime vs road-network size",
        x_name="number of nodes",
        xs=list(sizes),
        series=series,
        y_name="runtime (ms)",
        notes="6 query keywords; Delta = 20 km (paper: 30 km on 5k-20k "
        "DIMACS subgraphs; see DESIGN.md substitutions)",
    )


def fig18_road_runtime_vs_keywords() -> ExperimentResult:
    """Figure 18: runtime vs #keywords on the default road graph."""
    workload = road_workload(road_default_size())
    series = {
        name: [
            named_cell(workload, name, kw, workload.default_delta).mean_runtime_ms
            for kw in KEYWORD_COUNTS
        ]
        for name in RUNTIME_ALGORITHMS
    }
    return ExperimentResult(
        figure="fig18",
        title="Runtime (road network) vs number of query keywords",
        x_name="number of query keywords",
        xs=list(KEYWORD_COUNTS),
        series=series,
        y_name="runtime (ms)",
        notes=f"dataset {workload.name}, Delta = {workload.default_delta} km",
    )


def fig19_road_runtime_vs_budget() -> ExperimentResult:
    """Figure 19: runtime vs Delta on the default road graph."""
    workload = road_workload(road_default_size())
    series = {
        name: [
            named_cell(workload, name, 6, delta).mean_runtime_ms
            for delta in ROAD_DELTAS
        ]
        for name in RUNTIME_ALGORITHMS
    }
    return ExperimentResult(
        figure="fig19",
        title="Runtime (road network) vs budget limit Delta",
        x_name="Delta (km)",
        xs=list(ROAD_DELTAS),
        series=series,
        y_name="runtime (ms)",
        notes=f"dataset {workload.name}, 6 query keywords",
    )


# ----------------------------------------------------------------------
# Ablations (DESIGN.md A1-A3)
# ----------------------------------------------------------------------

def ablation_opt_strategies(workload: Workload | None = None) -> ExperimentResult:
    """A1: Section 4.2.1 claims the optimisation strategies buy 3-5x.

    The strategies target queries with *infrequent* keywords (Strategy 2
    explicitly so; Strategy 1's early-feasible jumps matter most when
    ordinary expansion takes long to cover a rare word), so this ablation
    uses a dedicated query set drawn without the default common-word
    screen: keywords sampled uniformly over the vocabulary with df >= 2.
    """
    from repro.bench.workloads import bench_num_queries
    from repro.datasets.queries import QuerySetConfig, generate_query_set

    workload = workload or flickr_workload()
    config = QuerySetConfig(
        num_queries=bench_num_queries(),
        num_keywords=6,
        budget_limit=6.0,
        max_sigma_fraction=0.5,
        min_document_frequency=2,
        frequency_weighted=False,
        seed=1735,
    )
    queries = generate_query_set(
        workload.graph, workload.engine.index, config, tables=workload.engine.tables
    )

    configs = (
        ("both strategies", {"use_strategy1": True, "use_strategy2": True}),
        ("strategy 1 only", {"use_strategy1": True, "use_strategy2": False}),
        ("strategy 2 only", {"use_strategy1": False, "use_strategy2": True}),
        ("no strategies", {"use_strategy1": False, "use_strategy2": False}),
    )
    series: dict[str, list[float]] = {"OSScaling": [], "BucketBound": []}
    xs = [name for name, _params in configs]
    for _name, params in configs:
        series["OSScaling"].append(
            run_query_set(
                workload.engine, queries, "osscaling", epsilon=DEFAULT_EPSILON, **params
            ).mean_runtime_ms
        )
        series["BucketBound"].append(
            run_query_set(
                workload.engine,
                queries,
                "bucketbound",
                epsilon=DEFAULT_EPSILON,
                beta=DEFAULT_BETA,
                **params,
            ).mean_runtime_ms
        )
    return ExperimentResult(
        figure="ablation_opt_strategies",
        title="Optimisation strategies on/off (Section 4.2.1 text)",
        x_name="configuration",
        xs=xs,
        series=series,
        y_name="runtime (ms)",
        notes="Delta = 6 km, 6 uniformly-drawn (rare-leaning) keywords; the "
        "paper reports 3-5x slowdown with both strategies disabled",
    )


def ablation_epsilon_labels(workload: Workload | None = None) -> ExperimentResult:
    """Companion to Figure 6: label volume, not just runtime, vs eps."""
    workload = workload or flickr_workload()
    labels = []
    for eps in EPSILONS:
        summary = cell_summary(workload, "osscaling", 6, 6.0, epsilon=eps)
        labels.append(
            sum(o.labels_created for o in summary.outcomes) / max(summary.total, 1)
        )
    return ExperimentResult(
        figure="ablation_epsilon_labels",
        title="OSScaling labels created vs epsilon",
        x_name="epsilon",
        xs=list(EPSILONS),
        series={"labels created / query": labels},
        y_name="labels",
        notes="mechanism probe for Figure 6: eps coarsens scaled scores so "
        "domination *can* merge more labels; on this workload objectives "
        "are near-discrete log trip-counts, collisions stay rare, and the "
        "label volume barely reacts (see EXPERIMENTS.md)",
    )


def ablation_partition() -> ExperimentResult:
    """A2: flat vs partitioned pre-processing (paper future work, §6).

    Reports build time, score memory and the mean relative deviation of
    the assembled ``BS(sigma)`` scores — the assembly is exact (see
    :mod:`repro.prep.partition`), so the deviation column doubles as an
    end-to-end verification and should read ~0.
    """
    import time as _time

    import numpy as np

    from repro.prep.partition import PartitionedCostTables
    from repro.prep.tables import CostTables

    workload = road_workload(road_sizes()[0])
    graph = workload.graph

    begin = _time.perf_counter()
    flat = CostTables.from_graph(graph, predecessors=False)
    flat_seconds = _time.perf_counter() - begin

    begin = _time.perf_counter()
    partitioned = PartitionedCostTables.from_graph(graph)
    part_seconds = _time.perf_counter() - begin

    rng = np.random.default_rng(7)
    targets = rng.integers(0, graph.num_nodes, size=8)
    inflations = []
    for t in targets:
        reference = flat.bs_sigma_col(int(t))
        assembled = partitioned.bs_sigma_col(int(t))
        finite = np.isfinite(reference) & (reference > 0)
        inflations.append(
            float(np.mean((assembled[finite] - reference[finite]) / reference[finite]))
        )
    flat_bytes = sum(
        getattr(flat, name).nbytes
        for name in ("os_tau", "bs_tau", "os_sigma", "bs_sigma")
    )
    return ExperimentResult(
        figure="ablation_partition",
        title="Flat vs partitioned pre-processing (future work §6)",
        x_name="metric",
        xs=["build time (s)", "score memory (MB)", "mean BS(sigma) inflation"],
        series={
            "flat": [flat_seconds, flat_bytes / 1e6, 0.0],
            "partitioned": [
                part_seconds,
                partitioned.memory_bytes() / 1e6,
                _mean(inflations),  # exact assembly: expect ~0
            ],
        },
        y_name="see metric",
        notes=f"graph {workload.name} ({graph.num_nodes} nodes, "
        f"{partitioned.partition.num_cells} cells, "
        f"{len(partitioned.partition.border_nodes)} border nodes)",
    )


def ablation_disk_index() -> ExperimentResult:
    """A3: in-memory vs disk-resident B+-tree inverted file lookups."""
    import tempfile
    import time as _time
    from pathlib import Path as _Path

    import numpy as np

    from repro.index.diskindex import DiskInvertedIndex

    workload = flickr_workload()
    graph = workload.graph
    memory_index = workload.engine.index

    keyword_ids = [
        kid
        for kid in range(len(graph.keyword_table))
        if memory_index.document_frequency(kid) > 0
    ]
    rng = np.random.default_rng(11)
    probes = [int(k) for k in rng.choice(keyword_ids, size=2000, replace=True)]

    with tempfile.TemporaryDirectory() as tmp:
        disk_index = DiskInvertedIndex.build(
            graph, _Path(tmp) / "index.pages", buffer_capacity=64
        )

        begin = _time.perf_counter()
        for kid in probes:
            memory_index.postings(kid)
        memory_us = 1e6 * (_time.perf_counter() - begin) / len(probes)

        begin = _time.perf_counter()
        for kid in probes:
            disk_index.postings(kid)
        disk_us = 1e6 * (_time.perf_counter() - begin) / len(probes)
        hit_rate = disk_index.buffer_pool.stats.hit_rate
        disk_index.close()

    return ExperimentResult(
        figure="ablation_index",
        title="Inverted file back ends: in-memory vs disk B+-tree",
        x_name="metric",
        xs=["lookup latency (us)", "buffer hit rate (%)"],
        series={
            "in-memory": [memory_us, 100.0],
            "disk B+-tree": [disk_us, 100.0 * hit_rate],
        },
        y_name="see metric",
        notes=f"{len(probes)} random postings lookups over "
        f"{len(keyword_ids)} terms, 64-page LRU buffer pool",
    )


# ----------------------------------------------------------------------
# serving layer: batched + cached throughput (beyond the paper)
# ----------------------------------------------------------------------

def service_throughput(
    repeats: int = 5, workers: int = 4, num_queries: int | None = None
) -> ExperimentResult:
    """Serving-mode throughput on repeat-heavy streams.

    Models the workload the paper's Flickr query logs motivate: a stream
    that repeats a base query set *repeats* times.  Three serving modes
    per dataset (Figure-1 graph and the Flickr-like workload):

    * ``Engine-sequential`` — one ``engine.run`` per stream query, no
      reuse (today's baseline);
    * ``Service-cold`` — one batch through a fresh ``QueryService``
      (in-batch dedup + one shared candidate-set pass + thread fan-out);
    * ``Service-warm`` — the same stream again on the now-warm cache.

    Values are mean milliseconds per stream query; ``meta`` records the
    warm-over-sequential speedup per dataset.
    """
    import time as _time

    from repro.core.engine import KOREngine
    from repro.core.query import KORQuery
    from repro.graph.generators import figure_1_graph
    from repro.service import QueryService

    datasets: list[tuple[str, KOREngine, list[KORQuery]]] = []

    fig1_engine = KOREngine(figure_1_graph())
    fig1_queries = [
        KORQuery(0, 7, ("t1", "t2", "t3"), 8.0),
        KORQuery(0, 7, ("t1", "t2"), 8.0),
        KORQuery(0, 6, ("t2", "t4"), 10.0),
        KORQuery(1, 7, ("t3",), 9.0),
        KORQuery(0, 5, ("t1", "t4"), 12.0),
        KORQuery(2, 7, ("t2", "t3"), 9.0),
    ]
    datasets.append(("figure1", fig1_engine, fig1_queries))

    workload = flickr_workload()
    flickr_queries = workload.query_set(3, num_queries=num_queries)
    datasets.append(("flickr", workload.engine, flickr_queries))

    xs: list[str] = []
    sequential_ms: list[float] = []
    cold_ms: list[float] = []
    warm_ms: list[float] = []
    meta: dict = {"repeats": repeats, "workers": workers, "speedup_warm": {}}

    for name, engine, base_queries in datasets:
        stream = list(base_queries) * repeats

        begin = _time.perf_counter()
        for query in stream:
            engine.run(query, algorithm="bucketbound")
        sequential = _time.perf_counter() - begin

        service = QueryService(engine, cache_capacity=4096)
        begin = _time.perf_counter()
        service.run_batch(stream, algorithm="bucketbound", workers=workers)
        cold = _time.perf_counter() - begin

        begin = _time.perf_counter()
        service.run_batch(stream, algorithm="bucketbound", workers=workers)
        warm = _time.perf_counter() - begin

        per_query = 1000.0 / len(stream)
        xs.append(name)
        sequential_ms.append(sequential * per_query)
        cold_ms.append(cold * per_query)
        warm_ms.append(warm * per_query)
        meta["speedup_warm"][name] = sequential / warm if warm > 0 else float("inf")
        meta.setdefault("hit_rate", {})[name] = service.snapshot().hit_rate

    return ExperimentResult(
        figure="service_throughput",
        title="Serving-layer throughput on repeat-heavy query streams",
        x_name="dataset",
        xs=xs,
        series={
            "Engine-sequential": sequential_ms,
            "Service-cold": cold_ms,
            "Service-warm": warm_ms,
        },
        y_name="mean ms / stream query",
        notes=(
            f"stream = base query set x{repeats}; service uses {workers} workers, "
            "canonicalizing LRU cache; warm pass serves the whole stream from cache"
        ),
        meta=meta,
    )


def sharded_throughput(
    workers: int = 4,
    num_queries: int | None = None,
    num_cells: int | None = None,
    backend_names: tuple[str, ...] | None = None,
) -> ExperimentResult:
    """Sharded serving: batch throughput per execution backend.

    Runs one batch of *distinct* queries (cache disabled — this measures
    compute fan-out, not the cache) through a
    :class:`~repro.service.sharding.ShardedQueryService` on each backend:

    * ``SerialBackend`` — the single-thread floor;
    * ``ThreadBackend`` — PR 1's concurrency (GIL-bound);
    * ``ProcessBackend`` — process-pool fan-out over picklable shard
      handles, the backend that escapes the GIL.

    Two datasets: the Figure-1 toy graph (queries are microseconds, so
    process IPC overhead is visible) and the Flickr-like workload (the
    multi-shard batch workload the process pool is *for*).  Values are
    batch throughput in queries/second; ``meta`` records each backend's
    speedup over serial per dataset.  Every backend is warmed with one
    un-timed pass so pool spin-up and worker-side engine assembly are
    not billed to the timed batch.
    """
    import time as _time

    from repro.core.query import KORQuery
    from repro.graph.generators import figure_1_graph
    from repro.service import ProcessBackend, SerialBackend, ShardedQueryService, ThreadBackend

    fig1_queries = []
    for spread, delta in enumerate((8.0, 9.0, 10.0, 11.0, 12.0, 13.0)):
        for keywords in (("t1", "t2", "t3"), ("t1", "t2"), ("t2", "t4"), ("t3",)):
            fig1_queries.append(KORQuery(0, 7, keywords, delta + 0.1 * spread))
    datasets: list[tuple[str, object, list[KORQuery], int]] = [
        ("figure1", figure_1_graph(), fig1_queries, 2)
    ]

    workload = flickr_workload()
    flickr_queries: list[KORQuery] = []
    for kw in (2, 3, 4):
        flickr_queries.extend(
            workload.query_set(kw, 6.0, num_queries=num_queries)
        )
    datasets.append(("flickr", workload.graph, flickr_queries, num_cells or 0))

    backends = (
        ("SerialBackend", lambda: SerialBackend()),
        ("ThreadBackend", lambda: ThreadBackend(workers=workers)),
        ("ProcessBackend", lambda: ProcessBackend(workers=workers)),
    )
    if backend_names is not None:
        # Callers that cannot use a backend's numbers (e.g. the CI
        # regression gate, which never gates the core-count-dependent
        # process pool) skip measuring it entirely.
        backends = tuple(
            (name, factory) for name, factory in backends if name in backend_names
        )
        if "SerialBackend" not in dict(backends):
            raise ValueError("backend_names must include SerialBackend (the baseline)")
    import os

    try:
        usable_cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        usable_cpus = os.cpu_count() or 1

    xs = [name for name, _graph, _queries, _cells in datasets]
    series: dict[str, list[float]] = {name: [] for name, _factory in backends}
    meta: dict = {
        "workers": workers,
        #: Process fan-out can only beat serial when this is > 1.
        "usable_cpus": usable_cpus,
        "batch_sizes": {name: len(queries) for name, _g, queries, _c in datasets},
        "num_cells": {},
        "speedup_over_serial": {},
    }

    for dataset_name, graph, queries, cells in datasets:
        walls: dict[str, float] = {}
        for backend_name, factory in backends:
            backend = factory()
            try:
                service = ShardedQueryService(
                    graph,
                    num_cells=cells or None,
                    backend=backend,
                    cache_capacity=0,
                )
                meta["num_cells"][dataset_name] = service.num_shards
                # Warm pass: pool spin-up + worker engine assembly.
                service.run_batch(queries, algorithm="bucketbound", workers=workers)
                begin = _time.perf_counter()
                service.run_batch(queries, algorithm="bucketbound", workers=workers)
                walls[backend_name] = _time.perf_counter() - begin
            finally:
                backend.close()
            series[backend_name].append(len(queries) / walls[backend_name])
        meta["speedup_over_serial"][dataset_name] = {
            backend_name: walls["SerialBackend"] / walls[backend_name]
            for backend_name, _factory in backends
        }

    return ExperimentResult(
        figure="sharded_throughput",
        title="Sharded serving throughput per execution backend",
        x_name="dataset",
        xs=xs,
        series=series,
        y_name="queries / second",
        notes=(
            f"one batch of distinct queries, cache disabled, {workers} workers; "
            "one-wave scatter (cell attempt + cross-cell border assembly); "
            "warm pass excluded from timing"
        ),
        meta=meta,
    )


def border_heavy_throughput(
    workers: int = 4,
    num_queries: int | None = None,
    backend_names: tuple[str, ...] | None = None,
) -> ExperimentResult:
    """Sharded serving under a border-heavy (cross-cell) query mix.

    The ``sharded_throughput`` figure measures a natural mix, which
    leans cell-local; this one forces every query's endpoints into
    *different* cells, so (almost) every miss skips the cell attempt and
    runs on the cross-cell :class:`~repro.service.crosscell.BorderEngine`
    alone — the regime the border-table assembly is for, and the one the
    CI regression gate watches so cross-cell latency cannot silently
    rot.  Values are batch throughput in queries/second per execution
    backend; ``meta`` records the achieved cross-cell fraction (should
    read ~1.0) and the scatter-merge win mix.
    """
    import time as _time

    from repro.core.query import KORQuery
    from repro.graph.generators import figure_1_graph
    from repro.service import ProcessBackend, SerialBackend, ShardedQueryService, ThreadBackend

    fig1_queries = []
    for spread, delta in enumerate((8.0, 9.0, 10.0, 11.0, 12.0, 13.0)):
        for keywords in (("t1", "t2", "t3"), ("t1", "t2"), ("t2", "t4"), ("t3",)):
            fig1_queries.append(KORQuery(0, 7, keywords, delta + 0.1 * spread))
    datasets: list[tuple[str, object, list[KORQuery], int]] = [
        ("figure1", figure_1_graph(), fig1_queries, 2)
    ]

    workload = flickr_workload()
    flickr_queries: list[KORQuery] = []
    for kw in (2, 3, 4):
        flickr_queries.extend(workload.query_set(kw, 6.0, num_queries=num_queries))
    datasets.append(("flickr", workload.graph, flickr_queries, 0))

    backends = (
        ("SerialBackend", lambda: SerialBackend()),
        ("ThreadBackend", lambda: ThreadBackend(workers=workers)),
        ("ProcessBackend", lambda: ProcessBackend(workers=workers)),
    )
    if backend_names is not None:
        backends = tuple(
            (name, factory) for name, factory in backends if name in backend_names
        )

    xs = [name for name, _graph, _queries, _cells in datasets]
    series: dict[str, list[float]] = {name: [] for name, _factory in backends}
    meta: dict = {
        "workers": workers,
        "num_cells": {},
        "cross_cell_fraction": {},
        "merge_wins": {},
    }

    for dataset_name, graph, base_queries, cells in datasets:
        # Derive the cross-cell mix once per dataset: the partition is
        # seed-deterministic, so every backend's service agrees on it.
        probe = ShardedQueryService(
            graph, num_cells=cells or None, backend=SerialBackend(), cache_capacity=0
        )
        partition = probe.partition
        num_cells = probe.num_shards
        queries: list[KORQuery] = []
        for query in base_queries:
            src_cell = int(partition.cell_of[query.source])
            if num_cells > 1 and int(partition.cell_of[query.target]) == src_cell:
                other = (src_cell + 1) % num_cells
                target = int(partition.cells[other][0])
                query = KORQuery(query.source, target, query.keywords, query.budget_limit)
            queries.append(query)
        crossing = sum(1 for q in queries if probe.plan_of(q) != "local")
        meta["cross_cell_fraction"][dataset_name] = crossing / max(len(queries), 1)
        meta["num_cells"][dataset_name] = num_cells
        probe.close()

        for backend_name, factory in backends:
            backend = factory()
            try:
                service = ShardedQueryService(
                    graph, num_cells=cells or None, backend=backend, cache_capacity=0
                )
                # Warm pass: pool spin-up + worker engine assembly.
                service.run_batch(queries, algorithm="bucketbound", workers=workers)
                begin = _time.perf_counter()
                service.run_batch(queries, algorithm="bucketbound", workers=workers)
                wall = _time.perf_counter() - begin
                meta["merge_wins"].setdefault(dataset_name, {})[backend_name] = dict(
                    service.snapshot().merge_wins
                )
                service.close()
            finally:
                backend.close()
            series[backend_name].append(len(queries) / wall)

    return ExperimentResult(
        figure="border_heavy_throughput",
        title="Sharded serving throughput on a border-heavy query mix",
        x_name="dataset",
        xs=xs,
        series=series,
        y_name="queries / second",
        notes=(
            "every query's endpoints forced into different cells (cross-cell "
            f"fraction in meta); cache disabled, {workers} workers; "
            "cross-cell answers come from the border-table assembly alone"
        ),
        meta=meta,
    )


def async_throughput(
    repeats: int = 4,
    num_queries: int | None = None,
    window_seconds: float = 0.0,
    max_batch: int = 256,
) -> ExperimentResult:
    """Sync batch vs asyncio front-end under concurrent load.

    The same repeat-heavy stream is served two ways on a fresh
    :class:`~repro.service.service.QueryService` each:

    * ``Sync-batch`` — one blocking ``run_batch`` call (the PR 1 shape);
    * ``Async-frontend`` — every stream query awaited *concurrently*
      through an :class:`~repro.service.frontend.AsyncQueryService`,
      which coalesces the duplicates (single-flight) and aggregates the
      distinct queries into micro-batched ``execute`` waves.

    Values are stream queries/second; ``meta`` records how much the
    front-end collapsed (requests vs flights vs waves, coalesced count).
    The interesting reading is the *ratio*: the front-end should stay
    within small overhead of the batch path while turning a
    many-concurrent-awaiters workload into the same few engine runs.
    """
    import asyncio
    import time as _time

    from repro.core.engine import KOREngine
    from repro.core.query import KORQuery
    from repro.graph.generators import figure_1_graph
    from repro.service import AsyncQueryService, QueryService

    datasets: list[tuple[str, KOREngine, list[KORQuery]]] = []

    fig1_engine = KOREngine(figure_1_graph())
    fig1_queries = [
        KORQuery(0, 7, ("t1", "t2", "t3"), 8.0),
        KORQuery(0, 7, ("t1", "t2"), 8.0),
        KORQuery(0, 6, ("t2", "t4"), 10.0),
        KORQuery(1, 7, ("t3",), 9.0),
        KORQuery(0, 5, ("t1", "t4"), 12.0),
        KORQuery(2, 7, ("t2", "t3"), 9.0),
    ]
    datasets.append(("figure1", fig1_engine, fig1_queries))

    workload = flickr_workload()
    datasets.append(
        ("flickr", workload.engine, workload.query_set(3, num_queries=num_queries))
    )

    xs: list[str] = []
    sync_qps: list[float] = []
    async_qps: list[float] = []
    meta: dict = {
        "repeats": repeats,
        "window_seconds": window_seconds,
        "max_batch": max_batch,
        "coalesced": {},
        "scheduling": {},
    }

    for name, engine, base_queries in datasets:
        stream = list(base_queries) * repeats

        sync_service = QueryService(engine, cache_capacity=4096)
        begin = _time.perf_counter()
        sync_service.run_batch(stream, algorithm="bucketbound")
        sync_wall = _time.perf_counter() - begin

        async_service = QueryService(engine, cache_capacity=4096)

        async def drive(service=async_service):
            front = AsyncQueryService(
                service, window_seconds=window_seconds, max_batch=max_batch
            )
            async with front:
                await front.run_batch(stream, algorithm="bucketbound")
                return front.snapshot(), front.scheduling_stats()

        begin = _time.perf_counter()
        snapshot, scheduling = asyncio.run(drive())
        async_wall = _time.perf_counter() - begin

        xs.append(name)
        sync_qps.append(len(stream) / sync_wall if sync_wall > 0 else float("inf"))
        async_qps.append(len(stream) / async_wall if async_wall > 0 else float("inf"))
        meta["coalesced"][name] = snapshot.coalesced
        meta["scheduling"][name] = scheduling

    return ExperimentResult(
        figure="async_throughput",
        title="Sync batch vs asyncio front-end on a concurrent stream",
        x_name="dataset",
        xs=xs,
        series={"Sync-batch": sync_qps, "Async-frontend": async_qps},
        y_name="queries / second",
        notes=(
            f"stream = base query set x{repeats}, all stream queries awaited "
            "concurrently through the async front-end (coalescing + "
            "micro-batching); fresh service and cold cache per mode"
        ),
        meta=meta,
    )


def kernel_throughput(
    repeats: int = 8,
    workers: int = 2,
    wave_size: int | None = None,
    backend_names: tuple[str, ...] | None = None,
) -> ExperimentResult:
    """Batch-wave kernel dispatch vs the per-query task loop, per backend.

    The batch executor can ship a figure-1 stream two ways through the
    same :class:`~repro.service.backends.ExecutionBackend`:

    * ``Per-query-tasks`` — one :class:`ShardTask` per unique query
      (``wave_kernels=False``), the pre-kernel scatter shape;
    * ``Batch-wave`` — :class:`WaveTask` chunks driven through the
      lockstep numpy kernel (``wave_kernels=True``, the default).

    Values are batch queries/second per backend.  The interesting number
    is the **ProcessBackend** pair: per-query dispatch pays pickle + IPC
    + future bookkeeping per query, a wave pays it once per ``wave_size``
    queries — this is the scatter overhead that capped sharded serving
    at ~2.8k qps while the flat loop did ~42k.  ``meta["speedup"]``
    records wave/per-query per backend, and ``meta["kernel_only_speedup"]``
    isolates the in-process kernel itself (one warm ``run_wave`` vs a
    plain ``engine.run`` loop, no dispatch at all) so the dispatch
    amortisation and the numpy-block win are reported separately.

    The stream perturbs each base query's budget per repeat so the batch
    deduplicator keeps every slot as a distinct unique computation —
    otherwise ``repeats`` identical queries collapse into one wave member
    and both modes would measure a six-query batch.
    """
    import time as _time

    from repro.core.engine import KOREngine
    from repro.core.kernels import KernelContext, run_wave
    from repro.core.query import KORQuery
    from repro.graph.generators import figure_1_graph
    from repro.service import ProcessBackend, SerialBackend, ThreadBackend
    from repro.service.batch import DEFAULT_WAVE_SIZE, execute_batch
    from repro.service.cache import ResultCache

    engine = KOREngine(figure_1_graph())
    base_queries = [
        KORQuery(0, 7, ("t1", "t2", "t3"), 8.0),
        KORQuery(0, 7, ("t1", "t2"), 8.0),
        KORQuery(0, 6, ("t2", "t4"), 10.0),
        KORQuery(1, 7, ("t3",), 9.0),
        KORQuery(0, 5, ("t1", "t4"), 12.0),
        KORQuery(2, 7, ("t2", "t3"), 9.0),
    ]
    stream = [
        KORQuery(q.source, q.target, q.keywords, q.budget_limit + 0.001 * i)
        for i in range(repeats)
        for q in base_queries
    ]
    effective_wave = wave_size if wave_size is not None else DEFAULT_WAVE_SIZE

    backends = (
        ("SerialBackend", lambda: SerialBackend()),
        ("ThreadBackend", lambda: ThreadBackend(workers=workers)),
        ("ProcessBackend", lambda: ProcessBackend(workers=workers)),
    )
    if backend_names is not None:
        # The CI regression gate never gates the core-count-dependent
        # process pool; let it skip measuring one entirely.
        backends = tuple(
            (name, factory) for name, factory in backends if name in backend_names
        )

    def timed_batch(backend, handle, use_waves: bool) -> float:
        """Best-of-3 wall seconds for one batch in the given mode."""
        best = float("inf")
        for _ in range(3):
            begin = _time.perf_counter()
            report = execute_batch(
                engine,
                ResultCache(0),
                stream,
                backend=backend,
                handle=handle,
                wave_kernels=use_waves,
                wave_size=effective_wave,
            )
            best = min(best, _time.perf_counter() - begin)
            if not report.ok:
                raise RuntimeError(f"benchmark batch failed: {report.errors}")
        return best

    xs: list[str] = []
    per_query_qps: list[float] = []
    wave_qps: list[float] = []
    meta: dict = {
        "num_queries": len(stream),
        "wave_size": effective_wave,
        "workers": workers,
        "speedup": {},
    }

    for name, factory in backends:
        backend = factory()
        try:
            handle = backend.register_engine(engine, key="kernel-bench")
            # Warm both modes un-timed: pool spin-up, worker engine
            # assembly and kernel-context builds are not billed.
            for use_waves in (False, True):
                execute_batch(
                    engine,
                    ResultCache(0),
                    stream,
                    backend=backend,
                    handle=handle,
                    wave_kernels=use_waves,
                    wave_size=effective_wave,
                )
            solo = timed_batch(backend, handle, use_waves=False)
            waved = timed_batch(backend, handle, use_waves=True)
        finally:
            backend.close()
        xs.append(name)
        per_query_qps.append(len(stream) / solo if solo > 0 else float("inf"))
        wave_qps.append(len(stream) / waved if waved > 0 else float("inf"))
        meta["speedup"][name] = (
            wave_qps[-1] / per_query_qps[-1] if per_query_qps[-1] > 0 else float("inf")
        )

    # Kernel-alone comparison, no dispatch: warm-context run_wave vs the
    # plain scalar loop on the same stream.
    kctx = KernelContext(engine.graph, engine.tables)
    run_wave(engine, stream, "bucketbound", {}, kernel_context=kctx)
    begin = _time.perf_counter()
    for query in stream:
        engine.run(query, algorithm="bucketbound")
    loop_wall = _time.perf_counter() - begin
    begin = _time.perf_counter()
    outcomes = run_wave(engine, stream, "bucketbound", {}, kernel_context=kctx)
    wave_wall = _time.perf_counter() - begin
    if any(outcome.error is not None for outcome in outcomes):
        raise RuntimeError("kernel-only wave failed")
    meta["kernel_only_speedup"] = loop_wall / wave_wall if wave_wall > 0 else float("inf")

    return ExperimentResult(
        figure="kernel_throughput",
        title="Batch-wave kernel dispatch vs per-query tasks (figure1)",
        x_name="backend",
        xs=xs,
        series={"Per-query-tasks": per_query_qps, "Batch-wave": wave_qps},
        y_name="queries / second",
        notes=(
            f"figure1 stream of {len(stream)} distinct queries (budgets "
            f"perturbed per repeat), wave_size={effective_wave}, best of 3 "
            "batches per mode after an un-timed warm pass; same backend and "
            "engine either side, only the dispatch currency changes"
        ),
        meta=meta,
    )


def sharded_wave_throughput(
    repeats: int = 8,
    workers: int = 2,
    num_cells: int = 2,
    backend_names: tuple[str, ...] | None = None,
) -> ExperimentResult:
    """Shard-aware wave scatter vs per-query ShardTasks, per backend.

    The sharded tier's scatter now groups same-(cell, algorithm, params)
    attempts into :class:`~repro.service.backends.WaveTask` waves — one
    submission per shard wave — instead of one :class:`ShardTask` per
    attempt.  This experiment measures the same figure-1 query stream
    through two otherwise-identical :class:`ShardedQueryService`
    instances (``wave_kernels=True`` vs ``False``, cache disabled) and
    reports batch queries/second per backend.

    As with :func:`kernel_throughput`, the ProcessBackend pair is the
    headline: per-attempt dispatch pays pickle + IPC + future
    bookkeeping *per attempt per tier* (cell-local, cross-cell, border
    repair), a shard wave pays it once per wave.  ``meta["speedup"]``
    records wave/per-query per backend.
    """
    import time as _time

    from repro.core.query import KORQuery
    from repro.graph.generators import figure_1_graph
    from repro.service import ProcessBackend, SerialBackend, ThreadBackend
    from repro.service.sharding import ShardedQueryService

    graph = figure_1_graph()
    base_queries = [
        KORQuery(0, 7, ("t1", "t2", "t3"), 8.0),
        KORQuery(0, 7, ("t1", "t2"), 8.0),
        KORQuery(0, 6, ("t2", "t4"), 10.0),
        KORQuery(1, 7, ("t3",), 9.0),
        KORQuery(0, 5, ("t1", "t4"), 12.0),
        KORQuery(2, 7, ("t2", "t3"), 9.0),
    ]
    stream = [
        KORQuery(q.source, q.target, q.keywords, q.budget_limit + 0.001 * i)
        for i in range(repeats)
        for q in base_queries
    ]

    backends = (
        ("SerialBackend", lambda: SerialBackend()),
        ("ThreadBackend", lambda: ThreadBackend(workers=workers)),
        ("ProcessBackend", lambda: ProcessBackend(workers=workers)),
    )
    if backend_names is not None:
        backends = tuple(
            (name, factory) for name, factory in backends if name in backend_names
        )

    def timed_batch(service) -> float:
        """Best-of-3 wall seconds for the stream through *service*."""
        best = float("inf")
        for _ in range(3):
            begin = _time.perf_counter()
            report = service.execute(stream, workers=workers)
            best = min(best, _time.perf_counter() - begin)
            if not report.ok:
                raise RuntimeError(f"benchmark batch failed: {report.errors}")
        return best

    xs: list[str] = []
    per_query_qps: list[float] = []
    wave_qps: list[float] = []
    meta: dict = {
        "num_queries": len(stream),
        "num_cells": num_cells,
        "workers": workers,
        "speedup": {},
    }

    for name, factory in backends:
        backend = factory()
        try:
            walls = {}
            for use_waves in (False, True):
                service = ShardedQueryService(
                    graph,
                    num_cells=num_cells,
                    backend=backend,
                    cache_capacity=0,
                    wave_kernels=use_waves,
                )
                try:
                    # Warm un-timed: pool spin-up and worker shard
                    # assembly are not billed.
                    service.execute(stream, workers=workers)
                    walls[use_waves] = timed_batch(service)
                finally:
                    service.close()
        finally:
            backend.close()
        xs.append(name)
        per_query_qps.append(
            len(stream) / walls[False] if walls[False] > 0 else float("inf")
        )
        wave_qps.append(len(stream) / walls[True] if walls[True] > 0 else float("inf"))
        meta["speedup"][name] = (
            wave_qps[-1] / per_query_qps[-1] if per_query_qps[-1] > 0 else float("inf")
        )

    return ExperimentResult(
        figure="sharded_wave_throughput",
        title="Shard-aware wave scatter vs per-query tasks (figure1)",
        x_name="backend",
        xs=xs,
        series={"Per-query-tasks": per_query_qps, "Shard-waves": wave_qps},
        y_name="queries / second",
        notes=(
            f"figure1 stream of {len(stream)} distinct queries (budgets "
            f"perturbed per repeat) over {num_cells} cells, best of 3 "
            "batches per mode after an un-timed warm pass; same backend "
            "either side, only the scatter currency changes"
        ),
        meta=meta,
    )


def sharded_memory(cell_counts: tuple[int, ...] = (1, 2, 4, 8)) -> ExperimentResult:
    """Memory vs cell count for the sharded service (no global tier).

    The point of the border-table architecture: per-service cost-table
    bytes *shrink* as ``num_cells`` grows, because cross-cell answers are
    assembled from the cells' own tables plus a ``k x k`` border tier
    instead of a retained flat ``O(n^2)`` engine.  Reports the resident
    table bytes of a :class:`~repro.service.sharding.ShardedQueryService`
    per cell count next to the flat score tables it replaces; ``meta``
    records the border-node count per granularity.

    Measured on the road workload — the regime partitioning is *for*:
    spatial networks with small separators.  (A dense Flickr-like
    similarity graph partitions into cells whose border sets approach
    the whole node set, and the border tier then erases the savings —
    the same caveat every separator-based index carries.)
    """
    from repro.prep.partition import PartitionedCostTables
    from repro.service import SerialBackend, ShardedQueryService

    workload = road_workload(road_sizes()[0])
    graph = workload.graph
    flat_mb = PartitionedCostTables.flat_memory_bytes(graph.num_nodes) / 1e6

    xs: list[int] = []
    sharded_mb: list[float] = []
    meta: dict = {"num_nodes": graph.num_nodes, "border_nodes": {}}
    backend = SerialBackend()
    try:
        for requested in cell_counts:
            cells = min(requested, graph.num_nodes)
            service = ShardedQueryService(
                graph, num_cells=cells, backend=backend, cache_capacity=0
            )
            try:
                xs.append(cells)
                sharded_mb.append(service.memory_bytes() / 1e6)
                meta["border_nodes"][cells] = len(
                    service.border_engine.tables.partition.border_nodes
                )
            finally:
                service.close()
    finally:
        backend.close()

    return ExperimentResult(
        figure="sharded_memory",
        title="Sharded service table memory vs cell count",
        x_name="num_cells",
        xs=xs,
        series={
            "sharded service tables (MB)": sharded_mb,
            "flat score tables (MB)": [flat_mb] * len(xs),
        },
        y_name="MB",
        notes=(
            f"graph {workload.name} ({graph.num_nodes} nodes); sharded bytes "
            "count every score + predecessor matrix across cell engines and "
            "the cross-cell border tier, deduplicated (the border engine "
            "shares the cell tables)"
        ),
        meta=meta,
    )


def update_latency(
    cell_counts: tuple[int, ...] = (1, 4, 8),
    num_updates: int = 12,
    num_clusters: int = 8,
    cluster_size: int = 24,
    seed: int = 7,
) -> ExperimentResult:
    """Incremental repair latency vs full world rebuild, per cell count.

    The dynamic-world acceptance figure: a single-cell edge-cost update
    repairs one cell's tables plus the border tier, so as the cell count
    grows the repaired fraction of the world shrinks and repair must
    pull away from a from-scratch rebuild.  Series are milliseconds —
    ``Repair-p50`` / ``Repair-p95`` over *num_updates* single-edge
    updates, and ``Full-rebuild`` for ``world.rebuilt()`` on the same
    partition.  ``meta["speedup_p50"]`` records rebuild/p50 per cell
    count; the committed bench asserts it exceeds 1 at 8 cells.

    The world is a ring of densely connected clusters joined by single
    bridge edges — the community structure partitioned serving targets
    (and the one ``sharded_memory`` measures): per-cell tables carry
    most of the pre-processing weight while the border tier stays thin.
    On a graph with no locality every node is a border node and the
    shared border recompute hides the per-cell saving; here it cannot.
    """
    import random as _random
    import time as _time

    from repro.graph.builder import GraphBuilder
    from repro.world import MutableWorld

    rng = _random.Random(seed)
    builder = GraphBuilder()
    pool = ("pub", "mall", "cafe", "park", "imax")
    num_nodes = num_clusters * cluster_size
    for cluster in range(num_clusters):
        for position in range(cluster_size):
            builder.add_node(
                keywords=rng.sample(pool, rng.randint(0, 2)),
                x=float(cluster * 10 + position % 5),
                y=float(position // 5),
            )
    edges = set()

    def link(u: int, v: int) -> None:
        if u != v and (u, v) not in edges:
            edges.add((u, v))
            edges.add((v, u))
            obj = 1.0 + 3.0 * rng.random()
            bud = 1.0 + 3.0 * rng.random()
            builder.add_edge(u, v, obj, bud)
            builder.add_edge(v, u, obj, bud)

    for cluster in range(num_clusters):
        base = cluster * cluster_size
        # A ring inside the cluster keeps it connected, then random
        # chords make the intra-cluster tables the dominant prep cost.
        for position in range(cluster_size):
            link(base + position, base + (position + 1) % cluster_size)
        for _ in range(cluster_size * 3):
            link(base + rng.randrange(cluster_size), base + rng.randrange(cluster_size))
        # One bridge to the next cluster: the only border crossing.
        link(base, ((cluster + 1) % num_clusters) * cluster_size)
    graph = builder.build()

    xs: list[int] = []
    p50_ms: list[float] = []
    p95_ms: list[float] = []
    rebuild_ms: list[float] = []
    meta: dict = {
        "num_nodes": num_nodes,
        "num_updates": num_updates,
        "speedup_p50": {},
    }
    for cells in cell_counts:
        world = MutableWorld(graph, num_cells=cells, seed=0)
        cell_of = world.partition.cell_of
        intra = [
            (u, v)
            for u in range(num_nodes)
            for v, _obj, _bud in world.graph.out_edges(u)
            if cell_of[u] == cell_of[v]
        ]
        durations = []
        for _ in range(num_updates):
            u, v = intra[rng.randrange(len(intra))]
            cost = 1.0 + 3.0 * rng.random()
            begin = _time.perf_counter()
            world.update_edge_cost(u, v, objective=cost, budget=cost)
            durations.append((_time.perf_counter() - begin) * 1000.0)
        durations.sort()
        p50 = durations[len(durations) // 2]
        p95 = durations[min(len(durations) - 1, int(0.95 * len(durations)))]

        begin = _time.perf_counter()
        world.rebuilt()
        rebuild = (_time.perf_counter() - begin) * 1000.0

        xs.append(cells)
        p50_ms.append(p50)
        p95_ms.append(p95)
        rebuild_ms.append(rebuild)
        meta["speedup_p50"][str(cells)] = rebuild / p50 if p50 > 0 else float("inf")

    return ExperimentResult(
        figure="update_latency",
        title="Graph-update repair latency vs full rebuild",
        x_name="num_cells",
        xs=xs,
        series={
            "Repair-p50": p50_ms,
            "Repair-p95": p95_ms,
            "Full-rebuild": rebuild_ms,
        },
        y_name="ms / update",
        notes=(
            f"{num_clusters} clusters x {cluster_size} nodes, single bridge "
            "edges ({} nodes total); each update re-costs one intra-cell "
            "edge (one cell's tables + the border tier repaired); "
            "Full-rebuild is world.rebuilt() on the same partition".format(
                num_nodes
            )
        ),
        meta=meta,
    )


# ----------------------------------------------------------------------
# everything, for run_all.py
# ----------------------------------------------------------------------

def all_experiments() -> list:
    """The callables regenerating every figure, in paper order."""
    return [
        fig04_runtime_vs_keywords,
        fig05_runtime_vs_budget,
        fig06_runtime_vs_epsilon,
        fig07_ratio_vs_epsilon,
        fig08_runtime_vs_beta,
        fig09_ratio_vs_beta,
        fig10_ratio_vs_keywords,
        fig11_ratio_vs_budget,
        fig12_ratio_vs_alpha,
        fig13_failure_vs_alpha,
        fig14_runtime_equal_bound,
        fig15_ratio_equal_bound,
        fig16_topk_runtime,
        fig17_scalability,
        fig18_road_runtime_vs_keywords,
        fig19_road_runtime_vs_budget,
        ablation_opt_strategies,
        ablation_epsilon_labels,
        ablation_partition,
        ablation_disk_index,
        service_throughput,
        sharded_throughput,
        border_heavy_throughput,
        async_throughput,
        kernel_throughput,
        sharded_wave_throughput,
        sharded_memory,
        update_latency,
    ]
