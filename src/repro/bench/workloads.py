"""Cached benchmark workloads (paper Section 4.1).

A :class:`Workload` bundles a graph with its pre-processed cost tables,
inverted index and query sets.  Building one is expensive (all-pairs
shortest paths dominate), so module-level caches hand every experiment the
same instance.

Two environment variables resize the whole benchmark suite without code
changes:

* ``KOR_BENCH_QUERIES`` — queries per set (default 12; the paper uses 50);
* ``KOR_BENCH_SCALE``   — ``small`` | ``default`` | ``paper``; scales the
  synthetic datasets (``paper`` approaches the published sizes and takes
  correspondingly longer).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.engine import KOREngine
from repro.datasets.flickr import FlickrConfig, build_flickr_graph
from repro.datasets.photos import PhotoStreamConfig
from repro.datasets.queries import QuerySetConfig, generate_query_set
from repro.datasets.road import RoadConfig, build_road_graph
from repro.core.query import KORQuery
from repro.graph.digraph import SpatialKeywordGraph

__all__ = [
    "Workload",
    "bench_num_queries",
    "bench_scale",
    "flickr_workload",
    "road_workload",
    "clear_caches",
    "KEYWORD_COUNTS",
    "FLICKR_DELTAS",
    "ROAD_DELTAS",
]

#: The paper's query-set battery: five sets with 2..10 keywords.
KEYWORD_COUNTS: tuple[int, ...] = (2, 4, 6, 8, 10)
#: The paper's budget sweep on the Flickr graph (km).
FLICKR_DELTAS: tuple[float, ...] = (3.0, 6.0, 9.0, 12.0, 15.0)
#: Budget sweep on the road graphs; the paper uses Delta = 30 km there.
ROAD_DELTAS: tuple[float, ...] = (10.0, 15.0, 20.0, 25.0, 30.0)


def bench_num_queries() -> int:
    """Queries per set, from ``KOR_BENCH_QUERIES`` (default 12)."""
    return max(1, int(os.environ.get("KOR_BENCH_QUERIES", "12")))


def bench_scale() -> str:
    """Dataset scale, from ``KOR_BENCH_SCALE`` (default ``default``)."""
    scale = os.environ.get("KOR_BENCH_SCALE", "default")
    if scale not in ("small", "default", "paper"):
        raise ValueError(f"KOR_BENCH_SCALE must be small/default/paper, got {scale!r}")
    return scale


@dataclass
class Workload:
    """A graph plus everything the experiments need to query it."""

    name: str
    graph: SpatialKeywordGraph
    engine: KOREngine
    #: Per-keyword-count default Delta used when the sweep fixes keywords.
    default_delta: float
    _query_sets: dict[tuple[int, float, int], list[KORQuery]] = field(
        default_factory=dict, repr=False
    )

    def query_set(
        self,
        num_keywords: int,
        delta: float | None = None,
        num_queries: int | None = None,
        seed: int = 0,
    ) -> list[KORQuery]:
        """The cached query set for ``(num_keywords, delta)``.

        Follows the paper's generation recipe (random endpoints, keywords
        from the dataset vocabulary) with the feasibility screens described
        in DESIGN.md so benchmark numbers measure the search, not trivially
        impossible draws.
        """
        delta = self.default_delta if delta is None else float(delta)
        num_queries = bench_num_queries() if num_queries is None else num_queries
        key = (num_keywords, delta, num_queries)
        cached = self._query_sets.get(key)
        if cached is None:
            config = QuerySetConfig(
                num_queries=num_queries,
                num_keywords=num_keywords,
                budget_limit=delta,
                max_sigma_fraction=0.5,
                min_document_frequency=max(2, int(0.02 * self.graph.num_nodes)),
                seed=seed + num_keywords * 1009 + int(delta * 31),
            )
            cached = generate_query_set(
                self.graph, self.engine.index, config, tables=self.engine.tables
            )
            self._query_sets[key] = cached
        return cached


_FLICKR_CACHE: dict[str, Workload] = {}
_ROAD_CACHE: dict[tuple[str, int], Workload] = {}


def flickr_workload(scale: str | None = None) -> Workload:
    """The Flickr-like workload (paper's first dataset), cached per scale."""
    scale = bench_scale() if scale is None else scale
    cached = _FLICKR_CACHE.get(scale)
    if cached is None:
        config = _flickr_config(scale)
        dataset = build_flickr_graph(config)
        engine = KOREngine(dataset.graph)
        cached = Workload(
            name=f"flickr-{scale}",
            graph=dataset.graph,
            engine=engine,
            default_delta=6.0,
        )
        _FLICKR_CACHE[scale] = cached
    return cached


def road_workload(num_nodes: int, scale: str | None = None) -> Workload:
    """A road-network workload with roughly *num_nodes* nodes, cached."""
    scale = bench_scale() if scale is None else scale
    key = (scale, num_nodes)
    cached = _ROAD_CACHE.get(key)
    if cached is None:
        graph = build_road_graph(RoadConfig(num_nodes=num_nodes, seed=num_nodes))
        engine = KOREngine(graph)
        cached = Workload(
            name=f"road-{num_nodes}",
            graph=graph,
            engine=engine,
            default_delta=20.0,
        )
        _ROAD_CACHE[key] = cached
    return cached


def road_sizes(scale: str | None = None) -> tuple[int, ...]:
    """Node counts for the scalability sweep (paper: 5k/10k/15k/20k)."""
    scale = bench_scale() if scale is None else scale
    if scale == "small":
        return (500, 1000, 1500, 2000)
    if scale == "paper":
        return (5000, 10000, 15000, 20000)
    return (1000, 2000, 4000, 6000)


def road_default_size(scale: str | None = None) -> int:
    """The road graph used by the fixed-size road experiments (paper: 5k)."""
    scale = bench_scale() if scale is None else scale
    return {"small": 1000, "default": 2000, "paper": 5000}[scale]


def clear_caches() -> None:
    """Drop every cached workload (tests use this to bound memory)."""
    _FLICKR_CACHE.clear()
    _ROAD_CACHE.clear()


def _flickr_config(scale: str) -> FlickrConfig:
    if scale == "small":
        stream = PhotoStreamConfig(num_users=200, num_hotspots=80)
    elif scale == "paper":
        stream = PhotoStreamConfig(
            num_users=2500,
            num_hotspots=900,
            extent_km=(8.0, 8.0),
            photos_per_user=(20, 90),
        )
    else:
        stream = PhotoStreamConfig()
    return FlickrConfig(photo_stream=stream)
