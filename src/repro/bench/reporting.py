"""Plain-text / markdown / JSON emitters for experiment series.

The paper presents line charts; a reproduction without a display renders
the same series as fixed-width tables (one row per x value, one column
per algorithm).  ``render_table`` is deliberately dependency-free so the
output lands verbatim in EXPERIMENTS.md and terminal logs.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

__all__ = ["render_table", "render_markdown", "save_json", "format_value"]


def format_value(value: float | str) -> str:
    """Human-friendly rendering of one cell."""
    if isinstance(value, str):
        return value
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:.0f}"
        if magnitude >= 10:
            return f"{value:.1f}"
        if magnitude >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    return str(value)


def render_table(
    title: str,
    x_name: str,
    xs: list,
    series: dict[str, list[float]],
    y_name: str = "value",
    notes: str = "",
) -> str:
    """Fixed-width text table: one row per x, one column per series."""
    headers = [x_name] + list(series)
    columns = [[format_value(x) for x in xs]] + [
        [format_value(v) for v in values] for values in series.values()
    ]
    widths = [
        max(len(header), *(len(cell) for cell in column)) if column else len(header)
        for header, column in zip(headers, columns)
    ]
    lines = [title, f"({y_name})"]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in range(len(xs)):
        lines.append(
            "  ".join(column[row].ljust(w) for column, w in zip(columns, widths))
        )
    if notes:
        lines.append(f"note: {notes}")
    return "\n".join(lines) + "\n"


def render_markdown(
    title: str,
    x_name: str,
    xs: list,
    series: dict[str, list[float]],
    notes: str = "",
) -> str:
    """The same table as GitHub-flavoured markdown."""
    headers = [x_name] + list(series)
    lines = [f"**{title}**", ""]
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row, x in enumerate(xs):
        cells = [format_value(x)] + [
            format_value(values[row]) for values in series.values()
        ]
        lines.append("| " + " | ".join(cells) + " |")
    if notes:
        lines.append("")
        lines.append(f"_{notes}_")
    return "\n".join(lines) + "\n"


def save_json(path: str | Path, payload: dict) -> None:
    """Write *payload* as indented JSON (NaN encoded as null)."""
    def _clean(value):
        if isinstance(value, float) and math.isnan(value):
            return None
        if isinstance(value, dict):
            return {k: _clean(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [_clean(v) for v in value]
        return value

    Path(path).write_text(json.dumps(_clean(payload), indent=2) + "\n")
