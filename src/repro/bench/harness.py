"""Timing and aggregation primitives for the experiments.

The paper reports three kinds of numbers, and this module computes all of
them from the same per-query records:

* **runtime** — average wall-clock per query of one algorithm over one
  query set (Figures 4-6, 8, 14, 16-19);
* **relative ratio** — mean of ``OS(found) / OS(base)`` over the queries
  where both the algorithm and the base produced feasible routes, the
  base being OSScaling at ``eps = 0.1`` exactly as in Section 4.2.2
  (Figures 7, 9-12, 15);
* **failure percentage** — share of queries with a feasible solution on
  which a heuristic failed to find one (Figure 13).

Beyond the paper, :func:`run_service_query_set` times the serving layer
(:class:`repro.service.QueryService`) over the same query sets, pairing
the per-query outcomes with the service's p50/p95/hit-rate/throughput
snapshot so benchmarks can report serving-mode numbers next to the
single-query ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.engine import KOREngine
from repro.core.query import KORQuery

__all__ = [
    "QueryOutcome",
    "RunSummary",
    "ServiceRunSummary",
    "run_query_set",
    "run_service_query_set",
    "relative_ratio",
    "failure_percentage",
]


@dataclass(frozen=True)
class QueryOutcome:
    """One algorithm's outcome on one query."""

    query: KORQuery
    feasible: bool
    objective_score: float
    budget_score: float
    runtime_seconds: float
    labels_created: int = 0


@dataclass(frozen=True)
class RunSummary:
    """Aggregates of one algorithm over one query set."""

    algorithm: str
    outcomes: tuple[QueryOutcome, ...]

    @property
    def mean_runtime_ms(self) -> float:
        """Average per-query wall clock in milliseconds."""
        if not self.outcomes:
            return 0.0
        return 1000.0 * sum(o.runtime_seconds for o in self.outcomes) / len(self.outcomes)

    @property
    def feasible_count(self) -> int:
        """Queries answered with a feasible route."""
        return sum(o.feasible for o in self.outcomes)

    @property
    def total(self) -> int:
        """Number of queries run."""
        return len(self.outcomes)


def run_query_set(
    engine: KOREngine,
    queries: list[KORQuery],
    algorithm: str,
    **params,
) -> RunSummary:
    """Run *algorithm* over every query, recording time and outcome."""
    outcomes: list[QueryOutcome] = []
    for query in queries:
        begin = time.perf_counter()
        result = engine.run(query, algorithm=algorithm, **params)
        elapsed = time.perf_counter() - begin
        outcomes.append(
            QueryOutcome(
                query=query,
                feasible=result.feasible,
                objective_score=result.objective_score,
                budget_score=result.budget_score,
                runtime_seconds=elapsed,
                labels_created=result.stats.labels_created,
            )
        )
    return RunSummary(algorithm=algorithm, outcomes=tuple(outcomes))


@dataclass(frozen=True)
class ServiceRunSummary:
    """A :class:`RunSummary` plus the serving-layer metrics behind it.

    ``wall_seconds`` is the whole batch's wall clock (what a client
    waiting on the batch observed); ``snapshot`` carries p50/p95 latency,
    cache hit rate and throughput as the service recorded them.
    """

    summary: RunSummary
    wall_seconds: float
    snapshot: "object"  # repro.service.stats.StatsSnapshot

    @property
    def throughput_qps(self) -> float:
        """Completed queries per second of batch wall time."""
        if self.wall_seconds <= 0.0:
            return float("inf") if self.summary.total else 0.0
        return self.summary.total / self.wall_seconds


def run_service_query_set(
    service,
    queries: list[KORQuery],
    algorithm: str,
    workers: int | None = None,
    **params,
) -> ServiceRunSummary:
    """Serve *queries* as one batch through a ``QueryService``.

    The per-query runtimes in the returned summary are the service's
    recorded latencies: near-zero for cache hits, compute time for
    misses — so a ``RunSummary`` of a warm service shows what repeat
    traffic actually costs.
    """
    report = service.execute(queries, algorithm=algorithm, workers=workers, **params)
    outcomes = []
    for item in report.items:
        if not item.ok:
            raise item.error
        result = item.result
        outcomes.append(
            QueryOutcome(
                query=item.query,
                feasible=result.feasible,
                objective_score=result.objective_score,
                budget_score=result.budget_score,
                runtime_seconds=item.latency_seconds,
                labels_created=result.stats.labels_created,
            )
        )
    return ServiceRunSummary(
        summary=RunSummary(algorithm=algorithm, outcomes=tuple(outcomes)),
        wall_seconds=report.wall_seconds,
        snapshot=service.snapshot(),
    )


def relative_ratio(summary: RunSummary, base: RunSummary) -> float:
    """Mean ``OS / OS_base`` over queries feasible in both runs.

    This is Section 4.2.2's measure; it is ``nan`` when no query is
    feasible under both runs.  Ratios are clipped below at 1e-12 base
    scores to avoid dividing by zero on degenerate graphs.
    """
    ratios = [
        outcome.objective_score / max(base_outcome.objective_score, 1e-12)
        for outcome, base_outcome in zip(summary.outcomes, base.outcomes)
        if outcome.feasible and base_outcome.feasible
    ]
    if not ratios:
        return float("nan")
    return sum(ratios) / len(ratios)


def failure_percentage(summary: RunSummary, base: RunSummary) -> float:
    """Share (%) of base-feasible queries the algorithm failed on.

    The paper counts greedy failures only over "the set of queries with
    feasible solutions", certified here by the base run (OSScaling or
    BucketBound always find a feasible route when one exists).
    """
    solvable = [
        outcome
        for outcome, base_outcome in zip(summary.outcomes, base.outcomes)
        if base_outcome.feasible
    ]
    if not solvable:
        return 0.0
    failures = sum(not outcome.feasible for outcome in solvable)
    return 100.0 * failures / len(solvable)
