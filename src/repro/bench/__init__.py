"""Benchmark harness reproducing the paper's evaluation (Section 4).

The package splits into four layers:

* :mod:`repro.bench.workloads` — cached datasets, engines and query sets
  (building the Flickr-like graph and its all-pairs tables takes seconds;
  every experiment shares one copy);
* :mod:`repro.bench.harness` — timing/aggregation primitives: run one
  algorithm over one query set, compute relative ratios and failure rates;
* :mod:`repro.bench.experiments` — one function per paper figure
  (Figures 4-19) plus the ablations called out in DESIGN.md, each
  returning an :class:`~repro.bench.experiments.ExperimentResult`;
* :mod:`repro.bench.reporting` — fixed-width text / markdown / JSON
  emitters for the result series.

``python benchmarks/run_all.py`` regenerates every figure into
``results/``; ``pytest benchmarks/ --benchmark-only`` runs the
pytest-benchmark harness over representative cells.
"""

from repro.bench.experiments import ExperimentResult
from repro.bench.harness import QueryOutcome, RunSummary, run_query_set
from repro.bench.workloads import Workload, flickr_workload, road_workload

__all__ = [
    "ExperimentResult",
    "QueryOutcome",
    "RunSummary",
    "Workload",
    "flickr_workload",
    "road_workload",
    "run_query_set",
]
