"""Exact baselines.

Two flavours:

* :func:`exhaustive_search` — the naive search sketched at the start of
  Section 3.2: enumerate every budget-feasible walk from the source.
  Complexity ``O(d^(Delta/b_min))``; usable only on toy graphs, but it is
  entirely independent of the label/table machinery, which makes it the
  perfect oracle for property-based tests.
* :func:`branch_and_bound` — Algorithm 1 run *unscaled* (``exact=True``):
  domination on true objective scores plus the admissible tau/sigma
  pruning.  Exact, and fast enough for hundreds of nodes; used to verify
  the Theorem 2/3 approximation bounds empirically.
"""

from __future__ import annotations

import time
from collections import deque

from repro.core.deadline import Deadline
from repro.core.osscaling import os_scaling
from repro.core.query import KORQuery, QueryBinding
from repro.core.results import KORResult, SearchStats
from repro.core.route import Route
from repro.graph.digraph import SpatialKeywordGraph
from repro.index.inverted import InvertedIndex
from repro.prep.tables import CostTables

__all__ = ["exhaustive_search", "branch_and_bound"]


def exhaustive_search(
    graph: SpatialKeywordGraph,
    index: InvertedIndex,
    query: KORQuery,
    max_expansions: int = 2_000_000,
    binding: QueryBinding | None = None,
    deadline: Deadline | None = None,
) -> KORResult:
    """Enumerate every budget-feasible walk; return the true optimum.

    Raises ``RuntimeError`` after *max_expansions* queue pops, which keeps
    accidental use on non-toy inputs from hanging the test suite.
    """
    start = time.perf_counter()
    stats = SearchStats()
    if binding is None:
        binding = QueryBinding.bind(graph, index, query)
    delta = query.budget_limit
    full_mask = binding.full_mask

    best: tuple[float, float, tuple[int, ...]] | None = None
    source_mask = binding.node_mask(query.source)
    queue: deque[tuple[int, int, float, float, tuple[int, ...]]] = deque(
        [(query.source, source_mask, 0.0, 0.0, (query.source,))]
    )
    expansions = 0
    while queue:
        if deadline is not None:
            deadline.tick()
        node, mask, os_score, bs_score, path = queue.popleft()
        expansions += 1
        if expansions > max_expansions:
            raise RuntimeError(
                f"exhaustive search exceeded {max_expansions} expansions; "
                "use branch_and_bound for anything beyond toy graphs"
            )
        if node == query.target and mask == full_mask:
            key = (os_score, bs_score, path)
            if best is None or key < best:
                best = key
        for v, obj, bud in graph.out_edges(node):
            new_bs = bs_score + bud
            if new_bs > delta:
                stats.labels_pruned_budget += 1
                continue
            queue.append((v, mask | binding.node_mask(v), os_score + obj, new_bs, path + (v,)))
            stats.labels_created += 1

    stats.loops = expansions
    stats.runtime_seconds = time.perf_counter() - start
    if best is None:
        return KORResult(
            query=query,
            algorithm="exhaustive",
            route=None,
            covers_keywords=False,
            within_budget=False,
            stats=stats,
            failure_reason="no feasible route exists",
        )
    os_score, bs_score, path = best
    route = Route.from_nodes(graph, path)
    return KORResult(
        query=query,
        algorithm="exhaustive",
        route=route,
        covers_keywords=True,
        within_budget=True,
        stats=stats,
    )


def branch_and_bound(
    graph: SpatialKeywordGraph,
    tables: CostTables,
    index: InvertedIndex,
    query: KORQuery,
    use_strategy1: bool = True,
    use_strategy2: bool = True,
    binding: QueryBinding | None = None,
    deadline: Deadline | None = None,
) -> KORResult:
    """Exact KOR via the unscaled label search (Algorithm 1, theta -> 0).

    Domination on true objective scores never discards all optimal
    prefixes, and every prune is admissible, so the returned route is a
    true optimum (or "no feasible route" is proven).
    """
    return os_scaling(
        graph,
        tables,
        index,
        query,
        use_strategy1=use_strategy1,
        use_strategy2=use_strategy2,
        exact=True,
        binding=binding,
        deadline=deadline,
    )
