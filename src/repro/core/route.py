"""Route value objects (Definitions 2 and 3 of the paper).

A route is a *walk*: node repetitions are allowed.  The paper is explicit
that enumerating simple paths is not enough for KOR — an optimal solution
may revisit nodes (e.g. detour to a keyword node and come back).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import GraphError
from repro.graph.digraph import SpatialKeywordGraph

__all__ = ["Route"]


@dataclass(frozen=True)
class Route:
    """An immutable route with its pre-computed scores.

    ``objective_score`` and ``budget_score`` are ``OS(R)`` and ``BS(R)``
    of Definition 3 — sums of the respective edge weights along ``nodes``.
    """

    nodes: tuple[int, ...]
    objective_score: float
    budget_score: float

    @classmethod
    def from_nodes(
        cls, graph: SpatialKeywordGraph, nodes: list[int] | tuple[int, ...]
    ) -> "Route":
        """Score an explicit node sequence against *graph*.

        Raises :class:`GraphError` when a consecutive pair is not an edge.
        """
        nodes = tuple(int(v) for v in nodes)
        if not nodes:
            raise GraphError("a route needs at least one node")
        objective = 0.0
        budget = 0.0
        for u, v in zip(nodes, nodes[1:]):
            obj, bud = graph.edge(u, v)
            objective += obj
            budget += bud
        return cls(nodes=nodes, objective_score=objective, budget_score=budget)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def source(self) -> int:
        """First node of the route."""
        return self.nodes[0]

    @property
    def target(self) -> int:
        """Last node of the route."""
        return self.nodes[-1]

    @property
    def num_edges(self) -> int:
        """Number of edges traversed (0 for a single-node route)."""
        return len(self.nodes) - 1

    def covered_keywords(self, graph: SpatialKeywordGraph) -> frozenset[int]:
        """Union of keyword ids over every node on the route."""
        covered: set[int] = set()
        for node in self.nodes:
            covered |= graph.node_keywords(node)
        return frozenset(covered)

    def covered_keyword_strings(self, graph: SpatialKeywordGraph) -> frozenset[str]:
        """Union of keyword strings over every node on the route."""
        return graph.keyword_table.words_of(self.covered_keywords(graph))

    def covers(self, graph: SpatialKeywordGraph, keywords: tuple[str, ...]) -> bool:
        """Whether the route covers every keyword in *keywords*."""
        table = graph.keyword_table
        covered = self.covered_keywords(graph)
        for word in keywords:
            kid = table.get(word)
            if kid is None or kid not in covered:
                return False
        return True

    def describe(self, graph: SpatialKeywordGraph) -> str:
        """One-line human-readable rendering, e.g. ``v0 -> v3 -> v7``."""
        names = " -> ".join(graph.name_of(v) for v in self.nodes)
        return f"{names}  (OS={self.objective_score:.4g}, BS={self.budget_score:.4g})"
