"""BucketBound — the paper's second approximation algorithm (Algorithm 2).

Labels are organised in geometric *buckets* over their best possible
completion score ``LOW(L) = L.OS + OS(tau_{i,t})`` (Lemma 3): bucket
``B_r`` covers ``[beta^r * OS(tau_{s,t}), beta^{r+1} * OS(tau_{s,t}))``
(Definition 9).  The search always draws from the lowest non-empty bucket;
once a feasible route is found whose label sits in that same bucket, the
route provably shares a bucket with OSScaling's answer (Lemma 5), so the
algorithm stops immediately with approximation ratio ``beta / (1 - eps)``
(Theorem 3).

Deviations from the pseudocode, both documented in DESIGN.md: budget
comparisons use ``<= Delta`` (Definition 4's semantics), and the Lemma-5
termination test also runs when an all-covering label is *dequeued* from
the current bucket (the pseudocode only tests at generation time; by then
its bucket may not yet have been the lowest non-empty one, and the lemma's
precondition holds at dequeue just as well).
"""

from __future__ import annotations

import heapq
import math
import time
from bisect import bisect_right

import numpy as np

from repro.core.deadline import Deadline
from repro.core.label import VIA_EDGE, VIA_JUMP, Label, LabelStore, label_sort_key
from repro.core.query import KORQuery, QueryBinding
from repro.core.results import KORResult, SearchStats, SearchTrace
from repro.core.scaling import ScalingContext
from repro.core.searchbase import SearchContext
from repro.graph.digraph import SpatialKeywordGraph
from repro.index.inverted import InvertedIndex
from repro.prep.tables import CostTables

__all__ = ["bucket_bound", "BucketQueue"]


class BucketQueue:
    """Labels grouped in geometric buckets, each an order-8 min-heap.

    ``bucket_index`` maps ``LOW`` values to bucket numbers relative to the
    base score ``OS(tau_{s,t})``; drawing always happens from the lowest
    non-empty bucket (Algorithm 2 line 6).
    """

    def __init__(self, base: float, beta: float) -> None:
        if not beta > 1.0:
            raise ValueError(f"beta must be > 1, got {beta}")
        if not (base > 0.0 and math.isfinite(base)):
            raise ValueError(f"bucket base must be positive and finite, got {base}")
        self._base = base
        self._beta = float(beta)
        # Bucket edges ``base * beta^r``, grown on demand by iterative
        # multiplication.  Mapping LOW values onto buckets by searching this
        # one list (instead of ``floor(log(low/base)/log(beta) + fudge)``)
        # makes boundary values deterministic: a ``low`` landing *exactly* on
        # an edge always files in the bucket whose lower edge it is, on both
        # the scalar (`bisect`) and batched (`np.searchsorted`) paths,
        # because both search the very same float values.  The log/floor
        # formulation could disagree with itself by one bucket at edges
        # (``log``'s rounding vs the 1e-12 fudge) and with any vectorized
        # twin (``np.log`` need not round like ``math.log``).
        self._edges: list[float] = [base]
        self._edges_arr: np.ndarray | None = None
        self._buckets: dict[int, list[tuple[tuple[int, float, float, int], Label]]] = {}
        self._ids: list[int] = []  # heap of bucket numbers, lazily pruned
        self._opened = 0

    def _grow_edges(self, low: float) -> None:
        edges = self._edges
        if edges[-1] <= low:
            while edges[-1] <= low:
                edges.append(edges[-1] * self._beta)
            self._edges_arr = None  # stale; rebuilt by bucket_indices

    def bucket_index(self, low: float) -> int:
        """Definition 9's bucket number for a ``LOW`` value.

        Bucket ``r`` covers ``[base * beta^r, base * beta^(r+1))`` — closed
        below, open above — so an exact-edge ``low`` maps to the bucket it
        opens.
        """
        if low <= self._base:
            return 0
        if not math.isfinite(low):
            raise ValueError(f"bucket LOW values must be finite, got {low}")
        self._grow_edges(low)
        return bisect_right(self._edges, low) - 1

    def bucket_indices(self, lows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`bucket_index` over an array of ``LOW`` values.

        Searches the same cached edge list, so scalar and batched
        assignment agree bit-for-bit (including exact-edge values).
        """
        lows = np.asarray(lows, dtype=np.float64)
        if lows.size:
            finite = lows[np.isfinite(lows)]
            if finite.size != lows.size:
                raise ValueError("bucket LOW values must be finite")
            if finite.size:
                self._grow_edges(float(finite.max()))
        if self._edges_arr is None or len(self._edges_arr) != len(self._edges):
            self._edges_arr = np.asarray(self._edges, dtype=np.float64)
        return np.maximum(
            np.searchsorted(self._edges_arr, lows, side="right") - 1, 0
        ).astype(np.int64)

    def push(self, label: Label, low: float) -> int:
        """File *label* under its bucket; returns the bucket number."""
        index = self.bucket_index(low)
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = []
            self._buckets[index] = bucket
            heapq.heappush(self._ids, index)
            self._opened += 1
        heapq.heappush(bucket, (label_sort_key(label), label))
        return index

    def pop(self) -> tuple[int, Label] | None:
        """Remove and return ``(bucket_number, label)`` from the lowest
        non-empty bucket, skipping labels evicted by domination; ``None``
        when everything is exhausted (Algorithm 2 line 7)."""
        while self._ids:
            index = self._ids[0]
            bucket = self._buckets.get(index)
            while bucket:
                _key, label = heapq.heappop(bucket)
                if label.alive:
                    return index, label
            # Bucket ran dry: retire its id (it may be re-opened by push).
            heapq.heappop(self._ids)
            self._buckets.pop(index, None)
        return None

    def peek_bucket(self) -> int | None:
        """Bucket number the next :meth:`pop` would draw from (None = empty).

        Dead labels are drained lazily so the answer is exact.
        """
        while self._ids:
            index = self._ids[0]
            bucket = self._buckets.get(index)
            while bucket and not bucket[0][1].alive:
                heapq.heappop(bucket)
            if bucket:
                return index
            heapq.heappop(self._ids)
            self._buckets.pop(index, None)
        return None

    @property
    def buckets_opened(self) -> int:
        """How many distinct buckets were materialised (for stats)."""
        return self._opened


class _BucketBoundSearch:
    """One BucketBound run, advanced label by label (see
    :class:`repro.core.osscaling._OSScalingSearch` for the driver
    protocol — the scalar loop and the lockstep batch kernel share it)."""

    algorithm_family = "bucketbound"
    algorithm = "bucketbound"

    def __init__(
        self,
        graph: SpatialKeywordGraph,
        tables: CostTables,
        index: InvertedIndex,
        query: KORQuery,
        epsilon: float = 0.5,
        beta: float = 1.2,
        use_strategy1: bool = True,
        use_strategy2: bool = True,
        infrequent_threshold: float = 0.01,
        trace: SearchTrace | None = None,
        binding: QueryBinding | None = None,
        deadline: Deadline | None = None,
        shared=None,
    ) -> None:
        self._start = time.perf_counter()
        self.stats = SearchStats()
        self.query = query
        self.trace = trace
        self.deadline = deadline
        self.use_strategy1 = use_strategy1
        self.use_strategy2 = use_strategy2

        scaling = ScalingContext.for_query(graph, query.budget_limit, epsilon)
        self.ctx = SearchContext(
            graph,
            tables,
            index,
            query,
            scaling,
            infrequent_threshold=infrequent_threshold,
            binding=binding,
            shared=shared,
        )
        ctx = self.ctx
        self.delta = query.budget_limit
        self.full_mask = ctx.binding.full_mask

        # The answer candidate.  A label that covers every keyword and
        # whose tau-completion fits the budget is never extended — tau is
        # its best completion (Lemma 3) — so it is registered here instead
        # of entering the queue.  ``best_low`` is the smallest candidate
        # completion score ``L* = LOW(L)`` seen so far and ``r_hat`` its
        # bucket; once the draw frontier reaches ``r_hat``, Lemma 5's
        # precondition holds (all lower buckets empty, feasible route in
        # the current one) and the candidate is the answer.  Because
        # ``LOW`` is monotone along extensions (``OS(tau)`` is an
        # admissible completion bound), any label with ``LOW >= L*`` can
        # neither beat the candidate nor affect termination, so it is
        # dropped at creation on a single float compare — a strictly
        # stronger prune than the per-bucket one (anything in a bucket
        # beyond ``r_hat`` has ``LOW > L*``).  This eager reading of
        # Lemma 5 is where BucketBound's speed over OSScaling comes from.
        self.best_candidate: Label | None = None
        self.best_low = float("inf")
        self.r_hat = float("inf")
        self._early: KORResult | None = None
        self._done = False
        self.queue: BucketQueue | None = None
        self._store = LabelStore(graph.num_nodes)

        reason = ctx.impossibility_reason()
        if reason is not None:
            self._early = self._package(None, failure_reason=reason)
            return

        source = query.source
        root = ctx.root_label()
        if root.mask == self.full_mask and ctx.bs_tau_t_list[source] <= self.delta:
            self._early = self._package(root, trivial=True)
            return

        base = float(ctx.os_tau_t_list[source])
        if base <= 0.0:
            # Degenerate only when source == target (OS(tau_{s,s}) = 0);
            # any positive base keeps Definition 9 well-defined, and o_min
            # is the smallest LOW any non-trivial completion can have.
            base = graph.min_objective
        self.queue = BucketQueue(base, beta)
        self.queue.push(root, root.os + ctx.os_tau_t_list[source])
        self._store.insert(root)
        self.stats.labels_enqueued += 1

    # ------------------------------------------------------------------
    # driver protocol
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """Whether :meth:`pop` can still yield work."""
        return self._early is not None or self._done

    def pop(self, tick: bool = True) -> Label | None:
        """Next label from the lowest non-empty bucket, or ``None``.

        ``None`` signals Lemma 5's termination: every bucket below
        ``r_hat`` is empty and bucket ``r_hat`` holds a feasible route —
        or the queue is exhausted.
        """
        if self._early is not None or self._done:
            return None
        ctx = self.ctx
        queue = self.queue
        while True:
            if tick and self.deadline is not None:
                self.deadline.tick()
            frontier = queue.peek_bucket()
            if frontier is None or frontier >= self.r_hat:
                self._done = True
                return None
            _bucket, label = queue.pop()  # == frontier
            self.stats.loops += 1
            if self.trace is not None:
                self.trace.record(
                    "dequeue", label.node, label.mask, label.scaled_os, label.os, label.bs
                )
            if label.os + ctx.os_tau_t_list[label.node] >= self.best_low:
                # Filed before the current candidate existed; stale now.
                continue
            return label

    def step(self, label: Label) -> None:
        """Full scalar treatment of one dequeued label: edges then jump."""
        ctx = self.ctx
        for node, seg_os, seg_bs, seg_sos in ctx.scaled_out(label.node):
            self.consider(label, node, seg_os, seg_bs, seg_sos, VIA_EDGE)
        self.jump(label)

    def jump(self, label: Label) -> None:
        """Optimisation Strategy 1's extra extension for *label*."""
        if not self.use_strategy1 or label.mask == self.full_mask:
            return
        self.jump_from(label, self.ctx.jump_candidate(label))

    def jump_from(self, label: Label, jump: tuple[int, float, float] | None) -> None:
        """Apply a precomputed Strategy-1 candidate (see ``jump``).

        Split out so the batch kernels can evaluate candidates for a
        whole wave in one vector block and feed each member's winner
        back through the exact scalar bookkeeping.
        """
        if jump is not None:
            vj, seg_os, seg_bs = jump
            self.stats.jump_labels_created += 1
            self.consider(label, vj, seg_os, seg_bs, self.ctx.scaling.scale(seg_os), VIA_JUMP)

    # ------------------------------------------------------------------
    # label treatment
    # ------------------------------------------------------------------
    def consider(
        self, parent: Label, node: int, seg_os: float, seg_bs: float, seg_sos: float, via: int
    ) -> None:
        ctx = self.ctx
        stats = self.stats
        stats.labels_created += 1
        new_mask = parent.mask | ctx.binding.node_mask(node)
        new_os = parent.os + seg_os
        new_bs = parent.bs + seg_bs
        new_sos = parent.scaled_os + seg_sos
        if self.trace is not None:
            self.trace.record("create", node, new_mask, new_sos, new_os, new_bs)

        if new_bs + ctx.bs_sigma_t_list[node] > self.delta:
            stats.labels_pruned_budget += 1
            if self.trace is not None:
                self.trace.record("prune_budget", node, new_mask, new_sos, new_os, new_bs)
            return
        self.bound_and_treat(parent, node, new_mask, new_os, new_bs, new_sos, via)

    def bound_and_treat(
        self,
        parent: Label,
        node: int,
        new_mask: int,
        new_os: float,
        new_bs: float,
        new_sos: float,
        via: int,
    ) -> None:
        """Treatment from the LOW-prune onward, against the live bound.

        Kernel re-entry point — see
        :meth:`_OSScalingSearch.bound_and_treat
        <repro.core.osscaling._OSScalingSearch.bound_and_treat>`;
        ``best_low`` plays the role of ``U`` (both only tighten)."""
        ctx = self.ctx
        stats = self.stats
        low = new_os + ctx.os_tau_t_list[node]
        if low >= self.best_low:
            stats.labels_pruned_bound += 1
            if self.trace is not None:
                self.trace.record("prune_bound", node, new_mask, new_sos, new_os, new_bs)
            return
        if self.use_strategy2 and ctx.strategy2_rejects(node, new_mask, new_os, new_bs, self.best_low):
            stats.labels_pruned_strategy2 += 1
            return

        label = Label(node, new_mask, new_sos, new_os, new_bs, parent=parent, via=via)
        if self._store.is_dominated(label):
            stats.labels_pruned_dominated += 1
            if self.trace is not None:
                self.trace.record("prune_dominated", node, new_mask, new_sos, new_os, new_bs)
            return

        if new_mask == self.full_mask and new_bs + ctx.bs_tau_t_list[node] <= self.delta:
            # Feasible tau-completion: a new best candidate (low < best_low
            # is guaranteed by the prune above).
            self.best_candidate, self.best_low = label, low
            self.r_hat = self.queue.bucket_index(low)
            stats.bound_updates += 1
            if self.trace is not None:
                self.trace.record("bound_update", node, new_mask, new_sos, new_os, new_bs, low)
            return

        self.queue.push(label, low)
        self._store.insert(label, self._on_evict)
        stats.labels_enqueued += 1
        if self.trace is not None:
            self.trace.record("enqueue", node, new_mask, new_sos, new_os, new_bs, low)

    def _on_evict(self, _victim: Label) -> None:
        self.stats.labels_evicted += 1

    # ------------------------------------------------------------------
    # result
    # ------------------------------------------------------------------
    def result(self) -> KORResult:
        """Package the finished search (callable once drained)."""
        if self._early is not None:
            return self._early
        if self.best_candidate is None:
            return self._package(None, failure_reason="no feasible route exists")
        found = self.best_candidate
        if self.trace is not None:
            self.trace.record(
                "found", found.node, found.mask, found.scaled_os, found.os, found.bs, self.best_low
            )
        return self._package(found)

    def _package(
        self, final: Label | None, failure_reason: str | None = None, trivial: bool = False
    ) -> KORResult:
        if self.queue is not None:
            self.stats.buckets_opened = self.queue.buckets_opened
        if final is None:
            self.stats.runtime_seconds = time.perf_counter() - self._start
            return KORResult(
                query=self.query,
                algorithm="bucketbound",
                route=None,
                covers_keywords=False,
                within_budget=False,
                stats=self.stats,
                failure_reason=failure_reason,
            )
        route = self.ctx.materialize(final)
        self.stats.runtime_seconds = time.perf_counter() - self._start
        return KORResult(
            query=self.query,
            algorithm="bucketbound",
            route=route,
            covers_keywords=True,
            within_budget=True if trivial else route.budget_score <= self.delta + 1e-9,
            stats=self.stats,
        )


def bucket_bound(
    graph: SpatialKeywordGraph,
    tables: CostTables,
    index: InvertedIndex,
    query: KORQuery,
    epsilon: float = 0.5,
    beta: float = 1.2,
    use_strategy1: bool = True,
    use_strategy2: bool = True,
    infrequent_threshold: float = 0.01,
    trace: SearchTrace | None = None,
    binding: QueryBinding | None = None,
    deadline: Deadline | None = None,
) -> KORResult:
    """Answer *query* with Algorithm 2 (approximation ratio ``beta/(1-eps)``)."""
    search = _BucketBoundSearch(
        graph,
        tables,
        index,
        query,
        epsilon=epsilon,
        beta=beta,
        use_strategy1=use_strategy1,
        use_strategy2=use_strategy2,
        infrequent_threshold=infrequent_threshold,
        trace=trace,
        binding=binding,
        deadline=deadline,
    )
    while True:
        label = search.pop()
        if label is None:
            break
        search.step(label)
    return search.result()
