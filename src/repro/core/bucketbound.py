"""BucketBound — the paper's second approximation algorithm (Algorithm 2).

Labels are organised in geometric *buckets* over their best possible
completion score ``LOW(L) = L.OS + OS(tau_{i,t})`` (Lemma 3): bucket
``B_r`` covers ``[beta^r * OS(tau_{s,t}), beta^{r+1} * OS(tau_{s,t}))``
(Definition 9).  The search always draws from the lowest non-empty bucket;
once a feasible route is found whose label sits in that same bucket, the
route provably shares a bucket with OSScaling's answer (Lemma 5), so the
algorithm stops immediately with approximation ratio ``beta / (1 - eps)``
(Theorem 3).

Deviations from the pseudocode, both documented in DESIGN.md: budget
comparisons use ``<= Delta`` (Definition 4's semantics), and the Lemma-5
termination test also runs when an all-covering label is *dequeued* from
the current bucket (the pseudocode only tests at generation time; by then
its bucket may not yet have been the lowest non-empty one, and the lemma's
precondition holds at dequeue just as well).
"""

from __future__ import annotations

import heapq
import math
import time

from repro.core.deadline import Deadline
from repro.core.label import VIA_EDGE, VIA_JUMP, Label, LabelStore, label_sort_key
from repro.core.query import KORQuery, QueryBinding
from repro.core.results import KORResult, SearchStats, SearchTrace
from repro.core.scaling import ScalingContext
from repro.core.searchbase import SearchContext
from repro.graph.digraph import SpatialKeywordGraph
from repro.index.inverted import InvertedIndex
from repro.prep.tables import CostTables

__all__ = ["bucket_bound", "BucketQueue"]


class BucketQueue:
    """Labels grouped in geometric buckets, each an order-8 min-heap.

    ``bucket_index`` maps ``LOW`` values to bucket numbers relative to the
    base score ``OS(tau_{s,t})``; drawing always happens from the lowest
    non-empty bucket (Algorithm 2 line 6).
    """

    def __init__(self, base: float, beta: float) -> None:
        if not beta > 1.0:
            raise ValueError(f"beta must be > 1, got {beta}")
        if not (base > 0.0 and math.isfinite(base)):
            raise ValueError(f"bucket base must be positive and finite, got {base}")
        self._base = base
        self._log_beta = math.log(beta)
        self._buckets: dict[int, list[tuple[tuple[int, float, float, int], Label]]] = {}
        self._ids: list[int] = []  # heap of bucket numbers, lazily pruned
        self._opened = 0

    def bucket_index(self, low: float) -> int:
        """Definition 9's bucket number for a ``LOW`` value."""
        if low <= self._base:
            return 0
        return int(math.floor(math.log(low / self._base) / self._log_beta + 1e-12))

    def push(self, label: Label, low: float) -> int:
        """File *label* under its bucket; returns the bucket number."""
        index = self.bucket_index(low)
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = []
            self._buckets[index] = bucket
            heapq.heappush(self._ids, index)
            self._opened += 1
        heapq.heappush(bucket, (label_sort_key(label), label))
        return index

    def pop(self) -> tuple[int, Label] | None:
        """Remove and return ``(bucket_number, label)`` from the lowest
        non-empty bucket, skipping labels evicted by domination; ``None``
        when everything is exhausted (Algorithm 2 line 7)."""
        while self._ids:
            index = self._ids[0]
            bucket = self._buckets.get(index)
            while bucket:
                _key, label = heapq.heappop(bucket)
                if label.alive:
                    return index, label
            # Bucket ran dry: retire its id (it may be re-opened by push).
            heapq.heappop(self._ids)
            self._buckets.pop(index, None)
        return None

    def peek_bucket(self) -> int | None:
        """Bucket number the next :meth:`pop` would draw from (None = empty).

        Dead labels are drained lazily so the answer is exact.
        """
        while self._ids:
            index = self._ids[0]
            bucket = self._buckets.get(index)
            while bucket and not bucket[0][1].alive:
                heapq.heappop(bucket)
            if bucket:
                return index
            heapq.heappop(self._ids)
            self._buckets.pop(index, None)
        return None

    @property
    def buckets_opened(self) -> int:
        """How many distinct buckets were materialised (for stats)."""
        return self._opened


def bucket_bound(
    graph: SpatialKeywordGraph,
    tables: CostTables,
    index: InvertedIndex,
    query: KORQuery,
    epsilon: float = 0.5,
    beta: float = 1.2,
    use_strategy1: bool = True,
    use_strategy2: bool = True,
    infrequent_threshold: float = 0.01,
    trace: SearchTrace | None = None,
    binding: QueryBinding | None = None,
    deadline: Deadline | None = None,
) -> KORResult:
    """Answer *query* with Algorithm 2 (approximation ratio ``beta/(1-eps)``)."""
    start = time.perf_counter()
    stats = SearchStats()
    scaling = ScalingContext.for_query(graph, query.budget_limit, epsilon)
    ctx = SearchContext(
        graph,
        tables,
        index,
        query,
        scaling,
        infrequent_threshold=infrequent_threshold,
        binding=binding,
    )

    reason = ctx.impossibility_reason()
    if reason is not None:
        stats.runtime_seconds = time.perf_counter() - start
        return KORResult(
            query=query,
            algorithm="bucketbound",
            route=None,
            covers_keywords=False,
            within_budget=False,
            stats=stats,
            failure_reason=reason,
        )

    delta = query.budget_limit
    full_mask = ctx.binding.full_mask
    source = query.source

    root = ctx.root_label()
    if root.mask == full_mask and ctx.bs_tau_t_list[source] <= delta:
        route = ctx.materialize(root)
        stats.runtime_seconds = time.perf_counter() - start
        return KORResult(
            query=query,
            algorithm="bucketbound",
            route=route,
            covers_keywords=True,
            within_budget=True,
            stats=stats,
        )

    base = float(ctx.os_tau_t_list[source])
    if base <= 0.0:
        # Degenerate only when source == target (OS(tau_{s,s}) = 0); any
        # positive base keeps Definition 9 well-defined, and o_min is the
        # smallest LOW any non-trivial completion can have.
        base = graph.min_objective
    queue = BucketQueue(base, beta)
    store = LabelStore(graph.num_nodes)
    queue.push(root, root.os + ctx.os_tau_t_list[source])
    store.insert(root)
    stats.labels_enqueued += 1

    def on_evict(_victim: Label) -> None:
        stats.labels_evicted += 1

    # The answer candidate.  A label that covers every keyword and whose
    # tau-completion fits the budget is never extended — tau is its best
    # completion (Lemma 3) — so it is registered here instead of entering
    # the queue.  ``best_low`` is the smallest candidate completion score
    # ``L* = LOW(L)`` seen so far and ``r_hat`` its bucket; once the draw
    # frontier reaches ``r_hat``, Lemma 5's precondition holds (all lower
    # buckets empty, feasible route in the current one) and the candidate
    # is the answer.  Because ``LOW`` is monotone along extensions
    # (``OS(tau)`` is an admissible completion bound), any label with
    # ``LOW >= L*`` can neither beat the candidate nor affect termination,
    # so it is dropped at creation on a single float compare — a strictly
    # stronger prune than the per-bucket one (anything in a bucket beyond
    # ``r_hat`` has ``LOW > L*``).  This eager reading of Lemma 5 is where
    # BucketBound's speed over OSScaling comes from.
    best_candidate: Label | None = None
    best_low = float("inf")
    r_hat = float("inf")

    def consider(parent: Label, node: int, seg_os: float, seg_bs: float, seg_sos: float, via: int) -> None:
        nonlocal best_candidate, best_low, r_hat
        stats.labels_created += 1
        new_mask = parent.mask | ctx.binding.node_mask(node)
        new_os = parent.os + seg_os
        new_bs = parent.bs + seg_bs
        new_sos = parent.scaled_os + seg_sos
        if trace is not None:
            trace.record("create", node, new_mask, new_sos, new_os, new_bs)

        if new_bs + ctx.bs_sigma_t_list[node] > delta:
            stats.labels_pruned_budget += 1
            if trace is not None:
                trace.record("prune_budget", node, new_mask, new_sos, new_os, new_bs)
            return
        low = new_os + ctx.os_tau_t_list[node]
        if low >= best_low:
            stats.labels_pruned_bound += 1
            if trace is not None:
                trace.record("prune_bound", node, new_mask, new_sos, new_os, new_bs)
            return
        if use_strategy2 and ctx.strategy2_rejects(node, new_mask, new_os, new_bs, best_low):
            stats.labels_pruned_strategy2 += 1
            return

        label = Label(node, new_mask, new_sos, new_os, new_bs, parent=parent, via=via)
        if store.is_dominated(label):
            stats.labels_pruned_dominated += 1
            if trace is not None:
                trace.record("prune_dominated", node, new_mask, new_sos, new_os, new_bs)
            return

        if new_mask == full_mask and new_bs + ctx.bs_tau_t_list[node] <= delta:
            # Feasible tau-completion: a new best candidate (low < best_low
            # is guaranteed by the prune above).
            best_candidate, best_low = label, low
            r_hat = queue.bucket_index(low)
            stats.bound_updates += 1
            if trace is not None:
                trace.record("bound_update", node, new_mask, new_sos, new_os, new_bs, low)
            return

        queue.push(label, low)
        store.insert(label, on_evict)
        stats.labels_enqueued += 1
        if trace is not None:
            trace.record("enqueue", node, new_mask, new_sos, new_os, new_bs, low)

    while True:
        if deadline is not None:
            deadline.tick()
        frontier = queue.peek_bucket()
        if frontier is None or frontier >= r_hat:
            # Lemma 5: every bucket below r_hat is empty and bucket r_hat
            # holds a feasible route — or the queue is exhausted.
            break
        _bucket, label = queue.pop()  # == frontier
        stats.loops += 1
        if trace is not None:
            trace.record("dequeue", label.node, label.mask, label.scaled_os, label.os, label.bs)
        if label.os + ctx.os_tau_t_list[label.node] >= best_low:
            # Filed before the current candidate existed; stale now.
            continue

        for node, seg_os, seg_bs, seg_sos in ctx.scaled_out(label.node):
            consider(label, node, seg_os, seg_bs, seg_sos, VIA_EDGE)
        if use_strategy1 and label.mask != full_mask:
            jump = ctx.jump_candidate(label)
            if jump is not None:
                vj, seg_os, seg_bs = jump
                stats.jump_labels_created += 1
                consider(label, vj, seg_os, seg_bs, ctx.scaling.scale(seg_os), VIA_JUMP)

    if best_candidate is None:
        stats.buckets_opened = queue.buckets_opened
        stats.runtime_seconds = time.perf_counter() - start
        return KORResult(
            query=query,
            algorithm="bucketbound",
            route=None,
            covers_keywords=False,
            within_budget=False,
            stats=stats,
            failure_reason="no feasible route exists",
        )

    found = best_candidate
    if trace is not None:
        trace.record("found", found.node, found.mask, found.scaled_os, found.os, found.bs, best_low)
    route = ctx.materialize(found)
    stats.buckets_opened = queue.buckets_opened
    stats.runtime_seconds = time.perf_counter() - start
    return KORResult(
        query=query,
        algorithm="bucketbound",
        route=route,
        covers_keywords=True,
        within_budget=route.budget_score <= delta + 1e-9,
        stats=stats,
    )
