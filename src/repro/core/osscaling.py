"""OSScaling — the paper's first approximation algorithm (Algorithm 1).

A label-correcting search on the scaled graph ``G_S``: starting from the
source label, repeatedly dequeue the label with the lowest order
(Definition 8) and extend it along every out-edge (label treatment,
Definition 7).  New labels are pruned when

* they are dominated (on scaled objective!) by a label at the same node,
* the cheapest completion budget ``BS + BS(sigma_{j,t})`` already exceeds
  ``Delta``,
* the best completion objective ``OS + OS(tau_{j,t})`` cannot beat the
  current upper bound ``U``, or
* Optimisation Strategy 2's infrequent-keyword detour test fails.

When a new label covers the whole query and its objective-optimal
completion ``tau_{j,t}`` fits the budget, ``U`` improves and the label
(with that completion) becomes the incumbent answer; Theorem 2 guarantees
the returned route's objective is within ``1/(1-eps)`` of optimal.

With ``exact=True`` domination compares true objective scores, which turns
the search into an exact branch-and-bound (used as the ground-truth
baseline in :mod:`repro.core.bruteforce`).
"""

from __future__ import annotations

import heapq
import time

from repro.core.deadline import Deadline
from repro.core.label import VIA_EDGE, VIA_JUMP, Label, LabelStore, label_sort_key
from repro.core.query import KORQuery, QueryBinding
from repro.core.results import KORResult, SearchStats, SearchTrace
from repro.core.route import Route
from repro.core.scaling import ScalingContext
from repro.core.searchbase import SearchContext
from repro.graph.digraph import SpatialKeywordGraph
from repro.index.inverted import InvertedIndex
from repro.prep.tables import CostTables

__all__ = ["os_scaling"]


def os_scaling(
    graph: SpatialKeywordGraph,
    tables: CostTables,
    index: InvertedIndex,
    query: KORQuery,
    epsilon: float = 0.5,
    use_strategy1: bool = True,
    use_strategy2: bool = True,
    infrequent_threshold: float = 0.01,
    exact: bool = False,
    trace: SearchTrace | None = None,
    binding: QueryBinding | None = None,
    deadline: Deadline | None = None,
) -> KORResult:
    """Answer *query* with Algorithm 1.

    Parameters mirror the paper: ``epsilon`` trades accuracy for speed
    (Theorem 2 bound ``1/(1-eps)``); the two optimisation strategies can
    be toggled for ablations.  ``trace`` collects per-label events for the
    worked-example tests.  ``binding`` optionally reuses a pre-built
    query context (see :class:`repro.core.query.QueryBinding`).
    ``deadline`` arms the per-iteration cancellation checkpoint.
    """
    start = time.perf_counter()
    algorithm = "exact" if exact else "osscaling"
    stats = SearchStats()

    scaling = ScalingContext.for_query(graph, query.budget_limit, epsilon, exact=exact)
    ctx = SearchContext(
        graph,
        tables,
        index,
        query,
        scaling,
        infrequent_threshold=infrequent_threshold,
        binding=binding,
    )

    reason = ctx.impossibility_reason()
    if reason is not None:
        stats.runtime_seconds = time.perf_counter() - start
        return KORResult(
            query=query,
            algorithm=algorithm,
            route=None,
            covers_keywords=False,
            within_budget=False,
            stats=stats,
            failure_reason=reason,
        )

    delta = query.budget_limit
    full_mask = ctx.binding.full_mask
    source = query.source

    root = ctx.root_label()
    if root.mask == full_mask and ctx.bs_tau_t_list[source] <= delta:
        # The source (plus the target, via tau's endpoints) already covers
        # every keyword and the objective-optimal completion fits the
        # budget: tau_{s,t} is globally objective-optimal, so it is *the*
        # optimum — no search needed.
        route = ctx.materialize(root)
        stats.runtime_seconds = time.perf_counter() - start
        return KORResult(
            query=query,
            algorithm=algorithm,
            route=route,
            covers_keywords=True,
            within_budget=True,
            stats=stats,
        )

    upper = float("inf")
    incumbent: Label | None = None
    store = LabelStore(graph.num_nodes)
    heap: list[tuple[tuple[int, float, float, int], Label]] = []
    heapq.heappush(heap, (label_sort_key(root), root))
    store.insert(root)
    stats.labels_enqueued += 1

    def on_evict(_victim: Label) -> None:
        stats.labels_evicted += 1

    def consider(parent: Label, node: int, seg_os: float, seg_bs: float, seg_sos: float, via: int) -> None:
        """Label treatment (Definition 7) plus Algorithm 1 line 10 checks."""
        nonlocal upper, incumbent
        stats.labels_created += 1
        new_mask = parent.mask | ctx.binding.node_mask(node)
        new_os = parent.os + seg_os
        new_bs = parent.bs + seg_bs
        new_sos = parent.scaled_os + seg_sos
        if trace is not None:
            trace.record("create", node, new_mask, new_sos, new_os, new_bs)

        if new_bs + ctx.bs_sigma_t_list[node] > delta:
            stats.labels_pruned_budget += 1
            if trace is not None:
                trace.record("prune_budget", node, new_mask, new_sos, new_os, new_bs)
            return
        if not (new_os + ctx.os_tau_t_list[node] < upper):
            stats.labels_pruned_bound += 1
            if trace is not None:
                trace.record("prune_bound", node, new_mask, new_sos, new_os, new_bs)
            return
        if use_strategy2 and ctx.strategy2_rejects(node, new_mask, new_os, new_bs, upper):
            stats.labels_pruned_strategy2 += 1
            if trace is not None:
                trace.record("prune_strategy2", node, new_mask, new_sos, new_os, new_bs)
            return

        label = Label(node, new_mask, new_sos, new_os, new_bs, parent=parent, via=via)
        if store.is_dominated(label):
            stats.labels_pruned_dominated += 1
            if trace is not None:
                trace.record("prune_dominated", node, new_mask, new_sos, new_os, new_bs)
            return

        if new_mask == full_mask:
            if new_bs + ctx.bs_tau_t_list[node] <= delta:
                # Feasible completion via tau_{j,t}: update the upper bound
                # and the incumbent (lines 17-19); the label is consumed —
                # tau is its best possible completion (Lemma 3), so no
                # extension of it can improve on the recorded route.
                upper = new_os + ctx.os_tau_t_list[node]
                incumbent = label
                stats.bound_updates += 1
                if trace is not None:
                    trace.record("bound_update", node, new_mask, new_sos, new_os, new_bs, upper)
                return
            # Covers everything but tau's budget does not fit: keep
            # searching from it (line 20).
            heapq.heappush(heap, (label_sort_key(label), label))
            store.insert(label, on_evict)
            stats.labels_enqueued += 1
            if trace is not None:
                trace.record("enqueue", node, new_mask, new_sos, new_os, new_bs)
            return

        heapq.heappush(heap, (label_sort_key(label), label))
        store.insert(label, on_evict)
        stats.labels_enqueued += 1
        if trace is not None:
            trace.record("enqueue", node, new_mask, new_sos, new_os, new_bs)

    while heap:
        if deadline is not None:
            deadline.tick()
        _key, label = heapq.heappop(heap)
        if not label.alive:
            continue
        stats.loops += 1
        if trace is not None:
            trace.record("dequeue", label.node, label.mask, label.scaled_os, label.os, label.bs)
        # Line 7: the label cannot contribute once its admissible completion
        # exceeds the upper bound.
        if label.os + ctx.os_tau_t_list[label.node] > upper:
            continue
        for node, seg_os, seg_bs, seg_sos in ctx.scaled_out(label.node):
            consider(label, node, seg_os, seg_bs, seg_sos, VIA_EDGE)
        if use_strategy1 and label.mask != full_mask:
            jump = ctx.jump_candidate(label)
            if jump is not None:
                vj, seg_os, seg_bs = jump
                stats.jump_labels_created += 1
                consider(label, vj, seg_os, seg_bs, ctx.scaling.scale(seg_os), VIA_JUMP)

    stats.runtime_seconds = time.perf_counter() - start
    if incumbent is None:
        return KORResult(
            query=query,
            algorithm=algorithm,
            route=None,
            covers_keywords=False,
            within_budget=False,
            stats=stats,
            failure_reason="no feasible route exists",
        )

    route = _finish(ctx, incumbent)
    stats.runtime_seconds = time.perf_counter() - start
    return KORResult(
        query=query,
        algorithm=algorithm,
        route=route,
        covers_keywords=True,
        within_budget=route.budget_score <= delta + 1e-9,
        stats=stats,
    )


def _finish(ctx: SearchContext, incumbent: Label) -> Route:
    """Materialise the incumbent's route (label chain + tau completion)."""
    return ctx.materialize(incumbent)
