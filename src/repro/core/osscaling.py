"""OSScaling — the paper's first approximation algorithm (Algorithm 1).

A label-correcting search on the scaled graph ``G_S``: starting from the
source label, repeatedly dequeue the label with the lowest order
(Definition 8) and extend it along every out-edge (label treatment,
Definition 7).  New labels are pruned when

* they are dominated (on scaled objective!) by a label at the same node,
* the cheapest completion budget ``BS + BS(sigma_{j,t})`` already exceeds
  ``Delta``,
* the best completion objective ``OS + OS(tau_{j,t})`` cannot beat the
  current upper bound ``U``, or
* Optimisation Strategy 2's infrequent-keyword detour test fails.

When a new label covers the whole query and its objective-optimal
completion ``tau_{j,t}`` fits the budget, ``U`` improves and the label
(with that completion) becomes the incumbent answer; Theorem 2 guarantees
the returned route's objective is within ``1/(1-eps)`` of optimal.

With ``exact=True`` domination compares true objective scores, which turns
the search into an exact branch-and-bound (used as the ground-truth
baseline in :mod:`repro.core.bruteforce`).

The search is implemented as a *stepwise* class so two drivers can share
it: :func:`os_scaling` runs the classic one-label-at-a-time loop, and the
batch kernels (:mod:`repro.core.kernels`) advance many searches in
lockstep, vector-prefiltering each step's pooled edge block before
handing survivors back to the exact scalar treatment below.  Both drivers
execute the same prune sequence on the same floats, so their results —
routes, scores *and* per-label statistics — are identical.
"""

from __future__ import annotations

import heapq
import time

from repro.core.deadline import Deadline
from repro.core.label import VIA_EDGE, VIA_JUMP, Label, LabelStore, label_sort_key
from repro.core.query import KORQuery, QueryBinding
from repro.core.results import KORResult, SearchStats, SearchTrace
from repro.core.route import Route
from repro.core.scaling import ScalingContext
from repro.core.searchbase import SearchContext
from repro.graph.digraph import SpatialKeywordGraph
from repro.index.inverted import InvertedIndex
from repro.prep.tables import CostTables

__all__ = ["os_scaling"]


class _OSScalingSearch:
    """One OSScaling run, advanced label by label.

    Drivers call :meth:`pop` for the next label to expand (``None`` once
    the search is complete — including the trivial early exits, which are
    resolved during construction) and :meth:`step` (or the finer-grained
    :meth:`consider` / :meth:`bound_and_treat` / :meth:`jump`) to extend
    it, then :meth:`result` for the :class:`KORResult`.
    """

    algorithm_family = "osscaling"

    def __init__(
        self,
        graph: SpatialKeywordGraph,
        tables: CostTables,
        index: InvertedIndex,
        query: KORQuery,
        epsilon: float = 0.5,
        use_strategy1: bool = True,
        use_strategy2: bool = True,
        infrequent_threshold: float = 0.01,
        exact: bool = False,
        trace: SearchTrace | None = None,
        binding: QueryBinding | None = None,
        deadline: Deadline | None = None,
        shared=None,
    ) -> None:
        self._start = time.perf_counter()
        self.algorithm = "exact" if exact else "osscaling"
        self.stats = SearchStats()
        self.query = query
        self.trace = trace
        self.deadline = deadline
        self.use_strategy1 = use_strategy1
        self.use_strategy2 = use_strategy2

        scaling = ScalingContext.for_query(graph, query.budget_limit, epsilon, exact=exact)
        self.ctx = SearchContext(
            graph,
            tables,
            index,
            query,
            scaling,
            infrequent_threshold=infrequent_threshold,
            binding=binding,
            shared=shared,
        )
        ctx = self.ctx
        self.delta = query.budget_limit
        self.full_mask = ctx.binding.full_mask

        self.upper = float("inf")
        self.incumbent: Label | None = None
        self._early: KORResult | None = None
        self._heap: list[tuple[tuple[int, float, float, int], Label]] = []
        self._store = LabelStore(graph.num_nodes)

        reason = ctx.impossibility_reason()
        if reason is not None:
            self._early = self._package(None, failure_reason=reason)
            return

        source = query.source
        root = ctx.root_label()
        if root.mask == self.full_mask and ctx.bs_tau_t_list[source] <= self.delta:
            # The source (plus the target, via tau's endpoints) already
            # covers every keyword and the objective-optimal completion
            # fits the budget: tau_{s,t} is globally objective-optimal, so
            # it is *the* optimum — no search needed.
            self._early = self._package(root)
            return

        heapq.heappush(self._heap, (label_sort_key(root), root))
        self._store.insert(root)
        self.stats.labels_enqueued += 1

    # ------------------------------------------------------------------
    # driver protocol
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """Whether :meth:`pop` can still yield work."""
        return self._early is not None or not self._heap

    def pop(self, tick: bool = True) -> Label | None:
        """Next label to expand (Algorithm 1 lines 5-7), or ``None``.

        Dead labels (evicted by domination) and stale labels (admissible
        completion no longer under ``U``) are skipped here, with the same
        deadline-tick cadence as the classic loop.  ``tick=False`` lets a
        lockstep driver own the deadline checkpointing instead.
        """
        if self._early is not None:
            return None
        while self._heap:
            if tick and self.deadline is not None:
                self.deadline.tick()
            _key, label = heapq.heappop(self._heap)
            if not label.alive:
                continue
            self.stats.loops += 1
            if self.trace is not None:
                self.trace.record(
                    "dequeue", label.node, label.mask, label.scaled_os, label.os, label.bs
                )
            # Line 7: the label cannot contribute once its admissible
            # completion exceeds the upper bound.
            if label.os + self.ctx.os_tau_t_list[label.node] > self.upper:
                continue
            return label
        return None

    def step(self, label: Label) -> None:
        """Full scalar treatment of one dequeued label: edges then jump."""
        ctx = self.ctx
        for node, seg_os, seg_bs, seg_sos in ctx.scaled_out(label.node):
            self.consider(label, node, seg_os, seg_bs, seg_sos, VIA_EDGE)
        self.jump(label)

    def jump(self, label: Label) -> None:
        """Optimisation Strategy 1's extra extension for *label*."""
        if not self.use_strategy1 or label.mask == self.full_mask:
            return
        self.jump_from(label, self.ctx.jump_candidate(label))

    def jump_from(self, label: Label, jump: tuple[int, float, float] | None) -> None:
        """Apply a precomputed Strategy-1 candidate (see ``jump``).

        Split out so the batch kernels can evaluate candidates for a
        whole wave in one vector block and feed each member's winner
        back through the exact scalar bookkeeping.
        """
        if jump is not None:
            vj, seg_os, seg_bs = jump
            self.stats.jump_labels_created += 1
            self.consider(label, vj, seg_os, seg_bs, self.ctx.scaling.scale(seg_os), VIA_JUMP)

    # ------------------------------------------------------------------
    # label treatment (Definition 7 + Algorithm 1 line 10 checks)
    # ------------------------------------------------------------------
    def consider(
        self, parent: Label, node: int, seg_os: float, seg_bs: float, seg_sos: float, via: int
    ) -> None:
        """Scalar treatment of one candidate extension, all checks inline."""
        ctx = self.ctx
        stats = self.stats
        stats.labels_created += 1
        new_mask = parent.mask | ctx.binding.node_mask(node)
        new_os = parent.os + seg_os
        new_bs = parent.bs + seg_bs
        new_sos = parent.scaled_os + seg_sos
        if self.trace is not None:
            self.trace.record("create", node, new_mask, new_sos, new_os, new_bs)

        if new_bs + ctx.bs_sigma_t_list[node] > self.delta:
            stats.labels_pruned_budget += 1
            if self.trace is not None:
                self.trace.record("prune_budget", node, new_mask, new_sos, new_os, new_bs)
            return
        self.bound_and_treat(parent, node, new_mask, new_os, new_bs, new_sos, via)

    def bound_and_treat(
        self,
        parent: Label,
        node: int,
        new_mask: int,
        new_os: float,
        new_bs: float,
        new_sos: float,
        via: int,
    ) -> None:
        """Treatment from the U-prune onward, against the *live* bound.

        This is the kernel re-entry point: the lockstep driver's vector
        prefilter disposes of budget-infeasible labels exactly and of
        labels that cannot beat the block-start bound snapshot (sound —
        ``U`` only tightens), then routes every survivor through here so
        the bound is re-checked against the current ``U`` and the rest of
        the treatment runs scalar, in edge order, exactly as a solo run
        would.
        """
        ctx = self.ctx
        stats = self.stats
        if not (new_os + ctx.os_tau_t_list[node] < self.upper):
            stats.labels_pruned_bound += 1
            if self.trace is not None:
                self.trace.record("prune_bound", node, new_mask, new_sos, new_os, new_bs)
            return
        if self.use_strategy2 and ctx.strategy2_rejects(node, new_mask, new_os, new_bs, self.upper):
            stats.labels_pruned_strategy2 += 1
            if self.trace is not None:
                self.trace.record("prune_strategy2", node, new_mask, new_sos, new_os, new_bs)
            return

        label = Label(node, new_mask, new_sos, new_os, new_bs, parent=parent, via=via)
        if self._store.is_dominated(label):
            stats.labels_pruned_dominated += 1
            if self.trace is not None:
                self.trace.record("prune_dominated", node, new_mask, new_sos, new_os, new_bs)
            return

        if new_mask == self.full_mask:
            if new_bs + ctx.bs_tau_t_list[node] <= self.delta:
                # Feasible completion via tau_{j,t}: update the upper bound
                # and the incumbent (lines 17-19); the label is consumed —
                # tau is its best possible completion (Lemma 3), so no
                # extension of it can improve on the recorded route.
                self.upper = new_os + ctx.os_tau_t_list[node]
                self.incumbent = label
                stats.bound_updates += 1
                if self.trace is not None:
                    self.trace.record(
                        "bound_update", node, new_mask, new_sos, new_os, new_bs, self.upper
                    )
                return
            # Covers everything but tau's budget does not fit: keep
            # searching from it (line 20).
        heapq.heappush(self._heap, (label_sort_key(label), label))
        self._store.insert(label, self._on_evict)
        stats.labels_enqueued += 1
        if self.trace is not None:
            self.trace.record("enqueue", node, new_mask, new_sos, new_os, new_bs)

    def _on_evict(self, _victim: Label) -> None:
        self.stats.labels_evicted += 1

    # ------------------------------------------------------------------
    # result
    # ------------------------------------------------------------------
    def result(self) -> KORResult:
        """Package the finished search (callable once drained)."""
        if self._early is not None:
            return self._early
        if self.incumbent is None:
            return self._package(None, failure_reason="no feasible route exists")
        return self._package(self.incumbent)

    def _package(self, final: Label | None, failure_reason: str | None = None) -> KORResult:
        if final is None:
            self.stats.runtime_seconds = time.perf_counter() - self._start
            return KORResult(
                query=self.query,
                algorithm=self.algorithm,
                route=None,
                covers_keywords=False,
                within_budget=False,
                stats=self.stats,
                failure_reason=failure_reason,
            )
        route = _finish(self.ctx, final)
        self.stats.runtime_seconds = time.perf_counter() - self._start
        return KORResult(
            query=self.query,
            algorithm=self.algorithm,
            route=route,
            covers_keywords=True,
            within_budget=route.budget_score <= self.delta + 1e-9,
            stats=self.stats,
        )


def os_scaling(
    graph: SpatialKeywordGraph,
    tables: CostTables,
    index: InvertedIndex,
    query: KORQuery,
    epsilon: float = 0.5,
    use_strategy1: bool = True,
    use_strategy2: bool = True,
    infrequent_threshold: float = 0.01,
    exact: bool = False,
    trace: SearchTrace | None = None,
    binding: QueryBinding | None = None,
    deadline: Deadline | None = None,
) -> KORResult:
    """Answer *query* with Algorithm 1.

    Parameters mirror the paper: ``epsilon`` trades accuracy for speed
    (Theorem 2 bound ``1/(1-eps)``); the two optimisation strategies can
    be toggled for ablations.  ``trace`` collects per-label events for the
    worked-example tests.  ``binding`` optionally reuses a pre-built
    query context (see :class:`repro.core.query.QueryBinding`).
    ``deadline`` arms the per-iteration cancellation checkpoint.
    """
    search = _OSScalingSearch(
        graph,
        tables,
        index,
        query,
        epsilon=epsilon,
        use_strategy1=use_strategy1,
        use_strategy2=use_strategy2,
        infrequent_threshold=infrequent_threshold,
        exact=exact,
        trace=trace,
        binding=binding,
        deadline=deadline,
    )
    while True:
        label = search.pop()
        if label is None:
            break
        search.step(label)
    return search.result()


def _finish(ctx: SearchContext, incumbent: Label) -> Route:
    """Materialise the incumbent's route (label chain + tau completion)."""
    return ctx.materialize(incumbent)
