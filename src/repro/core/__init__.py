"""The paper's contribution: KOR queries and the three algorithms."""

from repro.core.bruteforce import branch_and_bound, exhaustive_search
from repro.core.bucketbound import bucket_bound
from repro.core.engine import ALGORITHMS, KOREngine
from repro.core.greedy import greedy
from repro.core.label import Label, LabelStore, label_sort_key
from repro.core.osscaling import os_scaling
from repro.core.query import KORQuery, QueryBinding
from repro.core.results import KkRResult, KORResult, SearchStats, SearchTrace, TraceEvent
from repro.core.route import Route
from repro.core.scaling import ScalingContext
from repro.core.topk import TopKCollector, bucket_bound_top_k, os_scaling_top_k

__all__ = [
    "ALGORITHMS",
    "KOREngine",
    "KORQuery",
    "KORResult",
    "KkRResult",
    "Label",
    "LabelStore",
    "QueryBinding",
    "Route",
    "ScalingContext",
    "SearchStats",
    "SearchTrace",
    "TopKCollector",
    "TraceEvent",
    "branch_and_bound",
    "bucket_bound",
    "bucket_bound_top_k",
    "exhaustive_search",
    "greedy",
    "label_sort_key",
    "os_scaling",
    "os_scaling_top_k",
]
