"""Result and diagnostics objects shared by every KOR algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.query import KORQuery
from repro.core.route import Route

__all__ = ["KORResult", "KkRResult", "SearchStats", "SearchTrace", "TraceEvent"]


@dataclass
class SearchStats:
    """Counters describing one search run; useful for ablations and tests."""

    labels_created: int = 0
    labels_enqueued: int = 0
    labels_pruned_budget: int = 0
    labels_pruned_bound: int = 0
    labels_pruned_dominated: int = 0
    labels_pruned_strategy2: int = 0
    labels_evicted: int = 0
    jump_labels_created: int = 0
    loops: int = 0
    bound_updates: int = 0
    buckets_opened: int = 0
    runtime_seconds: float = 0.0


@dataclass(frozen=True)
class TraceEvent:
    """One step of a traced search (used by the paper-example tests).

    ``kind`` is one of ``create``, ``enqueue``, ``dequeue``,
    ``prune_budget``, ``prune_bound``, ``prune_dominated``,
    ``prune_strategy2``, ``bound_update`` or ``found``.
    """

    kind: str
    node: int
    mask: int
    scaled_os: float
    os: float
    bs: float
    extra: float | None = None


class SearchTrace:
    """Collects :class:`TraceEvent` records when tracing is enabled."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def record(
        self,
        kind: str,
        node: int,
        mask: int,
        scaled_os: float,
        os: float,
        bs: float,
        extra: float | None = None,
    ) -> None:
        self.events.append(TraceEvent(kind, node, mask, scaled_os, os, bs, extra))

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events of one kind, in order."""
        return [event for event in self.events if event.kind == kind]

    def created_labels(self) -> list[TraceEvent]:
        """Convenience: the ``create`` events (Table-1 style contents)."""
        return self.of_kind("create")


@dataclass
class KORResult:
    """Outcome of a KOR query.

    ``route`` is ``None`` when the algorithm proved (or, for the greedy
    heuristic, concluded) that it cannot produce a route at all.  A greedy
    route may violate either hard constraint, so feasibility is reported
    separately from mere existence.
    """

    query: KORQuery
    algorithm: str
    route: Route | None
    covers_keywords: bool
    within_budget: bool
    stats: SearchStats = field(default_factory=SearchStats)
    failure_reason: str | None = None
    #: True when a failure forced a fallback answer (e.g. the cross-cell
    #: attempt missed its deadline and the cell-local result stood in).
    #: Exact answers are never flagged.
    degraded: bool = False

    @property
    def found(self) -> bool:
        """Whether any route was produced."""
        return self.route is not None

    @property
    def feasible(self) -> bool:
        """Whether the produced route satisfies both hard constraints."""
        return self.found and self.covers_keywords and self.within_budget

    @property
    def objective_score(self) -> float:
        """``OS(R)`` of the produced route (inf when none)."""
        return self.route.objective_score if self.route else float("inf")

    @property
    def budget_score(self) -> float:
        """``BS(R)`` of the produced route (inf when none)."""
        return self.route.budget_score if self.route else float("inf")


@dataclass
class KkRResult:
    """Outcome of a keyword-aware top-k route (KkR) query."""

    query: KORQuery
    algorithm: str
    k: int
    routes: list[Route]
    stats: SearchStats = field(default_factory=SearchStats)

    @property
    def found(self) -> bool:
        """Whether at least one feasible route was produced."""
        return bool(self.routes)

    @property
    def objective_scores(self) -> list[float]:
        """``OS`` of each returned route, best first."""
        return [route.objective_score for route in self.routes]
