"""Keyword-aware top-k route search — KkR (Section 3.5).

Both approximation algorithms extend to returning the ``k`` best feasible
routes by (a) relaxing Definition 6 to *k-domination* — a label is
discarded only when at least ``k`` stored labels dominate it — and (b)
collecting feasible completions instead of stopping at the first:

* OSScaling-k keeps the best ``k`` completions found so far; the k-th
  best objective score plays the role of the upper bound ``U``.  (The
  paper says "budget score of the kth best route"; pruning compares
  objectives, so this is read as a typo for *objective* score.)
* BucketBound-k terminates once ``k`` feasible routes have been found in
  the lowest non-empty bucket.

Unlike the top-1 algorithms, a label that covers every keyword keeps
getting extended after its tau-completion is recorded — its *second*-best
completion may be one of the k answers.  Completions are deduplicated on
their node sequences (two labels can describe the same physical route
split at different points).
"""

from __future__ import annotations

import heapq
import time

from repro.core.label import VIA_EDGE, VIA_JUMP, Label, LabelStore, label_sort_key
from repro.core.bucketbound import BucketQueue
from repro.core.query import KORQuery, QueryBinding
from repro.core.results import KkRResult, SearchStats
from repro.core.route import Route
from repro.core.scaling import ScalingContext
from repro.core.searchbase import SearchContext
from repro.exceptions import QueryError
from repro.graph.digraph import SpatialKeywordGraph
from repro.index.inverted import InvertedIndex
from repro.prep.tables import CostTables

__all__ = ["os_scaling_top_k", "bucket_bound_top_k", "TopKCollector"]


class TopKCollector:
    """Keeps the ``k`` best distinct routes by (objective, budget)."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        self.k = k
        self._routes: list[Route] = []
        self._seen: set[tuple[int, ...]] = set()

    def add(self, route: Route) -> bool:
        """Insert *route*; returns False for duplicates / not-top-k."""
        if route.nodes in self._seen:
            return False
        if len(self._routes) == self.k and not self._better(route, self._routes[-1]):
            return False
        self._seen.add(route.nodes)
        self._routes.append(route)
        self._routes.sort(key=lambda r: (r.objective_score, r.budget_score, r.nodes))
        if len(self._routes) > self.k:
            evicted = self._routes.pop()
            self._seen.discard(evicted.nodes)
        return True

    @staticmethod
    def _better(a: Route, b: Route) -> bool:
        return (a.objective_score, a.budget_score, a.nodes) < (
            b.objective_score,
            b.budget_score,
            b.nodes,
        )

    @property
    def upper_bound(self) -> float:
        """Objective of the k-th best route, or inf while under-filled."""
        if len(self._routes) < self.k:
            return float("inf")
        return self._routes[-1].objective_score

    @property
    def routes(self) -> list[Route]:
        """Best-first list of collected routes."""
        return list(self._routes)

    def __len__(self) -> int:
        return len(self._routes)


def os_scaling_top_k(
    graph: SpatialKeywordGraph,
    tables: CostTables,
    index: InvertedIndex,
    query: KORQuery,
    k: int,
    epsilon: float = 0.5,
    use_strategy1: bool = True,
    use_strategy2: bool = True,
    binding: QueryBinding | None = None,
) -> KkRResult:
    """OSScaling extended to the KkR query with k-domination."""
    start = time.perf_counter()
    stats = SearchStats()
    scaling = ScalingContext.for_query(graph, query.budget_limit, epsilon)
    ctx = SearchContext(graph, tables, index, query, scaling, binding=binding)
    collector = TopKCollector(k)

    if ctx.impossibility_reason() is not None:
        stats.runtime_seconds = time.perf_counter() - start
        return KkRResult(query=query, algorithm="osscaling-topk", k=k, routes=[], stats=stats)

    delta = query.budget_limit
    full_mask = ctx.binding.full_mask
    store = LabelStore(graph.num_nodes, k=k)
    heap: list[tuple[tuple[int, float, float, int], Label]] = []

    root = ctx.root_label()
    heapq.heappush(heap, (label_sort_key(root), root))
    store.insert(root)
    if root.mask == full_mask and ctx.bs_tau_t_list[query.source] <= delta:
        collector.add(ctx.materialize(root))
        stats.bound_updates += 1

    def on_evict(_victim: Label) -> None:
        stats.labels_evicted += 1

    def consider(parent: Label, node: int, seg_os: float, seg_bs: float, seg_sos: float, via: int) -> None:
        stats.labels_created += 1
        new_mask = parent.mask | ctx.binding.node_mask(node)
        new_os = parent.os + seg_os
        new_bs = parent.bs + seg_bs
        if new_bs + ctx.bs_sigma_t_list[node] > delta:
            stats.labels_pruned_budget += 1
            return
        upper = collector.upper_bound
        if not (new_os + ctx.os_tau_t_list[node] < upper):
            stats.labels_pruned_bound += 1
            return
        if use_strategy2 and ctx.strategy2_rejects(node, new_mask, new_os, new_bs, upper):
            stats.labels_pruned_strategy2 += 1
            return
        label = Label(node, new_mask, parent.scaled_os + seg_sos, new_os, new_bs, parent=parent, via=via)
        if store.is_dominated(label):
            stats.labels_pruned_dominated += 1
            return
        if new_mask == full_mask and new_bs + ctx.bs_tau_t_list[node] <= delta:
            # Feasible tau-completion: one candidate route.  The label stays
            # in play — its other completions may rank among the k best.
            if collector.add(ctx.materialize(label)):
                stats.bound_updates += 1
        heapq.heappush(heap, (label_sort_key(label), label))
        store.insert(label, on_evict)
        stats.labels_enqueued += 1

    while heap:
        _key, label = heapq.heappop(heap)
        if not label.alive:
            continue
        stats.loops += 1
        if label.os + ctx.os_tau_t_list[label.node] > collector.upper_bound:
            continue
        for node, seg_os, seg_bs, seg_sos in ctx.scaled_out(label.node):
            consider(label, node, seg_os, seg_bs, seg_sos, VIA_EDGE)
        if use_strategy1 and label.mask != full_mask:
            jump = ctx.jump_candidate(label)
            if jump is not None:
                vj, seg_os, seg_bs = jump
                stats.jump_labels_created += 1
                consider(label, vj, seg_os, seg_bs, ctx.scaling.scale(seg_os), VIA_JUMP)

    stats.runtime_seconds = time.perf_counter() - start
    return KkRResult(
        query=query, algorithm="osscaling-topk", k=k, routes=collector.routes, stats=stats
    )


def bucket_bound_top_k(
    graph: SpatialKeywordGraph,
    tables: CostTables,
    index: InvertedIndex,
    query: KORQuery,
    k: int,
    epsilon: float = 0.5,
    beta: float = 1.2,
    use_strategy1: bool = True,
    use_strategy2: bool = True,
    binding: QueryBinding | None = None,
) -> KkRResult:
    """BucketBound extended to the KkR query.

    Stops once ``k`` feasible routes have been collected from the lowest
    non-empty bucket (Section 3.5).
    """
    start = time.perf_counter()
    stats = SearchStats()
    scaling = ScalingContext.for_query(graph, query.budget_limit, epsilon)
    ctx = SearchContext(graph, tables, index, query, scaling, binding=binding)
    collector = TopKCollector(k)

    if ctx.impossibility_reason() is not None:
        stats.runtime_seconds = time.perf_counter() - start
        return KkRResult(query=query, algorithm="bucketbound-topk", k=k, routes=[], stats=stats)

    delta = query.budget_limit
    full_mask = ctx.binding.full_mask
    source = query.source
    base = float(ctx.os_tau_t_list[source])
    if base <= 0.0:
        base = graph.min_objective
    queue = BucketQueue(base, beta)
    store = LabelStore(graph.num_nodes, k=k)

    root = ctx.root_label()
    queue.push(root, root.os + ctx.os_tau_t_list[source])
    store.insert(root)
    if root.mask == full_mask and ctx.bs_tau_t_list[source] <= delta:
        collector.add(ctx.materialize(root))

    def on_evict(_victim: Label) -> None:
        stats.labels_evicted += 1

    def consider(parent: Label, node: int, seg_os: float, seg_bs: float, seg_sos: float, via: int) -> None:
        stats.labels_created += 1
        new_mask = parent.mask | ctx.binding.node_mask(node)
        new_os = parent.os + seg_os
        new_bs = parent.bs + seg_bs
        if new_bs + ctx.bs_sigma_t_list[node] > delta:
            stats.labels_pruned_budget += 1
            return
        low = new_os + ctx.os_tau_t_list[node]
        upper = collector.upper_bound
        if low >= upper:
            # LOW is monotone along extensions, so neither this label's own
            # completions nor any of its descendants' can displace the
            # current k-th best candidate (the top-k twin of the top-1
            # best-low prune).
            stats.labels_pruned_bound += 1
            return
        if use_strategy2 and ctx.strategy2_rejects(node, new_mask, new_os, new_bs, upper):
            stats.labels_pruned_strategy2 += 1
            return
        label = Label(node, new_mask, parent.scaled_os + seg_sos, new_os, new_bs, parent=parent, via=via)
        if store.is_dominated(label):
            stats.labels_pruned_dominated += 1
            return
        if new_mask == full_mask and new_bs + ctx.bs_tau_t_list[node] <= delta:
            # Feasible tau-completion: one candidate route.  Unlike the
            # top-1 algorithm the label still enters the queue — its
            # *other* completions may rank among the k answers.
            if collector.add(ctx.materialize(label)):
                stats.bound_updates += 1
        queue.push(label, low)
        store.insert(label, on_evict)
        stats.labels_enqueued += 1

    while True:
        frontier = queue.peek_bucket()
        if frontier is None:
            break
        if len(collector) >= k and frontier >= queue.bucket_index(collector.upper_bound):
            # Section 3.5's termination: the k feasible routes collected so
            # far all sit at or below the frontier bucket, and every
            # remaining label completes to something no better.
            break
        _bucket, label = queue.pop()
        stats.loops += 1
        if label.os + ctx.os_tau_t_list[label.node] >= collector.upper_bound:
            continue  # filed before the k-th candidate existed; stale now
        for node, seg_os, seg_bs, seg_sos in ctx.scaled_out(label.node):
            consider(label, node, seg_os, seg_bs, seg_sos, VIA_EDGE)
        if use_strategy1 and label.mask != full_mask:
            jump = ctx.jump_candidate(label)
            if jump is not None:
                vj, seg_os, seg_bs = jump
                stats.jump_labels_created += 1
                consider(label, vj, seg_os, seg_bs, ctx.scaling.scale(seg_os), VIA_JUMP)

    stats.buckets_opened = queue.buckets_opened
    stats.runtime_seconds = time.perf_counter() - start
    return KkRResult(
        query=query, algorithm="bucketbound-topk", k=k, routes=collector.routes, stats=stats
    )
