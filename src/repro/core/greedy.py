"""Greedy — the paper's heuristic algorithm (Algorithm 3).

From the source, repeatedly jump to the node that carries uncovered query
keywords and minimises Equation 1's blended score

    score(vj, Ri) = alpha * (Ri.OS + OS(tau_{i,j}) + OS(tau_{j,t}))
                  + (1-alpha) * (Ri.BS + BS(tau_{i,j}) + BS(tau_{j,t}))

then finish with ``tau_{i,t}``.  Greedy-1 follows the single best node;
Greedy-2 branches on the best two at every step (``width=2``), exploring
up to ``2^m`` candidate routes.  The algorithm has **no guarantee**: the
returned route may exceed the budget, and with ``mode="budget"`` (the
paper's variant for hard money budgets) it respects the budget but may
leave keywords uncovered.

Coverage credit: Algorithm 3 line 10 updates ``wordSet`` with the selected
waypoint's ``vm.psi`` only, yet the returned route is scored on what it
actually covers (line 13) — so keywords picked up incidentally by the
intermediate nodes of a ``tau`` segment are covered but, read literally,
never credited during the search, and the walk makes explicit detours to
keywords it already passed.  ``credit_path_keywords=True`` (default)
credits them, which materially lowers budget overruns on dense graphs;
``False`` gives the literal pseudocode behaviour (see DESIGN.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.deadline import Deadline
from repro.core.query import KORQuery, QueryBinding
from repro.core.results import KORResult, SearchStats
from repro.core.route import Route
from repro.exceptions import PrepError
from repro.graph.digraph import SpatialKeywordGraph
from repro.index.inverted import InvertedIndex
from repro.prep.tables import CostTables

__all__ = ["greedy"]


@dataclass
class _Leaf:
    """One completed branch of the (possibly branching) greedy search."""

    waypoints: tuple[int, ...]
    mask: int
    os: float
    bs: float
    completion: str  # "tau" or "sigma"


def greedy(
    graph: SpatialKeywordGraph,
    tables: CostTables,
    index: InvertedIndex,
    query: KORQuery,
    alpha: float = 0.5,
    width: int = 1,
    mode: str = "coverage",
    credit_path_keywords: bool = True,
    binding: QueryBinding | None = None,
    deadline: Deadline | None = None,
) -> KORResult:
    """Answer *query* heuristically with Algorithm 3.

    Parameters
    ----------
    alpha:
        Equation 1's balance: 0 selects on budget only, 1 on objective only.
    width:
        Branching factor per step; 1 is Greedy-1, 2 is Greedy-2.
    mode:
        ``"coverage"`` guarantees keyword coverage (budget may overrun,
        the paper's default); ``"budget"`` guarantees the budget (keywords
        may stay uncovered, the paper's modified variant).
    credit_path_keywords:
        Credit keywords covered by the intermediate nodes of each traversed
        ``tau`` segment (see the module docstring); ``False`` is the
        literal pseudocode.
    """
    start = time.perf_counter()
    algorithm = f"greedy-{width}" if mode == "coverage" else f"greedy-{width}-budget"
    stats = SearchStats()
    if not 0.0 <= alpha <= 1.0:
        raise PrepError(f"alpha must be within [0, 1], got {alpha}")
    if width < 1:
        raise PrepError(f"width must be >= 1, got {width}")
    if mode not in ("coverage", "budget"):
        raise PrepError(f"mode must be 'coverage' or 'budget', got {mode!r}")

    if binding is None:
        binding = QueryBinding.bind(graph, index, query)
    source, target, delta = query.source, query.target, query.budget_limit
    full_mask = binding.full_mask
    os_tau_t = tables.os_tau_col(target)
    bs_tau_t = tables.bs_tau_col(target)
    bs_sigma_t = tables.bs_sigma_col(target)

    def fail(reason: str) -> KORResult:
        stats.runtime_seconds = time.perf_counter() - start
        return KORResult(
            query=query,
            algorithm=algorithm,
            route=None,
            covers_keywords=False,
            within_budget=False,
            stats=stats,
            failure_reason=reason,
        )

    if binding.missing_keywords and mode == "coverage":
        return fail(
            "keywords not present in the graph: "
            + ", ".join(sorted(binding.missing_keywords))
        )
    if not np.isfinite(os_tau_t[source]):
        return fail("target is unreachable from source")

    # Cache of candidate-node unions per missing mask (the nodeSet of
    # Algorithm 3 lines 3-5, shrunk as keywords get covered).
    union_cache: dict[int, np.ndarray] = {}

    def candidates_for(missing: int) -> np.ndarray:
        cached = union_cache.get(missing)
        if cached is None:
            lists = [
                postings
                for bit, postings in enumerate(binding.nodes_with_bit)
                if missing & (1 << bit) and len(postings)
            ]
            cached = (
                np.unique(np.concatenate(lists)) if lists else np.empty(0, dtype=np.int64)
            )
            union_cache[missing] = cached
        return cached

    leaves: list[_Leaf] = []

    def complete(waypoints: tuple[int, ...], mask: int, os: float, bs: float) -> None:
        """Append the last segment to the target (Algorithm 3 line 12)."""
        current = waypoints[-1]
        if not np.isfinite(os_tau_t[current]):
            return
        if mode == "budget" and bs + bs_tau_t[current] > delta:
            # Budget-priority completion: fall back to the budget-optimal
            # path when tau does not fit.
            if bs + bs_sigma_t[current] > delta:
                return
            leaves.append(
                _Leaf(
                    waypoints,
                    mask,
                    os + float(tables.os_sigma_col(target)[current]),
                    bs + float(bs_sigma_t[current]),
                    "sigma",
                )
            )
            return
        leaves.append(
            _Leaf(waypoints, mask, os + float(os_tau_t[current]), bs + float(bs_tau_t[current]), "tau")
        )

    def extend(waypoints: tuple[int, ...], mask: int, os: float, bs: float) -> None:
        if deadline is not None:
            deadline.tick()
        stats.loops += 1
        if mask == full_mask:
            complete(waypoints, mask, os, bs)
            return
        current = waypoints[-1]
        nodes = candidates_for(full_mask & ~mask)
        if len(nodes) == 0:
            complete(waypoints, mask, os, bs)
            return
        os_seg = tables.os_tau_row(current)[nodes]
        bs_seg = tables.bs_tau_row(current)[nodes]
        os_proj = os + os_seg + os_tau_t[nodes]
        bs_proj = bs + bs_seg + bs_tau_t[nodes]
        # 0 * inf = nan for unreachable candidates at the alpha extremes;
        # they are dropped by the finite filter below, so silence the blend.
        with np.errstate(invalid="ignore"):
            scores = alpha * os_proj + (1.0 - alpha) * bs_proj
        valid = np.isfinite(scores)
        if mode == "budget":
            # Only nodes that keep a budget-feasible completion reachable.
            valid &= (bs + bs_seg + bs_sigma_t[nodes]) <= delta
        if not valid.any():
            complete(waypoints, mask, os, bs)
            return
        stats.labels_created += int(valid.sum())
        order = np.argsort(scores[valid], kind="stable")
        chosen = nodes[valid][order[:width]]
        for vm in chosen:
            vm = int(vm)
            new_mask = mask | binding.node_mask(vm)
            if credit_path_keywords:
                for hop in tables.tau_path(current, vm):
                    new_mask |= binding.node_mask(hop)
            extend(
                waypoints + (vm,),
                new_mask,
                os + float(tables.os_tau_row(current)[vm]),
                bs + float(tables.bs_tau_row(current)[vm]),
            )

    extend((source,), binding.node_mask(source), 0.0, 0.0)

    if not leaves:
        return fail("greedy could not reach the target covering the keywords")

    def leaf_rank(leaf: _Leaf) -> tuple[int, float, float]:
        feasible = leaf.mask == full_mask and leaf.bs <= delta + 1e-9
        return (0 if feasible else 1, leaf.os, leaf.bs)

    best = min(leaves, key=leaf_rank)
    route = _materialize(graph, tables, best, target)
    stats.runtime_seconds = time.perf_counter() - start
    covered = route.covered_keywords(graph)
    covers = all(
        kid is not None and kid in covered for kid in binding.keyword_ids
    )
    return KORResult(
        query=query,
        algorithm=algorithm,
        route=route,
        covers_keywords=covers,
        within_budget=route.budget_score <= delta + 1e-9,
        stats=stats,
    )


def _materialize(
    graph: SpatialKeywordGraph, tables: CostTables, leaf: _Leaf, target: int
) -> Route:
    """Concatenate the tau segments between waypoints plus the completion."""
    nodes: list[int] = [leaf.waypoints[0]]
    for prev, nxt in zip(leaf.waypoints, leaf.waypoints[1:]):
        nodes.extend(tables.tau_path(prev, nxt)[1:])
    last = leaf.waypoints[-1]
    segment = (
        tables.tau_path(last, target) if leaf.completion == "tau" else tables.sigma_path(last, target)
    )
    nodes.extend(segment[1:])
    return Route.from_nodes(graph, nodes)
