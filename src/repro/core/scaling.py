"""Objective-value scaling (Section 3.2 of the paper).

OSScaling scales every edge objective to an integer using

    theta = eps * o_min * b_min / Delta
    o_hat(vi, vj) = floor(o(vi, vj) / theta)

which bounds the number of useful labels per node (Lemma 1) and yields the
``1 / (1 - eps)`` approximation guarantee (Theorem 2).  The same machinery
with ``exact=True`` skips scaling entirely (domination then compares true
objective scores), turning the label search into an exact branch-and-bound
— that variant backs :mod:`repro.core.bruteforce`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import QueryError
from repro.graph.digraph import SpatialKeywordGraph

__all__ = ["ScalingContext"]

# Guard against binary floating point pushing an exact quotient like
# 4 / 0.05 = 80 infinitesimally below the integer; see Example 1, where the
# paper's quotients are exact in decimal.  The bound proofs tolerate a floor
# that is off by one *downwards* but not upwards, and 1e-9 is far below any
# genuine sub-integer gap produced by realistic weights.
_FLOOR_SLACK = 1e-9


@dataclass(frozen=True)
class ScalingContext:
    """Scaling parameters for one query.

    ``theta`` is ``None`` in exact mode, where :meth:`scale` is the
    identity and domination works on true objective scores.
    """

    epsilon: float
    theta: float | None

    @classmethod
    def for_query(
        cls,
        graph: SpatialKeywordGraph,
        budget_limit: float,
        epsilon: float,
        exact: bool = False,
    ) -> "ScalingContext":
        """Build the context: ``theta = eps * o_min * b_min / Delta``."""
        if exact:
            return cls(epsilon=0.0, theta=None)
        if not (0.0 < epsilon < 1.0):
            raise QueryError(f"epsilon must be in (0, 1), got {epsilon}")
        theta = epsilon * graph.min_objective * graph.min_budget / budget_limit
        if not (theta > 0.0) or not math.isfinite(theta):
            raise QueryError(f"degenerate scaling factor theta={theta}")
        return cls(epsilon=epsilon, theta=theta)

    @property
    def exact(self) -> bool:
        """True when scaling is disabled (branch-and-bound mode)."""
        return self.theta is None

    def scale(self, objective: float) -> float:
        """``o_hat = floor(o / theta)`` — or ``o`` itself in exact mode.

        The return type is float so exact mode composes transparently;
        in scaled mode the value is always integral.
        """
        if self.theta is None:
            return objective
        return float(math.floor(objective / self.theta + _FLOOR_SLACK))

    def approximation_ratio(self) -> float:
        """Theorem 2's worst-case ratio ``1 / (1 - eps)`` (1.0 in exact mode)."""
        if self.theta is None:
            return 1.0
        return 1.0 / (1.0 - self.epsilon)

    def label_bound(
        self, graph: SpatialKeywordGraph, budget_limit: float, num_keywords: int
    ) -> float:
        """Lemma 1's upper bound on labels per node.

        ``2^m * floor(Delta / b_min) * floor(o_max * Delta / (eps * o_min *
        b_min))``.  Returned as a float because it overflows easily; it is
        a *bound*, not an allocation size.  In exact mode there is no such
        bound and ``inf`` is returned.
        """
        if self.theta is None:
            return math.inf
        max_edges = math.floor(budget_limit / graph.min_budget)
        max_scaled = math.floor(graph.max_objective / self.theta + _FLOOR_SLACK)
        return float(2**num_keywords) * max_edges * max_scaled
