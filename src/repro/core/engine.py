"""The KOR engine — one-stop facade over the whole system.

Build it once per graph (pre-processing the tau/sigma tables and the
inverted index), then answer any number of KOR / KkR queries with any of
the paper's algorithms::

    engine = KOREngine(graph)
    result = engine.query(source=0, target=7, keywords=["pub", "mall"],
                          budget_limit=8.0, algorithm="bucketbound")
    if result.feasible:
        print(result.route.describe(graph))
"""

from __future__ import annotations

from typing import Iterable

from repro.core.bruteforce import branch_and_bound, exhaustive_search
from repro.core.bucketbound import bucket_bound
from repro.core.greedy import greedy
from repro.core.osscaling import os_scaling
from repro.core.query import KORQuery, QueryBinding
from repro.core.results import KkRResult, KORResult
from repro.core.topk import bucket_bound_top_k, os_scaling_top_k
from repro.exceptions import QueryError
from repro.graph.digraph import SpatialKeywordGraph
from repro.index.inverted import InvertedIndex
from repro.prep.tables import CostTables

__all__ = ["KOREngine", "ALGORITHMS"]

#: Names accepted by :meth:`KOREngine.query`.
ALGORITHMS = (
    "osscaling",
    "bucketbound",
    "greedy",
    "greedy2",
    "exact",
    "exhaustive",
)


class KOREngine:
    """Pre-processed graph + dispatch to every algorithm in the paper."""

    def __init__(
        self,
        graph: SpatialKeywordGraph,
        tables: CostTables | None = None,
        index: InvertedIndex | None = None,
        prep_method: str = "auto",
        predecessors: bool = True,
    ) -> None:
        self._graph = graph
        self._tables = (
            tables
            if tables is not None
            else CostTables.from_graph(graph, method=prep_method, predecessors=predecessors)
        )
        self._index = index if index is not None else InvertedIndex.from_graph(graph)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> SpatialKeywordGraph:
        """The underlying spatial-keyword graph."""
        return self._graph

    @property
    def tables(self) -> CostTables:
        """The pre-processed tau/sigma cost tables."""
        return self._tables

    @property
    def index(self) -> InvertedIndex:
        """The inverted keyword index."""
        return self._index

    # ------------------------------------------------------------------
    # reusable query context
    # ------------------------------------------------------------------
    def candidate_sets(self, keywords: Iterable[str]) -> dict[int, "object"]:
        """Per-keyword candidate node sets for *keywords*, fetched once.

        Resolves each distinct keyword through the graph's keyword table
        and the inverted index (words absent from the vocabulary are
        skipped — binding treats them as empty).  The returned map feeds
        :meth:`bind`'s ``candidates`` argument, letting a batch of queries
        that share keywords pay for each posting lookup exactly once.
        """
        ids = [
            kid
            for kid in (self._graph.keyword_table.get(word) for word in keywords)
            if kid is not None
        ]
        return self._index.candidate_sets(ids)

    def bind(self, query: KORQuery, candidates: dict | None = None) -> QueryBinding:
        """Build the reusable per-query context (validates endpoints).

        The returned :class:`QueryBinding` is read-only and can be handed
        to :meth:`run` (``binding=``) any number of times, including from
        concurrent threads.
        """
        return QueryBinding.bind(self._graph, self._index, query, candidates=candidates)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(
        self,
        source: int,
        target: int,
        keywords: Iterable[str],
        budget_limit: float,
        algorithm: str = "bucketbound",
        **params,
    ) -> KORResult:
        """Answer one KOR query.

        ``algorithm`` is one of :data:`ALGORITHMS`; ``params`` are passed
        through (``epsilon``, ``beta``, ``alpha``, ``width``, ``mode``,
        ``use_strategy1``, ``use_strategy2``, ``trace``...).
        """
        query = KORQuery(source, target, tuple(keywords), budget_limit)
        return self.run(query, algorithm=algorithm, **params)

    def run(self, query: KORQuery, algorithm: str = "bucketbound", **params) -> KORResult:
        """Answer a pre-built :class:`KORQuery`.

        ``params`` may carry ``binding=`` (a context from :meth:`bind`) or
        ``candidates=`` (a map from :meth:`candidate_sets`); either skips
        the per-query index lookups — the serving layer's batch path.
        """
        graph, tables, index = self._graph, self._tables, self._index
        deadline = params.get("deadline")
        if deadline is not None:
            # Refuse to start a search whose caller already gave up.
            deadline.check()
        candidates = params.pop("candidates", None)
        if candidates is not None and params.get("binding") is None:
            params["binding"] = self.bind(query, candidates=candidates)
        if algorithm == "osscaling":
            return os_scaling(graph, tables, index, query, **params)
        if algorithm == "bucketbound":
            return bucket_bound(graph, tables, index, query, **params)
        if algorithm == "greedy":
            return greedy(graph, tables, index, query, **params)
        if algorithm == "greedy2":
            params.setdefault("width", 2)
            return greedy(graph, tables, index, query, **params)
        if algorithm == "exact":
            return branch_and_bound(graph, tables, index, query, **params)
        if algorithm == "exhaustive":
            return exhaustive_search(graph, index, query, **params)
        raise QueryError(
            f"unknown algorithm {algorithm!r}; expected one of {', '.join(ALGORITHMS)}"
        )

    def top_k(
        self,
        source: int,
        target: int,
        keywords: Iterable[str],
        budget_limit: float,
        k: int,
        algorithm: str = "bucketbound",
        **params,
    ) -> KkRResult:
        """Answer one KkR (top-k) query with either approximation algorithm."""
        query = KORQuery(source, target, tuple(keywords), budget_limit)
        if algorithm == "osscaling":
            return os_scaling_top_k(self._graph, self._tables, self._index, query, k, **params)
        if algorithm == "bucketbound":
            return bucket_bound_top_k(self._graph, self._tables, self._index, query, k, **params)
        raise QueryError(
            f"unknown top-k algorithm {algorithm!r}; expected 'osscaling' or 'bucketbound'"
        )
