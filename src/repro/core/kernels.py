"""Numpy batch kernels — lockstep wave execution of the label searches.

The serving stack's micro-batcher aggregates queries into waves that
share ``(algorithm, params)``; this module executes such a wave through
*one* kernel invocation instead of N independent python searches.  The
scheme is **cross-query lockstep**: every member search advances by one
label pop per step, and the step pools all popped labels' out-edges into
one numpy block whose budget prune (``BS + BS(sigma_{j,t}) <= Delta``)
and bound prune (``LOW(.) < U`` / ``LOW(.) < L*``) evaluate as masked
array ops — including the per-binding keyword-bitmask gather — before
the survivors flow back, per search and in edge order, through the exact
scalar treatment tail (:meth:`bound_and_treat` on the stepwise search
classes).

Why this shape: per-*label* vectorization loses on road-like graphs
(mean out-degree ~2-4 makes every array tiny), but a wave of B queries
pools ~B x degree candidate edges per step — enough to amortise numpy
dispatch while every query keeps its private heap, label store, bound
and statistics.

**Exactness.**  Member searches are completely independent, so
interleaving their steps changes nothing; within one search the kernel
replays the identical pop/treat sequence a solo run executes:

* the budget prune compares the same float64 values (edge arrays are the
  same floats the scalar tuples carry; IEEE addition is deterministic);
* the bound prune compares against a *snapshot* of the search's bound
  taken at block start.  The bound only tightens, so every vector kill
  is a label the scalar path would also have killed at its (later) turn
  — and it is classified identically because the budget test ran first.
  Survivors re-check the *live* bound inside ``bound_and_treat``;
* domination, Strategy 2, incumbent updates, enqueueing and the
  Strategy-1 jump stay scalar, per search, in order.

Hence routes, scores, failure reasons *and per-label statistics* are
identical to the scalar path — the differential suite in
``tests/core/test_kernels.py`` pins this for all six algorithms.

Algorithms without a label frontier (greedy, greedy2, exhaustive) run
per member under the same wave umbrella (shared candidate sets, shared
:class:`KernelContext` columns), so :func:`run_wave` is the single entry
point the service layer needs.  One poisoned member (bad binding,
injected fault, expired deadline) errors its own slot only; survivors
complete normally.
"""

from __future__ import annotations

import time
from typing import Callable, NamedTuple, Sequence

import numpy as np

from repro.core.bucketbound import _BucketBoundSearch
from repro.core.deadline import Deadline
from repro.core.engine import KOREngine
from repro.core.label import VIA_EDGE
from repro.core.osscaling import _OSScalingSearch
from repro.core.query import KORQuery
from repro.core.scaling import _FLOOR_SLACK, ScalingContext
from repro.exceptions import DeadlineExceeded

__all__ = [
    "KERNEL_WAVE_ALGORITHMS",
    "KernelContext",
    "TargetColumns",
    "WaveOutcome",
    "dominates_scores_block",
    "jump_candidates_block",
    "run_wave",
]

#: Algorithms the lockstep kernel drives directly; the rest of
#: :data:`repro.core.engine.ALGORITHMS` runs per member (still sharing
#: the wave's candidate sets and column caches).
KERNEL_WAVE_ALGORITHMS = frozenset({"osscaling", "exact", "bucketbound"})

#: Keyword masks ride int64 arrays; wider masks fall back to per-member
#: scalar execution (python ints are unbounded, int64 is not).
_MAX_MASK_BITS = 62

#: Parameter surface per kernel algorithm — mirrors the scalar wrappers'
#: signatures exactly, so a wave carrying a parameter the scalar path
#: would reject (or an uncacheable one like ``trace``) falls back to the
#: per-member path and fails/behaves precisely as N solo runs would.
_KERNEL_PARAMS = {
    "osscaling": frozenset(
        {"epsilon", "use_strategy1", "use_strategy2", "infrequent_threshold", "exact"}
    ),
    "exact": frozenset({"use_strategy1", "use_strategy2"}),
    "bucketbound": frozenset(
        {"epsilon", "beta", "use_strategy1", "use_strategy2", "infrequent_threshold"}
    ),
}


def dominates_scores_block(
    sos_arr: np.ndarray, bs_arr: np.ndarray, scaled_os: float, bs: float
) -> np.ndarray:
    """Vector twin of :func:`repro.core.label.dominates_scores`.

    Element ``i`` is True iff the stored scores ``(sos_arr[i], bs_arr[i])``
    dominate ``(scaled_os, bs)`` — two independent non-strict compares
    combined with ``&``, the same association the scalar comparator uses,
    so equal-score/equal-budget ties resolve identically on both paths.
    """
    return (sos_arr <= scaled_os) & (bs_arr <= bs)


class TargetColumns(NamedTuple):
    """One target's completion-bound columns plus their list twins."""

    os_tau: np.ndarray
    bs_tau: np.ndarray
    bs_sigma: np.ndarray
    os_tau_list: list
    bs_tau_list: list
    bs_sigma_list: list


class KernelContext:
    """Shared, engine-scoped caches behind the batch kernels.

    Sits beside :class:`repro.core.searchbase.SearchContext`: where a
    ``SearchContext`` holds one query's state, the ``KernelContext``
    holds what *waves* of queries share — per-target column gathers
    (with the ``.tolist()`` twins label creation needs), Strategy-2
    detour screens, per-binding keyword-bitmask arrays, and CSR-style
    out-edge / scaled-objective blocks.  All values are bit-identical to
    what a solo :class:`SearchContext` would compute; the cache only
    removes *re*-computation.

    Instances are not thread-safe for concurrent mutation; the service
    layer keeps one per worker (waves on one engine run sequentially per
    worker).
    """

    #: Soft cap on cached targets/screens so a long-lived worker serving
    #: many distinct targets does not grow without bound.
    _MAX_CACHED = 512

    def __init__(self, graph, tables) -> None:
        self.graph = graph
        self.tables = tables
        self._targets: dict[int, TargetColumns] = {}
        self._screens: dict = {}
        self._masks: dict[tuple, np.ndarray] = {}
        self._out: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._scaled: dict[tuple[float | None, int], np.ndarray] = {}
        self._uncovered: dict[tuple, np.ndarray] = {}

    # -- target columns -------------------------------------------------
    def target_columns(self, tables, target: int) -> TargetColumns:
        """Column bundle for *target*, cached (the ``shared`` protocol
        :class:`SearchContext` consumes)."""
        cols = self._targets.get(target)
        if cols is None:
            cols = self._build_columns(
                tables.os_tau_col(target), tables.bs_tau_col(target), tables.bs_sigma_col(target)
            )
            self._remember(self._targets, target, cols)
        return cols

    def prime_targets(self, targets: Sequence[int]) -> None:
        """Gather several targets' columns in one block each.

        One ``*_cols`` fancy-index per matrix instead of one column slice
        per (matrix, target) — the wave-priming entry the service layer
        calls with a wave's distinct targets.
        """
        missing = sorted({int(t) for t in targets} - self._targets.keys())
        if not missing:
            return
        nodes = np.asarray(missing, dtype=np.int64)
        os_tau = self.tables.os_tau_cols(nodes)
        bs_tau = self.tables.bs_tau_cols(nodes)
        bs_sigma = self.tables.bs_sigma_cols(nodes)
        for j, target in enumerate(missing):
            cols = self._build_columns(os_tau[:, j], bs_tau[:, j], bs_sigma[:, j])
            self._remember(self._targets, target, cols)

    @staticmethod
    def _build_columns(os_tau, bs_tau, bs_sigma) -> TargetColumns:
        return TargetColumns(
            os_tau=os_tau,
            bs_tau=bs_tau,
            bs_sigma=bs_sigma,
            os_tau_list=os_tau.tolist(),
            bs_tau_list=bs_tau.tolist(),
            bs_sigma_list=bs_sigma.tolist(),
        )

    # -- Strategy 2 screens ---------------------------------------------
    def strategy2_screens(self, key, build: Callable[[], tuple]) -> tuple:
        """Cached ``(min_bs, min_os)`` detour screens (see
        :meth:`SearchContext._prepare_strategy2`); *key* is
        ``(rare keyword id, target)``."""
        cached = self._screens.get(key)
        if cached is None:
            cached = build()
            self._remember(self._screens, key, cached)
        return cached

    # -- keyword-bitmask candidate matrices ------------------------------
    def node_masks(self, binding) -> np.ndarray:
        """Dense per-node keyword-bitmask array for *binding* (int64).

        ``masks[v] == binding.node_mask(v)`` for every node; built once
        per distinct keyword tuple via one scatter-OR over the binding's
        posting lists, then shared by every wave member binding the same
        keywords.
        """
        key = tuple(binding.keyword_ids)
        masks = self._masks.get(key)
        if masks is None:
            masks = np.zeros(self.graph.num_nodes, dtype=np.int64)
            for bit, postings in enumerate(binding.nodes_with_bit):
                if len(postings):
                    np.bitwise_or.at(masks, postings, np.int64(1) << np.int64(bit))
            self._remember(self._masks, key, masks)
        return masks

    # -- Strategy 1 uncovered-node unions --------------------------------
    def uncovered_union(self, binding, missing_mask: int) -> np.ndarray:
        """Sorted union of nodes carrying any keyword in *missing_mask*.

        The wave twin of ``SearchContext._uncovered_nodes``: identical
        values (same ``np.unique`` over the same posting lists), keyed by
        the binding's keyword tuple so every member binding the same
        keywords shares one array per missing-mask.
        """
        key = (tuple(binding.keyword_ids), missing_mask)
        nodes = self._uncovered.get(key)
        if nodes is None:
            lists = [
                postings
                for bit, postings in enumerate(binding.nodes_with_bit)
                if missing_mask & (1 << bit) and len(postings)
            ]
            nodes = (
                np.unique(np.concatenate(lists)) if lists else np.empty(0, dtype=np.int64)
            )
            self._remember(self._uncovered, key, nodes)
        return nodes

    # -- adjacency blocks -------------------------------------------------
    def out_block(self, node: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Out-edges of *node* as ``(targets, objectives, budgets)`` arrays."""
        block = self._out.get(node)
        if block is None:
            edges = self.graph.out_edges(node)
            if edges:
                v = np.fromiter((e[0] for e in edges), dtype=np.int64, count=len(edges))
                obj = np.fromiter((e[1] for e in edges), dtype=np.float64, count=len(edges))
                bud = np.fromiter((e[2] for e in edges), dtype=np.float64, count=len(edges))
            else:
                v = np.empty(0, dtype=np.int64)
                obj = np.empty(0, dtype=np.float64)
                bud = np.empty(0, dtype=np.float64)
            block = (v, obj, bud)
            self._out[node] = block
        return block

    def scaled_block(self, node: int, scaling: ScalingContext) -> np.ndarray:
        """Scaled objectives of *node*'s out-edges under *scaling*.

        ``np.floor(obj / theta + slack)`` is elementwise-identical to the
        scalar ``float(math.floor(o / theta + slack))`` (same float64
        division, addition and floor), so kernel labels carry the same
        scaled scores solo runs produce.
        """
        theta = scaling.theta
        obj = self.out_block(node)[1]
        if theta is None:
            return obj
        key = (theta, node)
        scaled = self._scaled.get(key)
        if scaled is None:
            scaled = np.floor(obj / theta + _FLOOR_SLACK)
            self._scaled[key] = scaled
        return scaled

    # -- bookkeeping ------------------------------------------------------
    def _remember(self, cache: dict, key, value) -> None:
        if len(cache) >= self._MAX_CACHED:
            # pop(default=None): concurrent thread-pool waves may race to
            # evict the same key; losing that race must not raise.
            cache.pop(next(iter(cache)), None)
        cache[key] = value


class WaveOutcome(NamedTuple):
    """Per-member verdict of one wave (mirrors the backends'
    ``TaskOutcome`` without importing the service layer)."""

    result: object | None
    error: BaseException | None
    latency_seconds: float


class _Member(NamedTuple):
    index: int
    query: KORQuery
    binding: object


def _make_search(engine, query: KORQuery, algorithm: str, params: dict, binding, shared):
    graph, tables, index = engine.graph, engine.tables, engine.index
    if algorithm == "bucketbound":
        return _BucketBoundSearch(
            graph, tables, index, query, binding=binding, shared=shared, **params
        )
    exact = algorithm == "exact" or bool(params.get("exact", False))
    params = {k: v for k, v in params.items() if k != "exact"}
    return _OSScalingSearch(
        graph, tables, index, query, exact=exact, binding=binding, shared=shared, **params
    )


def run_wave(
    engine,
    queries: Sequence[KORQuery],
    algorithm: str,
    params: dict | None = None,
    *,
    candidates: dict | None = None,
    deadline: Deadline | None = None,
    on_member: Callable[[int, KORQuery], None] | None = None,
    kernel_context: KernelContext | None = None,
) -> list[WaveOutcome]:
    """Run one wave of same-``(algorithm, params)`` queries on *engine*.

    Returns one :class:`WaveOutcome` per query, in order.  Eligible
    algorithms advance in numpy lockstep (module docstring); the rest run
    per member.  Failures are contained per member: ``on_member`` (the
    fault-injection hook), binding, an expired *deadline* or a search
    error poison only that slot.  A *deadline* expiring mid-lockstep
    errors every unfinished member while finished members keep their
    results — the wave-level twin of PR 7's mid-search 504 promptness,
    checked once per lockstep step (a step is a bounded block of work,
    like a checkpoint stride).
    """
    start = time.perf_counter()
    params = dict(params) if params else {}
    queries = list(queries)
    outcomes: list[WaveOutcome | None] = [None] * len(queries)

    if candidates is None:
        words: set[str] = set()
        for query in queries:
            words.update(query.keywords)
        candidates = engine.candidate_sets(words)

    members: list[_Member] = []
    for i, query in enumerate(queries):
        try:
            if on_member is not None:
                on_member(i, query)
            if deadline is not None:
                deadline.check()
            binding = engine.bind(query, candidates=candidates)
        except Exception as exc:
            outcomes[i] = WaveOutcome(None, exc, time.perf_counter() - start)
            continue
        members.append(_Member(i, query, binding))

    kernel_ok = (
        len(members) > 1
        and algorithm in KERNEL_WAVE_ALGORITHMS
        and set(params) <= _KERNEL_PARAMS[algorithm]
        # The lockstep driver bypasses ``engine.run``, so it may only
        # engage when ``run`` IS the stock label-correcting entry point.
        # Proxy engines (test doubles that delay/count runs) and
        # subclasses that override ``run`` must have it called — they
        # fall through to the per-member loop below.
        and isinstance(engine, KOREngine)
        and type(engine).run is KOREngine.run
        and all(m.binding.full_mask.bit_length() <= _MAX_MASK_BITS for m in members)
    )
    if not kernel_ok:
        for m in members:
            begin = time.perf_counter()
            try:
                result = engine.run(
                    m.query, algorithm=algorithm, binding=m.binding, deadline=deadline, **params
                )
            except Exception as exc:
                outcomes[m.index] = WaveOutcome(None, exc, time.perf_counter() - begin)
            else:
                outcomes[m.index] = WaveOutcome(result, None, time.perf_counter() - begin)
        return outcomes  # type: ignore[return-value]

    kctx = kernel_context if kernel_context is not None else KernelContext(engine.graph, engine.tables)
    kctx.prime_targets([m.query.target for m in members])

    entries: list[dict] = []
    for m in members:
        try:
            search = _make_search(engine, m.query, algorithm, params, m.binding, kctx)
        except Exception as exc:
            outcomes[m.index] = WaveOutcome(None, exc, time.perf_counter() - start)
            continue
        entries.append(
            {
                "index": m.index,
                "search": search,
                "masks": kctx.node_masks(m.binding),
                "delta": m.query.budget_limit,
            }
        )

    _run_lockstep(kctx, entries, outcomes, deadline, start)
    return outcomes  # type: ignore[return-value]


def _bound_of(search) -> float:
    """The search's current bound: ``U`` for OSScaling, ``L*`` for
    BucketBound (both monotone non-increasing, both prune on
    ``keep iff LOW < bound``)."""
    return search.upper if isinstance(search, _OSScalingSearch) else search.best_low


def jump_candidates_block(
    kctx: KernelContext, jobs: Sequence[tuple]
) -> list[tuple[int, float, float] | None]:
    """Vector twin of ``SearchContext.jump_candidate`` for a whole wave.

    *jobs* is a sequence of ``(search, label)`` pairs — one per popped
    label.  Returns one candidate tuple (or ``None``) per job, exactly
    what N independent ``jump_candidate`` calls would return:

    * the per-member uncovered-node unions come from
      :meth:`KernelContext.uncovered_union` (same ``np.unique`` values
      the scalar memo holds);
    * the ``BS(sigma_{i,j})`` gathers stack into one fancy-index when the
      engine carries dense flat tables (element-identical to the scalar
      row-then-gather — both copy the same float64 cells), falling back
      to per-member row gathers on assembled/partitioned tables;
    * feasibility ``(label.BS + seg + BS(sigma_{j,t})) <= Delta``
      evaluates in one masked block with the scalar path's left-to-right
      float association, and each member's winner is the first minimum
      among its feasible candidates in node-sorted order — the scalar
      ``np.argmin`` tie rule.
    """
    results: list[tuple[int, float, float] | None] = [None] * len(jobs)
    meta: list[tuple[int, object, object, np.ndarray]] = []
    for j, (search, label) in enumerate(jobs):
        if not search.use_strategy1:
            continue
        ctx = search.ctx
        missing = ctx.binding.full_mask & ~label.mask
        if not missing:
            continue
        nodes = kctx.uncovered_union(ctx.binding, missing)
        if len(nodes):
            meta.append((j, ctx, label, nodes))
    if not meta:
        return results

    lens = np.fromiter((len(nodes) for _, _, _, nodes in meta), dtype=np.int64, count=len(meta))
    offsets = np.concatenate(([0], np.cumsum(lens)))

    dense = getattr(kctx.tables, "bs_sigma", None)
    if isinstance(dense, np.ndarray) and all(
        ctx.tables is kctx.tables for _, ctx, _, _ in meta
    ):
        rows = np.repeat(
            np.fromiter((label.node for _, _, label, _ in meta), dtype=np.int64, count=len(meta)),
            lens,
        )
        cols = np.concatenate([nodes for _, _, _, nodes in meta])
        seg_all = dense[rows, cols]
    else:
        seg_all = np.concatenate(
            [ctx.tables.bs_sigma_row(label.node)[nodes] for _, ctx, label, nodes in meta]
        )
    bst_all = np.concatenate([ctx.bs_sigma_t[nodes] for _, ctx, _, nodes in meta])
    bs_rep = np.repeat(
        np.fromiter((label.bs for _, _, label, _ in meta), dtype=np.float64, count=len(meta)),
        lens,
    )
    delta_rep = np.repeat(
        np.fromiter((ctx.delta for _, ctx, _, _ in meta), dtype=np.float64, count=len(meta)),
        lens,
    )
    feas_all = (bs_rep + seg_all + bst_all) <= delta_rep

    for p, (j, ctx, label, nodes) in enumerate(meta):
        lo, hi = offsets[p], offsets[p + 1]
        feasible = feas_all[lo:hi]
        if not feasible.any():
            continue
        seg = seg_all[lo:hi]
        cand = np.flatnonzero(feasible)
        seg_f = seg[cand]
        best = int(np.argmin(seg_f))
        vj = int(nodes[cand[best]])
        seg_os = float(ctx.tables.os_sigma_at(label.node, vj))
        results[j] = (vj, seg_os, float(seg_f[best]))
    return results


def _run_lockstep(
    kctx: KernelContext,
    entries: list[dict],
    outcomes: list[WaveOutcome | None],
    deadline: Deadline | None,
    start: float,
) -> None:
    active = entries
    while active:
        if deadline is not None:
            try:
                deadline.check()
            except DeadlineExceeded as exc:
                elapsed = time.perf_counter() - start
                for entry in active:
                    outcomes[entry["index"]] = WaveOutcome(None, exc, elapsed)
                return

        # -- pop phase: one label per live search ----------------------
        pops: list[tuple[dict, object]] = []
        survivors_of_step: list[dict] = []
        for entry in active:
            try:
                label = entry["search"].pop(tick=False)
            except Exception as exc:  # pragma: no cover - defensive
                outcomes[entry["index"]] = WaveOutcome(None, exc, time.perf_counter() - start)
                continue
            if label is None:
                outcomes[entry["index"]] = _finish(entry["search"], start)
                continue
            pops.append((entry, label))
            survivors_of_step.append(entry)
        active = survivors_of_step
        if not pops:
            continue

        # -- assemble the pooled edge block ----------------------------
        count = len(pops)
        seg_lens = np.empty(count, dtype=np.int64)
        v_parts: list[np.ndarray] = []
        obj_parts: list[np.ndarray] = []
        bud_parts: list[np.ndarray] = []
        sos_parts: list[np.ndarray] = []
        mask_parts: list[np.ndarray] = []
        bs_sig_parts: list[np.ndarray] = []
        os_tau_parts: list[np.ndarray] = []
        for p, (entry, label) in enumerate(pops):
            search = entry["search"]
            v, obj, bud = kctx.out_block(label.node)
            seg_lens[p] = len(v)
            if len(v) == 0:
                continue
            ctx = search.ctx
            v_parts.append(v)
            obj_parts.append(obj)
            bud_parts.append(bud)
            sos_parts.append(kctx.scaled_block(label.node, ctx.scaling))
            mask_parts.append(entry["masks"][v])
            bs_sig_parts.append(ctx.bs_sigma_t[v])
            os_tau_parts.append(ctx.os_tau_t[v])

        if v_parts:
            v_all = np.concatenate(v_parts)
            obj_all = np.concatenate(obj_parts)
            bud_all = np.concatenate(bud_parts)
            sos_all = np.concatenate(sos_parts)
            mask_all = np.concatenate(mask_parts)
            bs_sig_all = np.concatenate(bs_sig_parts)
            os_tau_all = np.concatenate(os_tau_parts)

            parent_os = np.repeat(
                np.fromiter((l.os for _, l in pops), dtype=np.float64, count=count), seg_lens
            )
            parent_bs = np.repeat(
                np.fromiter((l.bs for _, l in pops), dtype=np.float64, count=count), seg_lens
            )
            parent_sos = np.repeat(
                np.fromiter((l.scaled_os for _, l in pops), dtype=np.float64, count=count),
                seg_lens,
            )
            parent_mask = np.repeat(
                np.fromiter((l.mask for _, l in pops), dtype=np.int64, count=count), seg_lens
            )
            delta_all = np.repeat(
                np.fromiter((e["delta"] for e, _ in pops), dtype=np.float64, count=count),
                seg_lens,
            )
            bound_all = np.repeat(
                np.fromiter((_bound_of(e["search"]) for e, _ in pops), dtype=np.float64, count=count),
                seg_lens,
            )
            seg_id = np.repeat(np.arange(count, dtype=np.int64), seg_lens)

            # -- masked-array prunes (the kernel proper) ---------------
            new_os = parent_os + obj_all
            new_bs = parent_bs + bud_all
            new_sos = parent_sos + sos_all
            new_mask = parent_mask | mask_all
            budget_kill = new_bs + bs_sig_all > delta_all
            low = new_os + os_tau_all
            bound_kill = ~budget_kill & (low >= bound_all)
            killed = budget_kill | bound_kill

            budget_counts = np.bincount(seg_id[budget_kill], minlength=count)
            bound_counts = np.bincount(seg_id[bound_kill], minlength=count)
            for p, (entry, _label) in enumerate(pops):
                stats = entry["search"].stats
                stats.labels_created += int(seg_lens[p])
                stats.labels_pruned_budget += int(budget_counts[p])
                stats.labels_pruned_bound += int(bound_counts[p])

            keep = np.nonzero(~killed)[0]
            if len(keep):
                # Ascending order == grouped by segment, edge order within
                # each segment — the exact scalar visit order per search.
                seg_l = seg_id[keep].tolist()
                node_l = v_all[keep].tolist()
                mask_l = new_mask[keep].tolist()
                os_l = new_os[keep].tolist()
                bs_l = new_bs[keep].tolist()
                sos_l = new_sos[keep].tolist()
                for j in range(len(seg_l)):
                    entry, label = pops[seg_l[j]]
                    entry["search"].bound_and_treat(
                        label, node_l[j], mask_l[j], os_l[j], bs_l[j], sos_l[j], VIA_EDGE
                    )

        # -- vectorized tail: Strategy 1 jumps --------------------------
        jumps = jump_candidates_block(kctx, [(e["search"], l) for e, l in pops])
        for (entry, label), jump in zip(pops, jumps):
            entry["search"].jump_from(label, jump)


def _finish(search, start: float) -> WaveOutcome:
    try:
        result = search.result()
    except Exception as exc:  # pragma: no cover - defensive
        return WaveOutcome(None, exc, time.perf_counter() - start)
    return WaveOutcome(result, None, time.perf_counter() - start)
