"""Per-request deadlines with cooperative mid-search cancellation.

A :class:`Deadline` is an absolute expiry instant on the monotonic
clock.  It travels out-of-band next to a query — never inside the
algorithm ``params``, so cache keys, flight coalescing and wave grouping
are untouched — from the HTTP tier down into the engine, where the
search loops call :meth:`Deadline.tick` once per iteration.  ``tick``
amortises the clock read over ``tick_stride`` calls, so the checkpoint
costs one integer increment per loop iteration when the deadline is far
away, and the loop stops within ``tick_stride`` iterations of expiry.

``time.monotonic`` is system-wide on every platform supported here
(Linux always; all platforms since CPython 3.10), so an absolute expiry
pickles safely across the process-pool boundary on the same host —
worker-side checks observe the same clock the front-end armed.
"""

from __future__ import annotations

import time

from repro.exceptions import DeadlineExceeded

__all__ = ["Deadline"]

#: How many :meth:`Deadline.tick` calls elapse between clock reads.
#: Search-loop iterations are microseconds; 32 of them bound the
#: cancellation latency far below any meaningful deadline while keeping
#: the per-iteration cost to an integer increment.
DEFAULT_TICK_STRIDE = 32


class Deadline:
    """An absolute monotonic-clock expiry for one request.

    Instances deliberately keep identity semantics (no ``__eq__`` /
    ``__hash__`` override): a frozen :class:`ShardTask` carrying one
    stays hashable, and two deadlines are never interchangeable anyway.
    """

    __slots__ = ("expires_at", "_stride", "_tick")

    def __init__(self, expires_at: float, tick_stride: int = DEFAULT_TICK_STRIDE) -> None:
        if tick_stride < 1:
            raise ValueError(f"tick_stride must be >= 1, got {tick_stride}")
        self.expires_at = float(expires_at)
        self._stride = int(tick_stride)
        self._tick = 0

    @classmethod
    def after(cls, seconds: float, tick_stride: int = DEFAULT_TICK_STRIDE) -> "Deadline":
        """A deadline *seconds* from now."""
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds}")
        return cls(time.monotonic() + float(seconds), tick_stride=tick_stride)

    @staticmethod
    def latest(a: "Deadline | None", b: "Deadline | None") -> "Deadline | None":
        """The looser of two deadlines; ``None`` (unbounded) wins outright.

        Used when coalesced awaiters share one flight: the flight may
        only be cancelled once *every* awaiter's deadline has passed.
        """
        if a is None or b is None:
            return None
        return a if a.expires_at >= b.expires_at else b

    def remaining(self) -> float:
        """Seconds until expiry (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        """Whether the expiry instant has passed."""
        return time.monotonic() >= self.expires_at

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` if expired (always reads the clock)."""
        if time.monotonic() >= self.expires_at:
            raise DeadlineExceeded(
                f"deadline exceeded by {-self.remaining():.4g}s"
            )

    def tick(self) -> None:
        """The search-loop checkpoint: check the clock every ``tick_stride`` calls."""
        self._tick += 1
        if self._tick >= self._stride:
            self._tick = 0
            self.check()

    # Pickling ships the absolute expiry across the process boundary;
    # the tick counter restarts, which only makes the first worker-side
    # check slightly earlier.
    def __getstate__(self) -> tuple[float, int]:
        return (self.expires_at, self._stride)

    def __setstate__(self, state: tuple[float, int]) -> None:
        self.expires_at, self._stride = state
        self._tick = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline(remaining={self.remaining():.4g}s)"
