"""KOR query objects and query-time keyword binding.

A :class:`KORQuery` (Definition 4) is ``<vs, vt, psi, Delta>``.  Before a
search runs, the query keywords are *bound* against the graph: each query
keyword becomes one bit of a bitmask, and every node containing query
keywords gets its coverage mask materialised from the inverted index.
Label keyword sets (``L.lambda`` in the paper) are then plain integers,
making Definition 6's ``lambda superset`` test a single ``&`` operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.exceptions import QueryError
from repro.graph.digraph import SpatialKeywordGraph
from repro.index.inverted import InvertedIndex

__all__ = ["KORQuery", "QueryBinding"]


@dataclass(frozen=True)
class KORQuery:
    """The keyword-aware optimal route query ``<vs, vt, psi, Delta>``.

    ``keywords`` may be empty, in which case KOR degenerates to the
    weight-constrained shortest path problem the paper reduces from.
    """

    source: int
    target: int
    keywords: tuple[str, ...]
    budget_limit: float

    def __init__(
        self,
        source: int,
        target: int,
        keywords: Iterable[str],
        budget_limit: float,
    ) -> None:
        object.__setattr__(self, "source", int(source))
        object.__setattr__(self, "target", int(target))
        # Deduplicate while preserving order, so bit positions are stable.
        seen: dict[str, None] = {}
        for word in keywords:
            if not isinstance(word, str) or not word:
                raise QueryError(f"query keywords must be non-empty strings, got {word!r}")
            seen.setdefault(word)
        object.__setattr__(self, "keywords", tuple(seen))
        object.__setattr__(self, "budget_limit", float(budget_limit))
        if not self.budget_limit > 0:
            raise QueryError(f"budget limit must be > 0, got {budget_limit}")

    @property
    def num_keywords(self) -> int:
        """``m = |psi|`` — the exponent in the paper's complexity bounds."""
        return len(self.keywords)


@dataclass
class QueryBinding:
    """A query resolved against one particular graph.

    Attributes
    ----------
    query:
        The bound query.
    keyword_ids:
        Interned id of each query keyword, aligned with bit positions;
        ``None`` for keywords absent from the graph's vocabulary.
    full_mask:
        ``(1 << m) - 1`` — a label covering the query carries this mask.
    node_masks:
        Sparse map ``node -> coverage bitmask``; nodes without query
        keywords are absent (mask 0).
    nodes_with_bit:
        Per bit position, the posting list of nodes carrying that keyword.
    """

    query: KORQuery
    keyword_ids: list[int | None]
    full_mask: int
    node_masks: dict[int, int] = field(repr=False)
    nodes_with_bit: list[np.ndarray] = field(repr=False)

    @classmethod
    def bind(
        cls,
        graph: SpatialKeywordGraph,
        index: InvertedIndex,
        query: KORQuery,
        candidates: Mapping[int, np.ndarray] | None = None,
    ) -> "QueryBinding":
        """Resolve *query* against *graph* using the inverted *index*.

        ``candidates`` optionally maps keyword ids to their posting lists
        (the shared candidate sets an ``index.candidate_sets`` call over a
        whole batch produces); ids present there are taken as-is and the
        index is only consulted for the rest.  This is how the serving
        layer amortises per-keyword index work across a query stream.
        """
        n = graph.num_nodes
        if not (0 <= query.source < n):
            raise QueryError(f"source node {query.source} is outside 0..{n - 1}")
        if not (0 <= query.target < n):
            raise QueryError(f"target node {query.target} is outside 0..{n - 1}")

        keyword_ids: list[int | None] = []
        nodes_with_bit: list[np.ndarray] = []
        node_masks: dict[int, int] = {}
        for bit, word in enumerate(query.keywords):
            kid = graph.keyword_table.get(word)
            keyword_ids.append(kid)
            if kid is None:
                postings = np.empty(0, dtype=np.int64)
            elif candidates is not None and kid in candidates:
                postings = candidates[kid]
            else:
                postings = index.postings(kid)
            nodes_with_bit.append(postings)
            bit_value = 1 << bit
            for node in postings:
                node_masks[int(node)] = node_masks.get(int(node), 0) | bit_value

        return cls(
            query=query,
            keyword_ids=keyword_ids,
            full_mask=(1 << len(query.keywords)) - 1,
            node_masks=node_masks,
            nodes_with_bit=nodes_with_bit,
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def node_mask(self, node: int) -> int:
        """Bitmask of query keywords carried by *node* (0 for most nodes)."""
        return self.node_masks.get(node, 0)

    @property
    def missing_keywords(self) -> tuple[str, ...]:
        """Query keywords that occur on no node — the query is then infeasible."""
        return tuple(
            word
            for word, postings in zip(self.query.keywords, self.nodes_with_bit)
            if len(postings) == 0
        )

    @property
    def vocabulary_feasible(self) -> bool:
        """False when some query keyword occurs nowhere in the graph."""
        return not self.missing_keywords

    def uncovered_bits(self, mask: int) -> list[int]:
        """Bit positions still missing from *mask*."""
        missing = self.full_mask & ~mask
        return [bit for bit in range(len(self.query.keywords)) if missing & (1 << bit)]

    def mask_to_words(self, mask: int) -> frozenset[str]:
        """Human-readable keyword set for a coverage bitmask."""
        return frozenset(
            word for bit, word in enumerate(self.query.keywords) if mask & (1 << bit)
        )
