"""Node labels, domination and label stores (Definitions 5-8).

A label represents one partial route from the query source to some node,
carrying the covered query-keyword mask ``lambda``, the scaled objective
score ``OS_hat``, the true objective score ``OS`` and the budget score
``BS``.  Labels chain back to their parents so the final route can be
materialised without storing node sequences during the search.

Domination (Definition 6) is the pruning workhorse: ``L`` dominates ``L'``
at the same node iff ``L.lambda`` is a superset of ``L'.lambda`` and both
scores are no larger.  Each node keeps only non-dominated labels, grouped
by mask so the superset test is a bitwise ``&`` over the few distinct
masks present.  The top-k extension (Section 3.5) relaxes this to
*k-domination*: a label is discarded only when at least ``k`` stored
labels dominate it.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator

__all__ = ["Label", "LabelStore", "dominates_scores", "label_sort_key"]

#: How a label came to exist; "jump" labels are Optimisation Strategy 1's
#: shortcut along a sigma path, expanded during route materialisation.
VIA_ROOT = 0
VIA_EDGE = 1
VIA_JUMP = 2

_seq_counter = itertools.count()


def dominates_scores(
    dominator_scaled_os: float, dominator_bs: float, scaled_os: float, bs: float
) -> bool:
    """Definition 6's score half: both scores no larger (``<=``, not ``<``).

    This is *the* canonical comparator: every scalar domination site calls
    it, and the vectorized kernels mirror it as
    ``(sos_arr <= sos) & (bs_arr <= bs)``
    (:func:`repro.core.kernels.dominates_scores_block`) — two independent
    non-strict compares, no lexicographic short-circuit, so equal-score /
    equal-budget labels tie-break identically on both paths.
    """
    return dominator_scaled_os <= scaled_os and dominator_bs <= bs


class Label:
    """One partial route (Definition 5), plus search bookkeeping."""

    __slots__ = ("node", "mask", "scaled_os", "os", "bs", "parent", "via", "alive", "seq")

    def __init__(
        self,
        node: int,
        mask: int,
        scaled_os: float,
        os: float,
        bs: float,
        parent: "Label | None" = None,
        via: int = VIA_EDGE,
    ) -> None:
        self.node = node
        self.mask = mask
        self.scaled_os = scaled_os
        self.os = os
        self.bs = bs
        self.parent = parent
        self.via = via
        #: Cleared when a store evicts the label; the priority queues use
        #: lazy deletion and skip dead labels on pop.
        self.alive = True
        #: Monotonic tie-breaker making the label order total (the paper
        #: breaks ties "by alphabetical order", i.e. arbitrarily but
        #: deterministically; creation order achieves the same).
        self.seq = next(_seq_counter)

    # ------------------------------------------------------------------
    def dominates(self, other: "Label") -> bool:
        """Definition 6: superset keywords, both scores no larger."""
        return (self.mask & other.mask) == other.mask and dominates_scores(
            self.scaled_os, self.bs, other.scaled_os, other.bs
        )

    def chain_nodes(self) -> list[tuple[int, int]]:
        """``(node, via)`` pairs from the root to this label, in order."""
        chain: list[tuple[int, int]] = []
        label: Label | None = self
        while label is not None:
            chain.append((label.node, label.via))
            label = label.parent
        chain.reverse()
        return chain

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Label(node={self.node}, mask={self.mask:b}, "
            f"os_hat={self.scaled_os}, os={self.os}, bs={self.bs})"
        )


def label_sort_key(label: Label) -> tuple[int, float, float, int]:
    """Definition 8's label order as a sortable key.

    Lower key = lower order = dequeued first: more covered keywords first,
    then smaller scaled objective, then smaller budget, then creation order.
    """
    return (-label.mask.bit_count(), label.scaled_os, label.bs, label.seq)


class LabelStore:
    """Per-node sets of non-dominated labels.

    ``k`` generalises domination for the KkR extension: a candidate is
    rejected when at least ``k`` stored labels dominate it, and a stored
    label is evicted when newly inserted labels bring its dominator count
    to ``k``.  ``k=1`` is exactly Definition 6.
    """

    def __init__(self, num_nodes: int, k: int = 1) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self._k = k
        # node -> mask -> list of labels with that exact mask.
        self._by_node: list[dict[int, list[Label]] | None] = [None] * num_nodes
        self._size = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def labels_at(self, node: int) -> Iterator[Label]:
        """Iterate the live labels stored at *node*."""
        groups = self._by_node[node]
        if groups:
            for labels in groups.values():
                yield from labels

    def is_dominated(self, candidate: Label) -> bool:
        """Whether >= k stored labels at the candidate's node dominate it."""
        groups = self._by_node[candidate.node]
        if not groups:
            return False
        needed = self._k
        mask = candidate.mask
        for stored_mask, labels in groups.items():
            if (stored_mask & mask) != mask:
                continue
            for stored in labels:
                if dominates_scores(stored.scaled_os, stored.bs, candidate.scaled_os, candidate.bs):
                    needed -= 1
                    if needed == 0:
                        return True
        return False

    def insert(self, label: Label, on_evict: Callable[[Label], None] | None = None) -> None:
        """Store *label* and evict stored labels it (k-)dominates.

        The caller is expected to have checked :meth:`is_dominated` first
        (Algorithm 1 line 10).  Evicted labels have ``alive`` cleared so
        the priority queues drop them lazily; *on_evict* observes each.
        """
        groups = self._by_node[label.node]
        if groups is None:
            groups = {}
            self._by_node[label.node] = groups

        mask = label.mask
        if self._k == 1:
            # Fast path: remove every stored label the newcomer dominates.
            for stored_mask in list(groups):
                if (mask & stored_mask) != stored_mask:
                    continue
                labels = groups[stored_mask]
                kept = [
                    stored
                    for stored in labels
                    if not dominates_scores(label.scaled_os, label.bs, stored.scaled_os, stored.bs)
                ]
                if len(kept) != len(labels):
                    for stored in labels:
                        if stored not in kept:
                            stored.alive = False
                            self._size -= 1
                            if on_evict is not None:
                                on_evict(stored)
                    if kept:
                        groups[stored_mask] = kept
                    else:
                        del groups[stored_mask]
        else:
            # k-domination: eviction requires k dominators among stored
            # labels *plus* the newcomer; recount lazily per victim.
            for stored_mask in list(groups):
                if (mask & stored_mask) != stored_mask:
                    continue
                labels = groups[stored_mask]
                kept: list[Label] = []
                for stored in labels:
                    if label.dominates(stored) and self._count_dominators(stored) + 1 >= self._k:
                        # Counting the newcomer, the stored label is now
                        # dominated by >= k labels; evict it.
                        stored.alive = False
                        self._size -= 1
                        if on_evict is not None:
                            on_evict(stored)
                    else:
                        kept.append(stored)
                if kept:
                    groups[stored_mask] = kept
                else:
                    del groups[stored_mask]

        groups.setdefault(mask, []).append(label)
        self._size += 1

    # ------------------------------------------------------------------
    def _count_dominators(self, label: Label) -> int:
        """Number of stored labels (excluding itself) dominating *label*."""
        groups = self._by_node[label.node]
        if not groups:
            return 0
        count = 0
        for stored_mask, labels in groups.items():
            if (stored_mask & label.mask) != label.mask:
                continue
            for stored in labels:
                if stored is label:
                    continue
                if dominates_scores(stored.scaled_os, stored.bs, label.scaled_os, label.bs):
                    count += 1
        return count
