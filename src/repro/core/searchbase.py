"""Shared machinery of the label-correcting searches.

OSScaling (Algorithm 1), BucketBound (Algorithm 2) and their top-k
variants all share: query binding, per-query scaled edge weights, the two
optimisation strategies of Section 3.2, and route materialisation from a
label chain plus a ``tau`` completion.  :class:`SearchContext` packages
that state so each algorithm module only contains its control flow.
"""

from __future__ import annotations

import numpy as np

from repro.core.label import VIA_EDGE, VIA_JUMP, VIA_ROOT, Label
from repro.core.query import KORQuery, QueryBinding
from repro.core.route import Route
from repro.core.scaling import ScalingContext
from repro.exceptions import PrepError
from repro.graph.digraph import SpatialKeywordGraph
from repro.index.inverted import InvertedIndex
from repro.prep.tables import CostTables

__all__ = ["SearchContext"]


class SearchContext:
    """Per-query state shared by the label-correcting algorithms."""

    def __init__(
        self,
        graph: SpatialKeywordGraph,
        tables: CostTables,
        index: InvertedIndex,
        query: KORQuery,
        scaling: ScalingContext,
        infrequent_threshold: float = 0.01,
        binding: QueryBinding | None = None,
        shared=None,
    ) -> None:
        self.graph = graph
        self.tables = tables
        self.index = index
        self.query = query
        self.scaling = scaling
        # A pre-built binding (the serving layer's reusable query context)
        # skips the per-query index lookups; it must describe this query.
        self.binding = (
            binding if binding is not None else QueryBinding.bind(graph, index, query)
        )
        self.delta = query.budget_limit
        # An optional wave-level cache (duck-typed; in practice a
        # :class:`repro.core.kernels.KernelContext`) shares the per-target
        # column gathers and Strategy-2 screens across the queries of one
        # kernel wave.  The shared values are *identical* to the ones built
        # here — same gathers, same reductions — so scalar runs and wave
        # members see the same floats.
        self._shared = shared

        target = query.target
        columns = shared.target_columns(tables, target) if shared is not None else None
        if columns is not None:
            self.os_tau_t = columns.os_tau
            self.bs_tau_t = columns.bs_tau
            self.bs_sigma_t = columns.bs_sigma
            self.os_tau_t_list = columns.os_tau_list
            self.bs_tau_t_list = columns.bs_tau_list
            self.bs_sigma_t_list = columns.bs_sigma_list
        else:
            #: OS(tau_{i,t}) for every i — the admissible completion bound
            #: behind Lemma 3's LOW(.) and the U-pruning of Algorithm 1.
            self.os_tau_t = tables.os_tau_col(target)
            #: BS(tau_{i,t}) — budget of the objective-optimal completion.
            self.bs_tau_t = tables.bs_tau_col(target)
            #: BS(sigma_{i,t}) — the cheapest possible completion budget; a
            #: label violating ``BS + BS(sigma) <= Delta`` can never be feasible.
            self.bs_sigma_t = tables.bs_sigma_col(target)
            # Plain-list twins of the columns above: scalar indexing of numpy
            # arrays costs ~10x a list lookup, and label creation is the hot
            # path (hundreds of thousands of lookups per query).
            self.os_tau_t_list: list[float] = self.os_tau_t.tolist()
            self.bs_tau_t_list: list[float] = self.bs_tau_t.tolist()
            self.bs_sigma_t_list: list[float] = self.bs_sigma_t.tolist()

        # Lazy caches ---------------------------------------------------
        self._scaled_out: dict[int, tuple[tuple[int, float, float, float], ...]] = {}
        self._uncovered_union: dict[int, np.ndarray] = {}

        # Optimisation Strategy 2 state ----------------------------------
        self._rare_bit: int | None = None
        self._rare_nodes: np.ndarray | None = None
        self._rare_os_to_t: np.ndarray | None = None
        self._rare_bs_to_t: np.ndarray | None = None
        self._rare_min_bs: list[float] | None = None
        self._rare_min_os: list[float] | None = None
        self._prepare_strategy2(infrequent_threshold)

    # ------------------------------------------------------------------
    # feasibility screens run before any search loop
    # ------------------------------------------------------------------
    def impossibility_reason(self) -> str | None:
        """A human-readable reason the query is trivially infeasible, or None.

        Checks vocabulary coverage, target reachability and the cheapest
        conceivable budget ``BS(sigma_{s,t})``.
        """
        missing = self.binding.missing_keywords
        if missing:
            return f"keywords not present in the graph: {', '.join(sorted(missing))}"
        source = self.query.source
        if not np.isfinite(self.os_tau_t[source]):
            return "target is unreachable from source"
        if self.bs_sigma_t[source] > self.delta:
            return (
                f"cheapest route budget {self.bs_sigma_t[source]:.4g} "
                f"exceeds the limit {self.delta:.4g}"
            )
        return None

    def root_label(self) -> Label:
        """The initial label at the source (Algorithm 1 line 3)."""
        source = self.query.source
        return Label(
            node=source,
            mask=self.binding.node_mask(source),
            scaled_os=0.0,
            os=0.0,
            bs=0.0,
            parent=None,
            via=VIA_ROOT,
        )

    # ------------------------------------------------------------------
    # scaled adjacency
    # ------------------------------------------------------------------
    def scaled_out(self, u: int) -> tuple[tuple[int, float, float, float], ...]:
        """Out-edges of *u* as ``(v, objective, budget, scaled_objective)``.

        Computed lazily per node: most queries touch a small fraction of
        the graph, so scaling the whole edge set up front would dominate
        the fast algorithms' runtime.
        """
        cached = self._scaled_out.get(u)
        if cached is None:
            scale = self.scaling.scale
            cached = tuple(
                (v, obj, bud, scale(obj)) for v, obj, bud in self.graph.out_edges(u)
            )
            self._scaled_out[u] = cached
        return cached

    # ------------------------------------------------------------------
    # Optimisation Strategy 1: jump labels
    # ------------------------------------------------------------------
    def jump_candidate(self, label: Label) -> tuple[int, float, float] | None:
        """Strategy 1's extra label target for *label*, or ``None``.

        Returns ``(vj, OS(sigma_{i,j}), BS(sigma_{i,j}))`` for the node vj
        that carries an uncovered query keyword, minimises
        ``BS(sigma_{i,j})``, and still admits a feasible completion:
        ``label.BS + BS(sigma_{i,j}) + BS(sigma_{j,t}) <= Delta``.
        """
        missing = self.binding.full_mask & ~label.mask
        if not missing:
            return None
        nodes = self._uncovered_nodes(missing)
        if len(nodes) == 0:
            return None
        bs_row = self.tables.bs_sigma_row(label.node)
        seg_bs = bs_row[nodes]
        feasible = (label.bs + seg_bs + self.bs_sigma_t[nodes]) <= self.delta
        if not feasible.any():
            return None
        candidates = nodes[feasible]
        seg_bs = seg_bs[feasible]
        best = int(np.argmin(seg_bs))
        vj = int(candidates[best])
        seg_os = float(self.tables.os_sigma_at(label.node, vj))
        return vj, seg_os, float(seg_bs[best])

    #: Cap on memoised uncovered-node unions per search context.  A
    #: query with |kw| keywords has up to ``2^|kw| - 1`` distinct missing
    #: masks; without a bound an adversarial many-keyword query could
    #: pin that many live arrays for the lifetime of the search.
    MAX_UNCOVERED_MEMO = 64

    def _uncovered_nodes(self, missing_mask: int) -> np.ndarray:
        cached = self._uncovered_union.get(missing_mask)
        if cached is None:
            lists = [
                postings
                for bit, postings in enumerate(self.binding.nodes_with_bit)
                if missing_mask & (1 << bit) and len(postings)
            ]
            cached = (
                np.unique(np.concatenate(lists)) if lists else np.empty(0, dtype=np.int64)
            )
            if len(self._uncovered_union) >= self.MAX_UNCOVERED_MEMO:
                self._uncovered_union.pop(next(iter(self._uncovered_union)), None)
            self._uncovered_union[missing_mask] = cached
        return cached

    # ------------------------------------------------------------------
    # Optimisation Strategy 2: infrequent-keyword pruning
    # ------------------------------------------------------------------
    def _prepare_strategy2(self, threshold: float) -> None:
        vocabulary = self.index.vocabulary
        rare_bit: int | None = None
        rare_df = None
        for bit, kid in enumerate(self.binding.keyword_ids):
            if kid is None:
                continue
            df = vocabulary.document_frequency(kid)
            if df == 0 or not vocabulary.is_infrequent(kid, threshold):
                continue
            if rare_df is None or df < rare_df:
                rare_bit, rare_df = bit, df
        if rare_bit is None:
            return
        nodes = self.binding.nodes_with_bit[rare_bit]
        self._rare_bit = rare_bit
        self._rare_nodes = nodes
        self._rare_os_to_t = self.os_tau_t[nodes]
        self._rare_bs_to_t = self.bs_sigma_t[nodes]

        # Scalar screens, one vectorised pass per query: the cheapest
        # budget (resp. objective) of any detour through a rare node from
        # each graph node.  If even the cheapest detour violates a
        # constraint, the label dies on a float compare instead of a numpy
        # reduction — that per-label reduction dominated BucketBound's
        # runtime before this cache existed.
        def build() -> tuple[list[float], list[float]]:
            bs_via = self.tables.bs_sigma_cols(nodes) + self._rare_bs_to_t[None, :]
            os_via = self.tables.os_tau_cols(nodes) + self._rare_os_to_t[None, :]
            return bs_via.min(axis=1).tolist(), os_via.min(axis=1).tolist()

        if self._shared is not None:
            # The reductions depend only on the rare keyword (its posting
            # list) and the target column — cacheable across a wave.
            key = (self.binding.keyword_ids[rare_bit], self.query.target)
            self._rare_min_bs, self._rare_min_os = self._shared.strategy2_screens(key, build)
        else:
            self._rare_min_bs, self._rare_min_os = build()

    @property
    def strategy2_active(self) -> bool:
        """Whether an infrequent query keyword was found."""
        return self._rare_bit is not None

    def strategy2_rejects(self, node: int, mask: int, os: float, bs: float, upper: float) -> bool:
        """Strategy 2's discard test for a freshly created label.

        The label (at *node*, not yet covering the rare keyword) survives
        only if some rare-keyword node ``l`` admits a detour that stays
        within both the objective upper bound and the budget:
        ``os + OS(tau_{node,l}) + OS(tau_{l,t}) <= upper`` and
        ``bs + BS(sigma_{node,l}) + BS(sigma_{l,t}) <= Delta``.

        Runs in three stages: two sound scalar screens (cheapest detour
        budget / objective over all rare nodes), then the exact joint test
        only when an upper bound exists to make it worthwhile.
        """
        if self._rare_bit is None or mask & (1 << self._rare_bit):
            return False
        if bs + self._rare_min_bs[node] > self.delta:
            return True
        if upper == float("inf"):
            # Without an objective bound the joint test degenerates to the
            # budget screen above, which already passed.
            return False
        if os + self._rare_min_os[node] > upper:
            return True
        nodes = self._rare_nodes
        os_via = os + self.tables.os_tau_row(node)[nodes] + self._rare_os_to_t
        bs_via = bs + self.tables.bs_sigma_row(node)[nodes] + self._rare_bs_to_t
        keeps = (os_via <= upper) & (bs_via <= self.delta)
        return not bool(keeps.any())

    # ------------------------------------------------------------------
    # route materialisation
    # ------------------------------------------------------------------
    def materialize(self, label: Label) -> Route:
        """Expand a final label into the full route it represents.

        The route is the label's chain (jump labels expand to their
        ``sigma`` path) followed by the objective-optimal completion
        ``tau_{label.node, target}`` (Algorithm 1 line 22 / Lemma 3).
        """
        nodes: list[int] = []
        prev: int | None = None
        for node, via in label.chain_nodes():
            if via == VIA_ROOT:
                nodes.append(node)
            elif via == VIA_EDGE:
                nodes.append(node)
            elif via == VIA_JUMP:
                assert prev is not None
                nodes.extend(self.tables.sigma_path(prev, node)[1:])
            else:  # pragma: no cover - defensive
                raise PrepError(f"unknown label provenance: {via}")
            prev = node
        assert prev is not None
        completion = self.tables.tau_path(prev, self.query.target)
        nodes.extend(completion[1:])
        return Route.from_nodes(self.graph, nodes)
