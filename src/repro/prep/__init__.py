"""Pre-processing substrate: all-pairs tau/sigma tables (paper Section 3.1)."""

from repro.prep.dijkstra import (
    all_pairs_two_criteria,
    multi_source_two_criteria,
    reconstruct_path,
    single_source_two_criteria,
)
from repro.prep.floyd_warshall import NO_PREDECESSOR, floyd_warshall_two_criteria
from repro.prep.tables import CostTables

__all__ = [
    "CostTables",
    "NO_PREDECESSOR",
    "all_pairs_two_criteria",
    "floyd_warshall_two_criteria",
    "multi_source_two_criteria",
    "reconstruct_path",
    "single_source_two_criteria",
]
