"""All-pairs two-criteria shortest paths via repeated Dijkstra.

The paper runs Floyd-Warshall, which is Theta(V^3) — fine in VC++ on 5k
nodes, hopeless in pure Python.  On sparse graphs the same tables fall out
of one compiled Dijkstra sweep per source (:func:`scipy.sparse.csgraph.
dijkstra`), plus a vectorised *pointer-doubling* pass that recovers the
secondary score of every chosen path without walking paths one by one:

1. scipy returns, per source block, the primary distances and the
   predecessor matrix ``P``.
2. ``step[j] = secondary(P[j], j)`` is gathered in one fancy-indexing shot.
3. ``log2(n)`` rounds of ``S += S[P]; P = P[P]`` accumulate the secondary
   weight along every predecessor chain simultaneously.

Sources are processed in row blocks to bound peak memory, so graphs with
tens of thousands of nodes remain tractable.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

from repro.graph.digraph import SpatialKeywordGraph
from repro.prep.floyd_warshall import NO_PREDECESSOR

__all__ = [
    "all_pairs_two_criteria",
    "multi_source_two_criteria",
    "single_source_two_criteria",
]


def _csr_weight_matrix(graph: SpatialKeywordGraph, which: str) -> csr_matrix:
    indptr, indices, objectives, budgets = graph.to_csr()
    data = objectives if which == "objective" else budgets
    n = graph.num_nodes
    return csr_matrix((data, indices, indptr), shape=(n, n))


def _dense_secondary_lookup(graph: SpatialKeywordGraph, which: str) -> np.ndarray:
    """Dense (n, n) matrix of secondary edge weights (0 where no edge).

    Zeros for non-edges are safe: the pointer-doubling pass only gathers
    entries at true predecessor edges.
    """
    n = graph.num_nodes
    lookup = np.zeros((n, n), dtype=np.float64)
    for edge in graph.iter_edges():
        value = edge.budget if which == "objective" else edge.objective
        lookup[edge.u, edge.v] = value
    return lookup


def _secondary_by_pointer_doubling(
    pred: np.ndarray, sources: np.ndarray, sec_lookup: np.ndarray
) -> np.ndarray:
    """Accumulate secondary weights along every predecessor chain.

    ``pred`` has one row per source in *sources*; entry ``pred[r, j]`` is the
    global id of the node preceding ``j`` on the path from ``sources[r]``.
    """
    rows, n = pred.shape
    cols = np.broadcast_to(np.arange(n, dtype=np.int64), (rows, n))

    # Redirect invalid predecessors (diagonal, unreachable) to the source of
    # the row, which acts as the absorbing chain terminal with step 0.
    source_col = sources.astype(np.int64)[:, None]
    valid = pred >= 0
    chain = np.where(valid, pred.astype(np.int64), source_col)

    step = np.zeros((rows, n), dtype=np.float64)
    step[valid] = sec_lookup[chain[valid], cols[valid]]
    # The terminal must point at itself so repeated jumps add nothing.
    row_idx = np.arange(rows)
    chain[row_idx, sources] = sources
    step[row_idx, sources] = 0.0

    total = step
    hops = max(1, int(np.ceil(np.log2(max(n, 2)))))
    for _ in range(hops):
        total = total + np.take_along_axis(total, chain, axis=1)
        chain = np.take_along_axis(chain, chain, axis=1)
    return total


def all_pairs_two_criteria(
    graph: SpatialKeywordGraph,
    primary: str = "objective",
    block_size: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(primary_cost, secondary_cost, predecessors)`` matrices.

    Same contract as
    :func:`repro.prep.floyd_warshall.floyd_warshall_two_criteria`, except
    ties between primary-optimal paths follow scipy's internal order rather
    than the lexicographic rule; the three matrices still describe one
    consistent path per pair.
    """
    if primary not in ("objective", "budget"):
        raise ValueError(f"primary must be 'objective' or 'budget', got {primary!r}")
    n = graph.num_nodes
    weights = _csr_weight_matrix(graph, primary)
    sec_lookup = _dense_secondary_lookup(graph, primary)

    if block_size is None:
        # Keep per-block scratch (several (block, n) float64 arrays) modest.
        block_size = max(64, min(n, 16_000_000 // max(n, 1)))

    prim_out = np.empty((n, n), dtype=np.float64)
    sec_out = np.empty((n, n), dtype=np.float64)
    pred_out = np.empty((n, n), dtype=np.int32)

    for start in range(0, n, block_size):
        sources = np.arange(start, min(start + block_size, n))
        dist, pred = _csgraph_dijkstra(weights, indices=sources, return_predecessors=True)
        secondary = _secondary_by_pointer_doubling(pred, sources, sec_lookup)
        unreachable = ~np.isfinite(dist)
        secondary[unreachable] = np.inf
        prim_out[sources] = dist
        sec_out[sources] = secondary
        pred_out[sources] = pred

    return prim_out, sec_out, pred_out


def multi_source_two_criteria(
    graph: SpatialKeywordGraph,
    sources: np.ndarray,
    primary: str = "objective",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-per-source variant: ``(primary_cost, secondary_cost, predecessors)``.

    Equivalent to stacking :func:`single_source_two_criteria` over
    *sources*, but the CSR weight matrix and the dense secondary lookup
    are built once and every source shares a single compiled Dijkstra
    sweep — the setup cost is what dominates repeated one-source calls.
    """
    sources = np.asarray(sources, dtype=np.int64)
    if sources.size == 0:
        n = graph.num_nodes
        return (
            np.empty((0, n), dtype=np.float64),
            np.empty((0, n), dtype=np.float64),
            np.empty((0, n), dtype=np.int32),
        )
    weights = _csr_weight_matrix(graph, primary)
    sec_lookup = _dense_secondary_lookup(graph, primary)
    dist, pred = _csgraph_dijkstra(weights, indices=sources, return_predecessors=True)
    secondary = _secondary_by_pointer_doubling(pred, sources, sec_lookup)
    secondary[~np.isfinite(dist)] = np.inf
    return dist, secondary, pred.astype(np.int32)


def single_source_two_criteria(
    graph: SpatialKeywordGraph, source: int, primary: str = "objective"
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One-source variant: ``(primary_cost, secondary_cost, predecessors)`` rows."""
    dist, secondary, pred = multi_source_two_criteria(
        graph, np.asarray([source]), primary
    )
    return dist[0], secondary[0], pred[0]


def reconstruct_path(pred_row: np.ndarray, source: int, target: int) -> list[int]:
    """Walk a predecessor row back from *target* to *source*.

    Returns the node sequence ``[source, ..., target]``; raises
    ``ValueError`` when the target is unreachable.
    """
    if source == target:
        return [source]
    path = [target]
    node = target
    for _ in range(len(pred_row)):
        node = int(pred_row[node])
        if node == NO_PREDECESSOR or node < 0:
            raise ValueError(f"node {target} is unreachable from {source}")
        path.append(node)
        if node == source:
            path.reverse()
            return path
    raise ValueError("predecessor chain does not terminate; corrupt matrix")
