"""Pre-processed cost tables (Section 3.1 of the paper).

For every ordered node pair ``(vi, vj)`` the paper stores the scores of two
paths:

* ``tau_{i,j}``   — the path with the smallest **objective** score;
* ``sigma_{i,j}`` — the path with the smallest **budget** score,

each with *both* its objective score ``OS(.)`` and budget score ``BS(.)``.
Only these four numbers per pair are consulted by the search algorithms;
the predecessor matrices are kept (optionally) so that final routes can be
materialised (Algorithm 1 line 22 "obtain the route utilizing LL").

:class:`CostTables` is the flat O(V^2) realisation the paper uses.  The
partition-based variant sketched in the paper's future-work section lives
in :mod:`repro.prep.partition` and implements the same access protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import PrepError
from repro.graph.digraph import SpatialKeywordGraph
from repro.prep.dijkstra import all_pairs_two_criteria, reconstruct_path
from repro.prep.floyd_warshall import floyd_warshall_two_criteria

__all__ = ["CostTables"]

#: Below this node count Floyd-Warshall is competitive and exactly follows
#: the paper; above it the Dijkstra backend is used.
_AUTO_FW_THRESHOLD = 256


@dataclass
class CostTables:
    """Dense all-pairs tables of ``tau`` / ``sigma`` scores.

    Attributes
    ----------
    os_tau, bs_tau:
        Objective and budget score of the objective-optimal path
        ``tau_{i,j}``, indexed ``[i, j]``; ``inf`` when unreachable.
    os_sigma, bs_sigma:
        Objective and budget score of the budget-optimal path
        ``sigma_{i,j}``.
    pred_tau, pred_sigma:
        Optional predecessor matrices for path materialisation.
    """

    os_tau: np.ndarray
    bs_tau: np.ndarray
    os_sigma: np.ndarray
    bs_sigma: np.ndarray
    pred_tau: np.ndarray | None = None
    pred_sigma: np.ndarray | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        graph: SpatialKeywordGraph,
        method: str = "auto",
        predecessors: bool = True,
        block_size: int | None = None,
    ) -> "CostTables":
        """Compute the tables for *graph*.

        ``method`` is ``"floyd-warshall"`` (the paper's choice, Theta(V^3)),
        ``"dijkstra"`` (sparse-friendly), or ``"auto"``.
        """
        if method == "auto":
            method = (
                "floyd-warshall" if graph.num_nodes <= _AUTO_FW_THRESHOLD else "dijkstra"
            )
        if method == "floyd-warshall":
            os_tau, bs_tau, pred_tau = floyd_warshall_two_criteria(graph, "objective")
            bs_sigma, os_sigma, pred_sigma = floyd_warshall_two_criteria(graph, "budget")
        elif method == "dijkstra":
            os_tau, bs_tau, pred_tau = all_pairs_two_criteria(
                graph, "objective", block_size=block_size
            )
            bs_sigma, os_sigma, pred_sigma = all_pairs_two_criteria(
                graph, "budget", block_size=block_size
            )
        else:
            raise PrepError(f"unknown pre-processing method: {method!r}")
        return cls(
            os_tau=os_tau,
            bs_tau=bs_tau,
            os_sigma=os_sigma,
            bs_sigma=bs_sigma,
            pred_tau=pred_tau if predecessors else None,
            pred_sigma=pred_sigma if predecessors else None,
        )

    def __post_init__(self) -> None:
        n = self.os_tau.shape[0]
        for name in ("os_tau", "bs_tau", "os_sigma", "bs_sigma"):
            matrix = getattr(self, name)
            if matrix.shape != (n, n):
                raise PrepError(f"{name} has shape {matrix.shape}, expected {(n, n)}")

    @property
    def num_nodes(self) -> int:
        """Number of nodes the tables were computed for."""
        return self.os_tau.shape[0]

    @property
    def has_paths(self) -> bool:
        """Whether predecessor matrices (hence path reconstruction) exist."""
        return self.pred_tau is not None

    # ------------------------------------------------------------------
    # access protocol shared with PartitionedCostTables
    # ------------------------------------------------------------------
    def os_tau_col(self, t: int) -> np.ndarray:
        """``OS(tau_{i,t})`` for all ``i`` — read-only view."""
        return self.os_tau[:, t]

    def bs_tau_col(self, t: int) -> np.ndarray:
        """``BS(tau_{i,t})`` for all ``i``."""
        return self.bs_tau[:, t]

    def os_sigma_col(self, t: int) -> np.ndarray:
        """``OS(sigma_{i,t})`` for all ``i``."""
        return self.os_sigma[:, t]

    def bs_sigma_col(self, t: int) -> np.ndarray:
        """``BS(sigma_{i,t})`` for all ``i``."""
        return self.bs_sigma[:, t]

    def os_tau_cols(self, nodes: np.ndarray) -> np.ndarray:
        """``OS(tau_{i,t})`` for all ``i`` and every ``t`` in *nodes*.

        The multi-column gather behind Strategy 2's detour screens; the
        partitioned tables assemble the same shape column by column.
        """
        return self.os_tau[:, nodes]

    def bs_tau_cols(self, nodes: np.ndarray) -> np.ndarray:
        """``BS(tau_{i,t})`` for all ``i`` and every ``t`` in *nodes*.

        Used by the batch kernels to prime a whole wave's target columns
        in one gather.
        """
        return self.bs_tau[:, nodes]

    def bs_sigma_cols(self, nodes: np.ndarray) -> np.ndarray:
        """``BS(sigma_{i,t})`` for all ``i`` and every ``t`` in *nodes*."""
        return self.bs_sigma[:, nodes]

    def os_tau_row(self, i: int) -> np.ndarray:
        """``OS(tau_{i,j})`` for all ``j``."""
        return self.os_tau[i, :]

    def bs_tau_row(self, i: int) -> np.ndarray:
        """``BS(tau_{i,j})`` for all ``j``."""
        return self.bs_tau[i, :]

    def os_sigma_row(self, i: int) -> np.ndarray:
        """``OS(sigma_{i,j})`` for all ``j``."""
        return self.os_sigma[i, :]

    def bs_sigma_row(self, i: int) -> np.ndarray:
        """``BS(sigma_{i,j})`` for all ``j``."""
        return self.bs_sigma[i, :]

    def os_sigma_at(self, i: int, j: int) -> float:
        """``OS(sigma_{i,j})`` as a scalar, without materialising a row."""
        return float(self.os_sigma[i, j])

    def reachable(self, i: int, j: int) -> bool:
        """Whether any path ``i -> j`` exists."""
        return bool(np.isfinite(self.os_tau[i, j]))

    def tau_path(self, i: int, j: int) -> list[int]:
        """Materialise the objective-optimal path ``i -> j`` as a node list."""
        self._require_paths()
        try:
            return reconstruct_path(self.pred_tau[i], i, j)  # type: ignore[index]
        except ValueError as exc:
            raise PrepError(str(exc)) from exc

    def sigma_path(self, i: int, j: int) -> list[int]:
        """Materialise the budget-optimal path ``i -> j`` as a node list."""
        self._require_paths()
        try:
            return reconstruct_path(self.pred_sigma[i], i, j)  # type: ignore[index]
        except ValueError as exc:
            raise PrepError(str(exc)) from exc

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal consistency; raise :class:`PrepError` on violation.

        Invariants: zero diagonals; ``OS(tau) <= OS(sigma)`` (tau minimises
        the objective) and ``BS(sigma) <= BS(tau)`` wherever both exist; the
        two path families agree on reachability.
        """
        n = self.num_nodes
        diag = np.arange(n)
        for name in ("os_tau", "bs_tau", "os_sigma", "bs_sigma"):
            matrix = getattr(self, name)
            if not np.all(matrix[diag, diag] == 0.0):
                raise PrepError(f"{name} has a non-zero diagonal")
        finite = np.isfinite(self.os_tau)
        if not np.array_equal(finite, np.isfinite(self.os_sigma)):
            raise PrepError("tau and sigma disagree on reachability")
        if np.any(self.os_tau[finite] > self.os_sigma[finite] + 1e-9):
            raise PrepError("OS(tau) exceeds OS(sigma) somewhere: tau is not optimal")
        if np.any(self.bs_sigma[finite] > self.bs_tau[finite] + 1e-9):
            raise PrepError("BS(sigma) exceeds BS(tau) somewhere: sigma is not optimal")

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist the tables as a compressed numpy archive."""
        arrays = {
            "os_tau": self.os_tau,
            "bs_tau": self.bs_tau,
            "os_sigma": self.os_sigma,
            "bs_sigma": self.bs_sigma,
        }
        if self.pred_tau is not None:
            arrays["pred_tau"] = self.pred_tau
        if self.pred_sigma is not None:
            arrays["pred_sigma"] = self.pred_sigma
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: str | Path) -> "CostTables":
        """Load tables previously written by :meth:`save`."""
        try:
            data = np.load(path)
        except OSError as exc:
            raise PrepError(f"cannot read cost tables from {path}: {exc}") from exc
        missing = {"os_tau", "bs_tau", "os_sigma", "bs_sigma"} - set(data.files)
        if missing:
            raise PrepError(f"{path} misses arrays: {sorted(missing)}")
        return cls(
            os_tau=data["os_tau"],
            bs_tau=data["bs_tau"],
            os_sigma=data["os_sigma"],
            bs_sigma=data["bs_sigma"],
            pred_tau=data["pred_tau"] if "pred_tau" in data.files else None,
            pred_sigma=data["pred_sigma"] if "pred_sigma" in data.files else None,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require_paths(self) -> None:
        if self.pred_tau is None or self.pred_sigma is None:
            raise PrepError(
                "tables were built with predecessors=False; "
                "path materialisation is unavailable"
            )
