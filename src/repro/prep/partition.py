"""Partition-based pre-processing (the paper's future work, Section 6).

The paper sketches: split the graph into subgraphs, pre-process all-pairs
scores *within* each subgraph only, and additionally store the best
objective/budget scores between every pair of **border nodes** (nodes
with an edge crossing cells).  A cross-cell score is then assembled as

    score(i, j) = min over border exits b1 of cell(i), entries b2 of
                  cell(j) of  in_cell(i -> b1) + border(b1 -> b2) +
                  in_cell(b2 -> j)

This trades accuracy for pre-processing cost: the in-cell legs are
restricted to each cell's induced subgraph, so a path that leaves a cell
and re-enters it is missed and the assembled score is an **upper bound**
on the flat table's value (never an underestimate of the true optimum's
cost... it can only overestimate).  Border-to-border scores are computed
on the *full* graph, which keeps the error to the two end legs.  The
accompanying ablation benchmark quantifies the trade-off — build time and
memory versus score inflation.

:class:`PartitionedCostTables` implements the column/row access protocol
of :class:`repro.prep.tables.CostTables` (scores only; path
materialisation needs the flat predecessor matrices).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import PrepError
from repro.graph.digraph import SpatialKeywordGraph
from repro.prep.dijkstra import single_source_two_criteria
from repro.prep.tables import CostTables

__all__ = ["GraphPartition", "partition_graph", "PartitionedCostTables"]


@dataclass(frozen=True)
class GraphPartition:
    """Assignment of nodes to cells plus the border-node inventory.

    Attributes
    ----------
    cell_of:
        ``cell_of[v]`` is the cell id of node ``v``.
    cells:
        Node arrays per cell.
    border_nodes:
        Sorted array of all nodes with an edge crossing cells.
    border_index:
        Position of each border node in ``border_nodes`` (-1 otherwise).
    """

    cell_of: np.ndarray
    cells: tuple[np.ndarray, ...]
    border_nodes: np.ndarray
    border_index: np.ndarray

    @property
    def num_cells(self) -> int:
        """Number of cells the graph was split into."""
        return len(self.cells)

    def is_border(self, node: int) -> bool:
        """Whether *node* has an edge into or out of another cell."""
        return self.border_index[node] >= 0


def partition_graph(graph: SpatialKeywordGraph, num_cells: int, seed: int = 0) -> GraphPartition:
    """Split *graph* into roughly balanced connected cells.

    Greedy multi-source BFS (a light-weight stand-in for METIS, which is
    unavailable offline): seeds are spread via farthest-point sampling on
    hop distance, then cells claim unassigned neighbours round-robin, so
    cells stay connected and balanced within a factor ~2.
    """
    n = graph.num_nodes
    if not 1 <= num_cells <= n:
        raise PrepError(f"num_cells must be in 1..{n}, got {num_cells}")
    rng = np.random.default_rng(seed)

    # Undirected adjacency for growth (direction matters for scores, not
    # for spatial contiguity).
    neighbours: list[set[int]] = [set() for _ in range(n)]
    for edge in graph.iter_edges():
        neighbours[edge.u].add(edge.v)
        neighbours[edge.v].add(edge.u)

    seeds = _farthest_point_seeds(neighbours, num_cells, rng)
    cell_of = np.full(n, -1, dtype=np.int64)
    frontiers: list[list[int]] = [[] for _ in range(num_cells)]
    for cell, seed_node in enumerate(seeds):
        cell_of[seed_node] = cell
        frontiers[cell] = [seed_node]

    assigned = num_cells
    while assigned < n:
        grew = False
        for cell in range(num_cells):
            frontier = frontiers[cell]
            next_frontier: list[int] = []
            claimed = False
            while frontier and not claimed:
                node = frontier.pop()
                for other in neighbours[node]:
                    if cell_of[other] == -1:
                        cell_of[other] = cell
                        next_frontier.append(other)
                        assigned += 1
                        claimed = True
                if frontier or claimed:
                    next_frontier.append(node) if claimed else None
            frontiers[cell] = next_frontier + frontier
            grew = grew or claimed
        if not grew:
            # Disconnected remainder: hand leftover nodes to the smallest
            # cells so every node lands somewhere.
            leftovers = np.flatnonzero(cell_of == -1)
            sizes = np.bincount(cell_of[cell_of >= 0], minlength=num_cells)
            for node in leftovers:
                cell = int(np.argmin(sizes))
                cell_of[node] = cell
                sizes[cell] += 1
                frontiers[cell].append(int(node))
                assigned += 1

    cells = tuple(
        np.flatnonzero(cell_of == cell).astype(np.int64) for cell in range(num_cells)
    )
    border_mask = np.zeros(n, dtype=bool)
    for edge in graph.iter_edges():
        if cell_of[edge.u] != cell_of[edge.v]:
            border_mask[edge.u] = True
            border_mask[edge.v] = True
    border_nodes = np.flatnonzero(border_mask).astype(np.int64)
    border_index = np.full(n, -1, dtype=np.int64)
    border_index[border_nodes] = np.arange(len(border_nodes))
    return GraphPartition(
        cell_of=cell_of,
        cells=cells,
        border_nodes=border_nodes,
        border_index=border_index,
    )


def _farthest_point_seeds(
    neighbours: list[set[int]], num_cells: int, rng: np.random.Generator
) -> list[int]:
    """Seed nodes spread out by hop distance (farthest-point heuristic)."""
    n = len(neighbours)
    first = int(rng.integers(n))
    seeds = [first]
    distance = _bfs_hops(neighbours, first)
    while len(seeds) < num_cells:
        # Unreached nodes (inf) are the farthest of all — prefer them so
        # disconnected components get their own seeds.
        candidate = int(np.argmax(np.where(np.isfinite(distance), distance, np.inf)))
        if candidate in seeds:
            remaining = [v for v in range(n) if v not in seeds]
            candidate = int(rng.choice(remaining))
        seeds.append(candidate)
        distance = np.minimum(distance, _bfs_hops(neighbours, candidate))
    return seeds


def _bfs_hops(neighbours: list[set[int]], source: int) -> np.ndarray:
    hops = np.full(len(neighbours), np.inf)
    hops[source] = 0
    queue = [source]
    while queue:
        node = queue.pop(0)
        for other in neighbours[node]:
            if hops[other] == np.inf:
                hops[other] = hops[node] + 1
                queue.append(int(other))
    return hops


@dataclass
class PartitionedCostTables:
    """Cell-local tables plus border-to-border tables (future work, §6).

    Implements the scores-only access protocol of :class:`CostTables`:
    ``os_tau_col`` / ``bs_tau_col`` / ``os_sigma_col`` / ``bs_sigma_col``
    and their row twins, plus scalar lookups.  Scores are exact within a
    cell whenever the optimal path stays inside it, and upper bounds
    otherwise (see the module docstring).
    """

    partition: GraphPartition
    #: Per cell: dense in-cell tables indexed by local position.
    cell_tables: tuple[CostTables, ...]
    #: Global position of each node inside its cell.
    local_index: np.ndarray
    #: Border x border score matrices on the full graph.
    border_os_tau: np.ndarray
    border_bs_tau: np.ndarray
    border_os_sigma: np.ndarray
    border_bs_sigma: np.ndarray
    #: Cached per-target columns (queries hit the same target repeatedly).
    _column_cache: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        graph: SpatialKeywordGraph,
        num_cells: int | None = None,
        seed: int = 0,
    ) -> "PartitionedCostTables":
        """Partition *graph* and build all component tables.

        ``num_cells`` defaults to ``sqrt(n) / 2`` — cells of roughly
        ``2 * sqrt(n)`` nodes, the classic space/accuracy sweet spot.
        """
        n = graph.num_nodes
        if num_cells is None:
            num_cells = max(2, int(np.sqrt(n) / 2))
        partition = partition_graph(graph, num_cells, seed=seed)

        local_index = np.zeros(n, dtype=np.int64)
        subgraphs = []
        for nodes in partition.cells:
            local_index[nodes] = np.arange(len(nodes))
            subgraph, _mapping = graph.induced_subgraph([int(v) for v in nodes])
            subgraphs.append(subgraph)
        cell_tables = tuple(
            CostTables.from_graph(sub, predecessors=False) for sub in subgraphs
        )

        border = partition.border_nodes
        k = len(border)
        border_os_tau = np.full((k, k), np.inf)
        border_bs_tau = np.full((k, k), np.inf)
        border_os_sigma = np.full((k, k), np.inf)
        border_bs_sigma = np.full((k, k), np.inf)
        for row, node in enumerate(border):
            os_tau, bs_tau, _pred = single_source_two_criteria(graph, int(node), "objective")
            bs_sigma, os_sigma, _pred = single_source_two_criteria(graph, int(node), "budget")
            border_os_tau[row] = os_tau[border]
            border_bs_tau[row] = bs_tau[border]
            border_os_sigma[row] = os_sigma[border]
            border_bs_sigma[row] = bs_sigma[border]
        return cls(
            partition=partition,
            cell_tables=cell_tables,
            local_index=local_index,
            border_os_tau=border_os_tau,
            border_bs_tau=border_bs_tau,
            border_os_sigma=border_os_sigma,
            border_bs_sigma=border_bs_sigma,
        )

    # ------------------------------------------------------------------
    # scalar lookups
    # ------------------------------------------------------------------
    def os_tau(self, i: int, j: int) -> float:
        """Assembled ``OS(tau_{i,j})`` (exact in-cell, else upper bound)."""
        return self._score(i, j, "tau")[0]

    def bs_tau(self, i: int, j: int) -> float:
        """``BS`` of the assembled objective-optimal path."""
        return self._score(i, j, "tau")[1]

    def os_sigma(self, i: int, j: int) -> float:
        """``OS`` of the assembled budget-optimal path."""
        return self._score(i, j, "sigma")[0]

    def bs_sigma(self, i: int, j: int) -> float:
        """Assembled ``BS(sigma_{i,j})``."""
        return self._score(i, j, "sigma")[1]

    # ------------------------------------------------------------------
    # column access (protocol shared with CostTables)
    # ------------------------------------------------------------------
    def os_tau_col(self, t: int) -> np.ndarray:
        """Assembled ``OS(tau_{i,t})`` for every ``i``."""
        return self._columns(t, "tau")[0]

    def bs_tau_col(self, t: int) -> np.ndarray:
        """Assembled ``BS`` along tau for every ``i``."""
        return self._columns(t, "tau")[1]

    def os_sigma_col(self, t: int) -> np.ndarray:
        """Assembled ``OS`` along sigma for every ``i``."""
        return self._columns(t, "sigma")[0]

    def bs_sigma_col(self, t: int) -> np.ndarray:
        """Assembled ``BS(sigma_{i,t})`` for every ``i``."""
        return self._columns(t, "sigma")[1]

    # ------------------------------------------------------------------
    # memory accounting (the ablation's headline number)
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Bytes held by every score matrix (cells + border)."""
        total = 0
        for tables in self.cell_tables:
            for name in ("os_tau", "bs_tau", "os_sigma", "bs_sigma"):
                total += getattr(tables, name).nbytes
        for matrix in (
            self.border_os_tau,
            self.border_bs_tau,
            self.border_os_sigma,
            self.border_bs_sigma,
        ):
            total += matrix.nbytes
        return total

    @staticmethod
    def flat_memory_bytes(num_nodes: int, dtype_bytes: int = 8) -> int:
        """Bytes a flat :class:`CostTables` needs for the same graph."""
        return 4 * num_nodes * num_nodes * dtype_bytes

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _in_cell(self, kind: str, cell: int) -> tuple[np.ndarray, np.ndarray]:
        tables = self.cell_tables[cell]
        if kind == "tau":
            return tables.os_tau, tables.bs_tau
        return tables.os_sigma, tables.bs_sigma

    def _border_matrices(self, kind: str) -> tuple[np.ndarray, np.ndarray]:
        if kind == "tau":
            return self.border_os_tau, self.border_bs_tau
        return self.border_os_sigma, self.border_bs_sigma

    def _cell_border_positions(self, cell: int) -> np.ndarray:
        """Rows of ``border_nodes`` belonging to *cell*."""
        nodes = self.partition.cells[cell]
        positions = self.partition.border_index[nodes]
        return positions[positions >= 0]

    def _score(self, i: int, j: int, kind: str) -> tuple[float, float]:
        part = self.partition
        ci, cj = int(part.cell_of[i]), int(part.cell_of[j])
        li, lj = int(self.local_index[i]), int(self.local_index[j])
        primary_best, secondary_best = np.inf, np.inf
        if ci == cj:
            os_m, bs_m = self._in_cell(kind, ci)
            if kind == "tau":
                primary_best, secondary_best = float(os_m[li, lj]), float(bs_m[li, lj])
            else:
                primary_best, secondary_best = float(bs_m[li, lj]), float(os_m[li, lj])

        exits = self._cell_border_positions(ci)
        entries = self._cell_border_positions(cj)
        if len(exits) and len(entries):
            os_i, bs_i = self._in_cell(kind, ci)
            os_j, bs_j = self._in_cell(kind, cj)
            border_os, border_bs = self._border_matrices(kind)
            exit_nodes = part.border_nodes[exits]
            entry_nodes = part.border_nodes[entries]
            # legs: i -> exit (in cell), exit -> entry (border), entry -> j.
            leg1_os = os_i[li, self.local_index[exit_nodes]]
            leg1_bs = bs_i[li, self.local_index[exit_nodes]]
            leg3_os = os_j[self.local_index[entry_nodes], lj]
            leg3_bs = bs_j[self.local_index[entry_nodes], lj]
            total_os = (
                leg1_os[:, None] + border_os[np.ix_(exits, entries)] + leg3_os[None, :]
            )
            total_bs = (
                leg1_bs[:, None] + border_bs[np.ix_(exits, entries)] + leg3_bs[None, :]
            )
            primary = total_os if kind == "tau" else total_bs
            secondary = total_bs if kind == "tau" else total_os
            if primary.size:
                flat = int(np.argmin(primary))
                if primary.flat[flat] < primary_best:
                    primary_best = float(primary.flat[flat])
                    secondary_best = float(secondary.flat[flat])
        if kind == "tau":
            return primary_best, secondary_best
        return secondary_best, primary_best

    def _columns(self, t: int, kind: str) -> tuple[np.ndarray, np.ndarray]:
        key = (t, kind)
        cached = self._column_cache.get(key)
        if cached is not None:
            return cached
        n = len(self.partition.cell_of)
        os_col = np.full(n, np.inf)
        bs_col = np.full(n, np.inf)
        for i in range(n):
            os_value, bs_value = self._score(i, t, kind)
            os_col[i] = os_value
            bs_col[i] = bs_value
        self._column_cache[key] = (os_col, bs_col)
        return os_col, bs_col
