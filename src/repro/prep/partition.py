"""Partition-based pre-processing (the paper's future work, Section 6).

The paper sketches: split the graph into subgraphs, pre-process all-pairs
scores *within* each subgraph only, and additionally store the best
objective/budget scores between every pair of **border nodes** (nodes
with an edge crossing cells).  A cross-cell score is then assembled as

    score(i, j) = min over border exits b1 of cell(i), entries b2 of
                  cell(j) of  in_cell(i -> b1) + border(b1 -> b2) +
                  in_cell(b2 -> j)

This assembly is **exact**, not merely an upper bound.  Crossing a cell
boundary is only possible along an edge whose endpoints are both border
nodes, so any optimal path from ``i`` decomposes at its *first* border
node ``b1`` (the prefix can never have left ``cell(i)``) and its *last*
border node ``b2`` (the suffix can never leave ``cell(j)``), while the
middle ``b1 -> b2`` leg is measured on the **full** graph.  Minimising
over every ``(b1, b2)`` combination therefore recovers the flat table's
value for both path families (``tau`` and ``sigma``), and a path that
never touches a border node is covered by the in-cell term.  What the
partitioned tables trade away is not accuracy but *pre-processing
shape*: ``O(sum n_c^2 + k^2)`` floats instead of ``O(n^2)``, with per-pair
assembly work at query time.  The accompanying ablation benchmark
quantifies build time and memory against the flat tables.

:class:`PartitionedCostTables` implements the full access protocol of
:class:`repro.prep.tables.CostTables` — scalar lookups, row/column
views, multi-column gathers, and (when built with ``predecessors=True``)
``tau_path`` / ``sigma_path`` materialisation that stitches the in-cell
legs (via each cell's predecessor matrices) to the border leg (via one
stored full-graph predecessor row per border node).  That is what lets
:class:`repro.service.crosscell.BorderEngine` run every search algorithm
over a partitioned graph with flat-engine semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import PrepError
from repro.graph.digraph import SpatialKeywordGraph
from repro.prep.dijkstra import multi_source_two_criteria, reconstruct_path
from repro.prep.tables import CostTables

__all__ = ["GraphPartition", "partition_graph", "PartitionedCostTables"]


@dataclass(frozen=True)
class GraphPartition:
    """Assignment of nodes to cells plus the border-node inventory.

    Attributes
    ----------
    cell_of:
        ``cell_of[v]`` is the cell id of node ``v``.
    cells:
        Node arrays per cell (sorted ascending, so ``cells[c][local]`` is
        the global id of the cell's ``local``-th node — the same dense
        re-indexing :meth:`repro.graph.digraph.SpatialKeywordGraph.
        induced_subgraph` applies).
    border_nodes:
        Sorted array of all nodes with an edge crossing cells.
    border_index:
        Position of each border node in ``border_nodes`` (-1 otherwise).
    """

    cell_of: np.ndarray
    cells: tuple[np.ndarray, ...]
    border_nodes: np.ndarray
    border_index: np.ndarray

    @property
    def num_cells(self) -> int:
        """Number of cells the graph was split into."""
        return len(self.cells)

    def is_border(self, node: int) -> bool:
        """Whether *node* has an edge into or out of another cell."""
        return self.border_index[node] >= 0


def partition_graph(graph: SpatialKeywordGraph, num_cells: int, seed: int = 0) -> GraphPartition:
    """Split *graph* into roughly balanced connected cells.

    Greedy multi-source BFS (a light-weight stand-in for METIS, which is
    unavailable offline): seeds are spread via farthest-point sampling on
    hop distance, then cells claim unassigned neighbours round-robin, so
    cells stay connected and balanced within a factor ~2.
    """
    n = graph.num_nodes
    if not 1 <= num_cells <= n:
        raise PrepError(f"num_cells must be in 1..{n}, got {num_cells}")
    rng = np.random.default_rng(seed)

    # Undirected adjacency for growth (direction matters for scores, not
    # for spatial contiguity).
    neighbours: list[set[int]] = [set() for _ in range(n)]
    for edge in graph.iter_edges():
        neighbours[edge.u].add(edge.v)
        neighbours[edge.v].add(edge.u)

    seeds = _farthest_point_seeds(neighbours, num_cells, rng)
    cell_of = np.full(n, -1, dtype=np.int64)
    frontiers: list[list[int]] = [[] for _ in range(num_cells)]
    for cell, seed_node in enumerate(seeds):
        cell_of[seed_node] = cell
        frontiers[cell] = [seed_node]

    assigned = num_cells
    while assigned < n:
        grew = False
        for cell in range(num_cells):
            frontier = frontiers[cell]
            next_frontier: list[int] = []
            claimed = False
            while frontier and not claimed:
                node = frontier.pop()
                for other in neighbours[node]:
                    if cell_of[other] == -1:
                        cell_of[other] = cell
                        next_frontier.append(other)
                        assigned += 1
                        claimed = True
                if frontier or claimed:
                    next_frontier.append(node) if claimed else None
            frontiers[cell] = next_frontier + frontier
            grew = grew or claimed
        if not grew:
            # Disconnected remainder: hand leftover nodes to the smallest
            # cells so every node lands somewhere.
            leftovers = np.flatnonzero(cell_of == -1)
            sizes = np.bincount(cell_of[cell_of >= 0], minlength=num_cells)
            for node in leftovers:
                cell = int(np.argmin(sizes))
                cell_of[node] = cell
                sizes[cell] += 1
                frontiers[cell].append(int(node))
                assigned += 1

    cells = tuple(
        np.flatnonzero(cell_of == cell).astype(np.int64) for cell in range(num_cells)
    )
    border_mask = np.zeros(n, dtype=bool)
    for edge in graph.iter_edges():
        if cell_of[edge.u] != cell_of[edge.v]:
            border_mask[edge.u] = True
            border_mask[edge.v] = True
    border_nodes = np.flatnonzero(border_mask).astype(np.int64)
    border_index = np.full(n, -1, dtype=np.int64)
    border_index[border_nodes] = np.arange(len(border_nodes))
    return GraphPartition(
        cell_of=cell_of,
        cells=cells,
        border_nodes=border_nodes,
        border_index=border_index,
    )


def _farthest_point_seeds(
    neighbours: list[set[int]], num_cells: int, rng: np.random.Generator
) -> list[int]:
    """Seed nodes spread out by hop distance (farthest-point heuristic)."""
    n = len(neighbours)
    first = int(rng.integers(n))
    seeds = [first]
    distance = _bfs_hops(neighbours, first)
    while len(seeds) < num_cells:
        # Unreached nodes (inf) are the farthest of all — prefer them so
        # disconnected components get their own seeds.
        candidate = int(np.argmax(np.where(np.isfinite(distance), distance, np.inf)))
        if candidate in seeds:
            remaining = [v for v in range(n) if v not in seeds]
            candidate = int(rng.choice(remaining))
        seeds.append(candidate)
        distance = np.minimum(distance, _bfs_hops(neighbours, candidate))
    return seeds


def _bfs_hops(neighbours: list[set[int]], source: int) -> np.ndarray:
    hops = np.full(len(neighbours), np.inf)
    hops[source] = 0
    queue = [source]
    while queue:
        node = queue.pop(0)
        for other in neighbours[node]:
            if hops[other] == np.inf:
                hops[other] = hops[node] + 1
                queue.append(int(other))
    return hops


def _lex_min(primary: np.ndarray, secondary: np.ndarray, axis: int) -> tuple[np.ndarray, np.ndarray]:
    """Minimise *primary* along *axis*; break ties by smallest *secondary*.

    Unreachable entries (``inf`` primary) yield ``inf`` in both outputs.
    """
    best = primary.min(axis=axis)
    expanded = np.expand_dims(best, axis)
    tied_secondary = np.where(primary == expanded, secondary, np.inf)
    best_secondary = tied_secondary.min(axis=axis)
    return best, np.where(np.isfinite(best), best_secondary, np.inf)


def _lex_argmin(primary: np.ndarray, secondary: np.ndarray) -> int:
    """Index of the lexicographically smallest ``(primary, secondary)`` pair."""
    best = primary.min()
    tied = np.where(primary == best, secondary, np.inf)
    return int(np.argmin(tied))


#: Byte budget per assembled-row/column cache side.  Each entry holds two
#: length-n float64 arrays; without a bound a long-lived engine serving
#: varied targets would quietly regrow the very ``O(n^2)`` footprint the
#: partitioned tables exist to eliminate.
_CACHE_BYTE_BUDGET = 2_000_000
#: Entry floor so tiny graphs / huge graphs still keep enough locality
#: for one query's worth of repeated lookups.
_CACHE_MIN_ENTRIES = 16


class _LRUPairCache:
    """Tiny LRU for ``(node, kind) -> (primary, secondary)`` pairs."""

    def __init__(self, num_nodes: int) -> None:
        per_entry = 2 * 8 * max(num_nodes, 1)
        self.capacity = max(_CACHE_MIN_ENTRIES, _CACHE_BYTE_BUDGET // per_entry)
        self._data: dict = {}

    def get(self, key):
        value = self._data.get(key)
        if value is not None:
            # Re-insert to mark recency (dicts preserve insertion order).
            del self._data[key]
            self._data[key] = value
        return value

    def put(self, key, value) -> None:
        if key not in self._data and len(self._data) >= self.capacity:
            self._data.pop(next(iter(self._data)))
        self._data[key] = value

    def __len__(self) -> int:
        return len(self._data)

    def __eq__(self, other) -> bool:  # tests compare against {} after pickling
        if isinstance(other, _LRUPairCache):
            return self._data == other._data
        return self._data == other

    def nbytes(self) -> int:
        """Bytes held by the cached arrays."""
        return sum(
            primary.nbytes + secondary.nbytes
            for primary, secondary in self._data.values()
        )


@dataclass
class PartitionedCostTables:
    """Cell-local tables plus border-to-border tables (future work, §6).

    Implements the full access protocol of :class:`CostTables` — scalar
    lookups, ``*_col`` / ``*_row`` views, ``*_cols`` gathers and (with
    ``predecessors=True``) path materialisation.  Assembled scores are
    **exact** (see the module docstring): in-cell whenever the optimal
    path stays inside one cell, stitched through the best border-node
    pair otherwise.  Row/column results are cached per node — queries
    hit the same target repeatedly — in LRU caches bounded to
    ``_CACHE_BYTE_BUDGET`` bytes each (reported by :meth:`cache_bytes`),
    so long-lived instances amortise assembly cost without ever
    regrowing an ``O(n^2)`` resident footprint.
    """

    partition: GraphPartition
    #: Per cell: dense in-cell tables indexed by local position.
    cell_tables: tuple[CostTables, ...]
    #: Local position of each node inside its cell.
    local_index: np.ndarray
    #: Border x border score matrices on the full graph.
    border_os_tau: np.ndarray
    border_bs_tau: np.ndarray
    border_os_sigma: np.ndarray
    border_bs_sigma: np.ndarray
    #: Full-graph predecessor rows, one per border node (optional).
    border_pred_tau: np.ndarray | None = None
    border_pred_sigma: np.ndarray | None = None
    #: Cached per-target columns (queries hit the same target repeatedly).
    _column_cache: _LRUPairCache | None = field(default=None, repr=False)
    #: Cached per-source rows (greedy expansion walks one node at a time).
    _row_cache: _LRUPairCache | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self._column_cache is None:
            self._column_cache = _LRUPairCache(self.num_nodes)
        if self._row_cache is None:
            self._row_cache = _LRUPairCache(self.num_nodes)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        graph: SpatialKeywordGraph,
        num_cells: int | None = None,
        seed: int = 0,
        partition: GraphPartition | None = None,
        cell_tables: tuple[CostTables, ...] | None = None,
        predecessors: bool = False,
    ) -> "PartitionedCostTables":
        """Partition *graph* and build all component tables.

        ``num_cells`` defaults to ``sqrt(n) / 2`` — cells of roughly
        ``2 * sqrt(n)`` nodes, the classic space/accuracy sweet spot.
        A pre-computed ``partition`` and per-cell ``cell_tables`` (one
        :class:`CostTables` per cell over its induced subgraph, in cell
        order) can be supplied to share state with an existing sharded
        deployment instead of re-pre-processing every cell.
        ``predecessors=True`` keeps one full-graph predecessor row per
        border node (and requires path-capable cell tables), enabling
        ``tau_path`` / ``sigma_path``.
        """
        n = graph.num_nodes
        if partition is None:
            if num_cells is None:
                num_cells = max(2, int(np.sqrt(n) / 2))
            partition = partition_graph(graph, num_cells, seed=seed)

        local_index = np.zeros(n, dtype=np.int64)
        for nodes in partition.cells:
            local_index[nodes] = np.arange(len(nodes))

        if cell_tables is None:
            built = []
            for nodes in partition.cells:
                subgraph, _mapping = graph.induced_subgraph([int(v) for v in nodes])
                built.append(CostTables.from_graph(subgraph, predecessors=predecessors))
            cell_tables = tuple(built)
        else:
            cell_tables = tuple(cell_tables)
            if len(cell_tables) != partition.num_cells:
                raise PrepError(
                    f"got {len(cell_tables)} cell tables for "
                    f"{partition.num_cells} cells"
                )
            for cell, (nodes, tables) in enumerate(zip(partition.cells, cell_tables)):
                if tables.num_nodes != len(nodes):
                    raise PrepError(
                        f"cell {cell} has {len(nodes)} nodes but its tables "
                        f"cover {tables.num_nodes}"
                    )
                if predecessors and not tables.has_paths:
                    raise PrepError(
                        f"cell {cell} tables lack predecessor matrices; "
                        "path materialisation needs predecessors=True cells"
                    )

        border = partition.border_nodes
        # One batched sweep per criterion: the per-call setup (CSR build,
        # dense secondary lookup) dominates a per-node loop on graphs of
        # this size, and the border tier is the shared term between full
        # rebuilds and incremental repair.
        os_tau, bs_tau, pred_tau = multi_source_two_criteria(
            graph, border, "objective"
        )
        bs_sigma, os_sigma, pred_sigma = multi_source_two_criteria(
            graph, border, "budget"
        )
        border_os_tau = os_tau[:, border]
        border_bs_tau = bs_tau[:, border]
        border_os_sigma = os_sigma[:, border]
        border_bs_sigma = bs_sigma[:, border]
        border_pred_tau = pred_tau if predecessors else None
        border_pred_sigma = pred_sigma if predecessors else None
        return cls(
            partition=partition,
            cell_tables=cell_tables,
            local_index=local_index,
            border_os_tau=border_os_tau,
            border_bs_tau=border_bs_tau,
            border_os_sigma=border_os_sigma,
            border_bs_sigma=border_bs_sigma,
            border_pred_tau=border_pred_tau,
            border_pred_sigma=border_pred_sigma,
        )

    # ------------------------------------------------------------------
    # pickling (handles ship these to process-pool workers)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # Caches are derived state: shipping them would bloat every
        # worker pickle with whatever the parent happened to look up.
        state["_column_cache"] = _LRUPairCache(self.num_nodes)
        state["_row_cache"] = _LRUPairCache(self.num_nodes)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes the tables were computed for."""
        return len(self.partition.cell_of)

    @property
    def has_paths(self) -> bool:
        """Whether path materialisation is available."""
        return self.border_pred_tau is not None and all(
            tables.has_paths for tables in self.cell_tables
        )

    def reachable(self, i: int, j: int) -> bool:
        """Whether any path ``i -> j`` exists."""
        return bool(np.isfinite(self.os_tau(i, j)))

    # ------------------------------------------------------------------
    # scalar lookups
    # ------------------------------------------------------------------
    def os_tau(self, i: int, j: int) -> float:
        """Assembled ``OS(tau_{i,j})`` (exact; see module docstring)."""
        return self._pair(i, j, "tau")[0]

    def bs_tau(self, i: int, j: int) -> float:
        """``BS`` of the assembled objective-optimal path."""
        return self._pair(i, j, "tau")[1]

    def os_sigma(self, i: int, j: int) -> float:
        """``OS`` of the assembled budget-optimal path."""
        return self._pair(i, j, "sigma")[1]

    def bs_sigma(self, i: int, j: int) -> float:
        """Assembled ``BS(sigma_{i,j})`` (exact)."""
        return self._pair(i, j, "sigma")[0]

    # ------------------------------------------------------------------
    # column access (protocol shared with CostTables)
    # ------------------------------------------------------------------
    def os_tau_col(self, t: int) -> np.ndarray:
        """Assembled ``OS(tau_{i,t})`` for every ``i``."""
        return self._columns(t, "tau")[0]

    def bs_tau_col(self, t: int) -> np.ndarray:
        """Assembled ``BS`` along tau for every ``i``."""
        return self._columns(t, "tau")[1]

    def os_sigma_col(self, t: int) -> np.ndarray:
        """Assembled ``OS`` along sigma for every ``i``."""
        return self._columns(t, "sigma")[1]

    def bs_sigma_col(self, t: int) -> np.ndarray:
        """Assembled ``BS(sigma_{i,t})`` for every ``i``."""
        return self._columns(t, "sigma")[0]

    def os_tau_cols(self, nodes: np.ndarray) -> np.ndarray:
        """``OS(tau_{i,t})`` for every ``i`` and every ``t`` in *nodes*."""
        return self._gather_cols(nodes, self.os_tau_col)

    def bs_tau_cols(self, nodes: np.ndarray) -> np.ndarray:
        """``BS(tau_{i,t})`` for every ``i`` and every ``t`` in *nodes*."""
        return self._gather_cols(nodes, self.bs_tau_col)

    def bs_sigma_cols(self, nodes: np.ndarray) -> np.ndarray:
        """``BS(sigma_{i,t})`` for every ``i`` and every ``t`` in *nodes*."""
        return self._gather_cols(nodes, self.bs_sigma_col)

    # ------------------------------------------------------------------
    # row access (protocol shared with CostTables)
    # ------------------------------------------------------------------
    def os_tau_row(self, i: int) -> np.ndarray:
        """Assembled ``OS(tau_{i,j})`` for every ``j``."""
        return self._rows(i, "tau")[0]

    def bs_tau_row(self, i: int) -> np.ndarray:
        """Assembled ``BS`` along tau for every ``j``."""
        return self._rows(i, "tau")[1]

    def os_sigma_row(self, i: int) -> np.ndarray:
        """Assembled ``OS`` along sigma for every ``j``."""
        return self._rows(i, "sigma")[1]

    def bs_sigma_row(self, i: int) -> np.ndarray:
        """Assembled ``BS(sigma_{i,j})`` for every ``j``."""
        return self._rows(i, "sigma")[0]

    def os_sigma_at(self, i: int, j: int) -> float:
        """``OS(sigma_{i,j})`` as a scalar, without assembling a row."""
        return self.os_sigma(i, j)

    # ------------------------------------------------------------------
    # path materialisation (protocol shared with CostTables)
    # ------------------------------------------------------------------
    def tau_path(self, i: int, j: int) -> list[int]:
        """Materialise the objective-optimal path ``i -> j`` (global ids)."""
        return self._path(int(i), int(j), "tau")

    def sigma_path(self, i: int, j: int) -> list[int]:
        """Materialise the budget-optimal path ``i -> j`` (global ids)."""
        return self._path(int(i), int(j), "sigma")

    # ------------------------------------------------------------------
    # memory accounting (the ablation's headline number)
    # ------------------------------------------------------------------
    def memory_bytes(self, include_paths: bool = False) -> int:
        """Bytes held by every score matrix (cells + border).

        ``include_paths=True`` additionally counts the predecessor
        matrices (cell and border) that path materialisation needs.
        """
        total = 0
        names = ["os_tau", "bs_tau", "os_sigma", "bs_sigma"]
        if include_paths:
            names += ["pred_tau", "pred_sigma"]
        for tables in self.cell_tables:
            for name in names:
                matrix = getattr(tables, name)
                if matrix is not None:
                    total += matrix.nbytes
        border = [
            self.border_os_tau,
            self.border_bs_tau,
            self.border_os_sigma,
            self.border_bs_sigma,
        ]
        if include_paths:
            border += [self.border_pred_tau, self.border_pred_sigma]
        for matrix in border:
            if matrix is not None:
                total += matrix.nbytes
        return total

    def cache_bytes(self) -> int:
        """Bytes currently held by the bounded row/column LRU caches."""
        return self._column_cache.nbytes() + self._row_cache.nbytes()

    @staticmethod
    def flat_memory_bytes(num_nodes: int, dtype_bytes: int = 8) -> int:
        """Bytes a flat :class:`CostTables` needs for the same graph."""
        return 4 * num_nodes * num_nodes * dtype_bytes

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _in_cell(self, kind: str, cell: int) -> tuple[np.ndarray, np.ndarray]:
        """(primary, secondary) in-cell matrices for *kind*."""
        tables = self.cell_tables[cell]
        if kind == "tau":
            return tables.os_tau, tables.bs_tau
        return tables.bs_sigma, tables.os_sigma

    def _border_matrices(self, kind: str) -> tuple[np.ndarray, np.ndarray]:
        """(primary, secondary) border-to-border matrices for *kind*."""
        if kind == "tau":
            return self.border_os_tau, self.border_bs_tau
        return self.border_bs_sigma, self.border_os_sigma

    def _cell_border_positions(self, cell: int) -> np.ndarray:
        """Rows of ``border_nodes`` belonging to *cell*."""
        nodes = self.partition.cells[cell]
        positions = self.partition.border_index[nodes]
        return positions[positions >= 0]

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise PrepError(f"node {node} outside 0..{self.num_nodes - 1}")

    def _pair(self, i: int, j: int, kind: str) -> tuple[float, float]:
        primary, secondary, _combo = self._assemble_pair(int(i), int(j), kind)
        return primary, secondary

    def _assemble_pair(
        self, i: int, j: int, kind: str
    ) -> tuple[float, float, tuple[int, int] | None]:
        """One assembled ``(primary, secondary, decomposition)`` entry.

        The decomposition is ``None`` when the in-cell path wins (or
        nothing is reachable) and ``(b1, b2)`` — global border node ids —
        when the stitched path wins.  Ties prefer the in-cell path, then
        the lexicographically smaller ``(primary, secondary)`` combo,
        exactly mirroring the vectorised row/column assembly.
        """
        self._check_node(i)
        self._check_node(j)
        part = self.partition
        ci, cj = int(part.cell_of[i]), int(part.cell_of[j])
        li, lj = int(self.local_index[i]), int(self.local_index[j])
        best_primary, best_secondary = np.inf, np.inf
        if ci == cj:
            prim_m, sec_m = self._in_cell(kind, ci)
            best_primary = float(prim_m[li, lj])
            best_secondary = float(sec_m[li, lj])
        combo: tuple[int, int] | None = None

        exits = self._cell_border_positions(ci)
        entries = self._cell_border_positions(cj)
        if len(exits) and len(entries):
            prim_i, sec_i = self._in_cell(kind, ci)
            prim_j, sec_j = self._in_cell(kind, cj)
            border_prim, border_sec = self._border_matrices(kind)
            exit_nodes = part.border_nodes[exits]
            entry_nodes = part.border_nodes[entries]
            # legs: i -> exit (in cell), exit -> entry (border), entry -> j,
            # associated as leg1 + (border + leg3) to match _columns.
            leg1_prim = prim_i[li, self.local_index[exit_nodes]]
            leg1_sec = sec_i[li, self.local_index[exit_nodes]]
            leg3_prim = prim_j[self.local_index[entry_nodes], lj]
            leg3_sec = sec_j[self.local_index[entry_nodes], lj]
            mid_prim_all = border_prim[np.ix_(exits, entries)] + leg3_prim[None, :]
            mid_sec_all = border_sec[np.ix_(exits, entries)] + leg3_sec[None, :]
            mid_prim, mid_sec = _lex_min(mid_prim_all, mid_sec_all, axis=1)
            total_prim = leg1_prim + mid_prim
            total_sec = leg1_sec + mid_sec
            pick = _lex_argmin(total_prim, total_sec)
            cand_prim = float(total_prim[pick])
            cand_sec = float(total_sec[pick])
            if (cand_prim, cand_sec) < (best_primary, best_secondary):
                best_primary, best_secondary = cand_prim, cand_sec
                entry_pick = _lex_argmin(mid_prim_all[pick], mid_sec_all[pick])
                combo = (int(exit_nodes[pick]), int(entry_nodes[entry_pick]))
        return best_primary, best_secondary, combo

    def _columns(self, t: int, kind: str) -> tuple[np.ndarray, np.ndarray]:
        """Assembled ``(primary, secondary)`` columns for target *t*."""
        key = (t, kind)
        cached = self._column_cache.get(key)
        if cached is not None:
            return cached
        self._check_node(t)
        part = self.partition
        n = self.num_nodes
        ct = int(part.cell_of[t])
        lt = int(self.local_index[t])
        prim_col = np.full(n, np.inf)
        sec_col = np.full(n, np.inf)

        entries = self._cell_border_positions(ct)
        have_mid = len(entries) > 0
        if have_mid:
            prim_t, sec_t = self._in_cell(kind, ct)
            entry_nodes = part.border_nodes[entries]
            leg3_prim = prim_t[self.local_index[entry_nodes], lt]
            leg3_sec = sec_t[self.local_index[entry_nodes], lt]
            border_prim, border_sec = self._border_matrices(kind)
            # mid[b1] = best (border(b1 -> b2) + in-cell(b2 -> t)) over
            # all entries b2 of cell(t): one (k,)-vector for the column.
            mid_prim, mid_sec = _lex_min(
                border_prim[:, entries] + leg3_prim[None, :],
                border_sec[:, entries] + leg3_sec[None, :],
                axis=1,
            )

        for cell in range(part.num_cells):
            nodes = part.cells[cell]
            prim_m, sec_m = self._in_cell(kind, cell)
            if cell == ct:
                best_prim = prim_m[:, lt].copy()
                best_sec = sec_m[:, lt].copy()
            else:
                best_prim = np.full(len(nodes), np.inf)
                best_sec = np.full(len(nodes), np.inf)
            exits = self._cell_border_positions(cell)
            if have_mid and len(exits):
                exit_locals = self.local_index[part.border_nodes[exits]]
                cand_prim, cand_sec = _lex_min(
                    prim_m[:, exit_locals] + mid_prim[exits][None, :],
                    sec_m[:, exit_locals] + mid_sec[exits][None, :],
                    axis=1,
                )
                better = (cand_prim < best_prim) | (
                    (cand_prim == best_prim) & (cand_sec < best_sec)
                )
                best_prim = np.where(better, cand_prim, best_prim)
                best_sec = np.where(better, cand_sec, best_sec)
            prim_col[nodes] = best_prim
            sec_col[nodes] = best_sec

        self._column_cache.put(key, (prim_col, sec_col))
        return prim_col, sec_col

    def _rows(self, i: int, kind: str) -> tuple[np.ndarray, np.ndarray]:
        """Assembled ``(primary, secondary)`` rows for source *i*."""
        key = (i, kind)
        cached = self._row_cache.get(key)
        if cached is not None:
            return cached
        self._check_node(i)
        part = self.partition
        n = self.num_nodes
        ci = int(part.cell_of[i])
        li = int(self.local_index[i])
        prim_row = np.full(n, np.inf)
        sec_row = np.full(n, np.inf)

        exits = self._cell_border_positions(ci)
        have_mid = len(exits) > 0
        if have_mid:
            prim_i, sec_i = self._in_cell(kind, ci)
            exit_locals = self.local_index[part.border_nodes[exits]]
            leg1_prim = prim_i[li, exit_locals]
            leg1_sec = sec_i[li, exit_locals]
            border_prim, border_sec = self._border_matrices(kind)
            # mid[b2] = best (in-cell(i -> b1) + border(b1 -> b2)) over
            # all exits b1 of cell(i): one (k,)-vector for the row.
            mid_prim, mid_sec = _lex_min(
                leg1_prim[:, None] + border_prim[exits, :],
                leg1_sec[:, None] + border_sec[exits, :],
                axis=0,
            )

        for cell in range(part.num_cells):
            nodes = part.cells[cell]
            prim_m, sec_m = self._in_cell(kind, cell)
            if cell == ci:
                best_prim = prim_m[li, :].copy()
                best_sec = sec_m[li, :].copy()
            else:
                best_prim = np.full(len(nodes), np.inf)
                best_sec = np.full(len(nodes), np.inf)
            entries = self._cell_border_positions(cell)
            if have_mid and len(entries):
                entry_locals = self.local_index[part.border_nodes[entries]]
                cand_prim, cand_sec = _lex_min(
                    mid_prim[entries][:, None] + prim_m[entry_locals, :],
                    mid_sec[entries][:, None] + sec_m[entry_locals, :],
                    axis=0,
                )
                better = (cand_prim < best_prim) | (
                    (cand_prim == best_prim) & (cand_sec < best_sec)
                )
                best_prim = np.where(better, cand_prim, best_prim)
                best_sec = np.where(better, cand_sec, best_sec)
            prim_row[nodes] = best_prim
            sec_row[nodes] = best_sec

        self._row_cache.put(key, (prim_row, sec_row))
        return prim_row, sec_row

    def _gather_cols(self, nodes: np.ndarray, column) -> np.ndarray:
        targets = [int(t) for t in np.asarray(nodes).ravel()]
        if not targets:
            return np.empty((self.num_nodes, 0))
        return np.stack([column(t) for t in targets], axis=1)

    def _cell_path(self, cell: int, u: int, v: int, kind: str) -> list[int]:
        """In-cell optimal path ``u -> v`` translated to global ids."""
        tables = self.cell_tables[cell]
        lu, lv = int(self.local_index[u]), int(self.local_index[v])
        local = tables.tau_path(lu, lv) if kind == "tau" else tables.sigma_path(lu, lv)
        to_global = self.partition.cells[cell]
        return [int(to_global[node]) for node in local]

    def _path(self, i: int, j: int, kind: str) -> list[int]:
        if not self.has_paths:
            raise PrepError(
                "tables were built with predecessors=False; "
                "path materialisation is unavailable"
            )
        primary, _secondary, combo = self._assemble_pair(i, j, kind)
        if not np.isfinite(primary):
            raise PrepError(f"node {j} is unreachable from {i}")
        part = self.partition
        if combo is None:
            return self._cell_path(int(part.cell_of[i]), i, j, kind)
        b1, b2 = combo
        pred = self.border_pred_tau if kind == "tau" else self.border_pred_sigma
        try:
            middle = reconstruct_path(pred[int(part.border_index[b1])], b1, b2)
        except ValueError as exc:  # pragma: no cover - scores imply reachability
            raise PrepError(str(exc)) from exc
        first = self._cell_path(int(part.cell_of[i]), i, b1, kind)
        last = self._cell_path(int(part.cell_of[j]), b2, j, kind)
        return first[:-1] + middle + last[1:]
