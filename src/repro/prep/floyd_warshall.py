"""All-pairs two-criteria shortest paths via Floyd-Warshall.

This is the pre-processing method the paper prescribes (Section 3.1): for
every node pair ``(vi, vj)`` find the path ``tau_{i,j}`` minimising the
objective score and the path ``sigma_{i,j}`` minimising the budget score,
recording *both* scores of each.

We minimise the *primary* weight and, among primary-optimal paths, the
*secondary* weight (lexicographic order).  The lexicographic pair forms a
semiring, so the classic FW recurrence remains correct and — unlike
arbitrary tie-breaking — produces a canonical, implementation-independent
answer that the Dijkstra backend (:mod:`repro.prep.dijkstra`) is tested
against.

Complexity is Theta(V^3) with vectorised numpy inner updates; use it for
graphs up to a few hundred nodes (tests, worked examples) and the Dijkstra
backend beyond that.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import SpatialKeywordGraph

__all__ = ["floyd_warshall_two_criteria", "NO_PREDECESSOR"]

#: Sentinel used in predecessor matrices (matches scipy.sparse.csgraph).
NO_PREDECESSOR = -9999


def floyd_warshall_two_criteria(
    graph: SpatialKeywordGraph, primary: str = "objective"
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(primary_cost, secondary_cost, predecessors)`` matrices.

    ``primary="objective"`` computes the ``tau`` tables (objective-optimal
    paths with their budget scores); ``primary="budget"`` computes the
    ``sigma`` tables.  ``predecessors[i, j]`` is the node preceding ``j`` on
    the stored ``i -> j`` path (``NO_PREDECESSOR`` on the diagonal and for
    unreachable pairs).  The three matrices always describe the same path.
    """
    if primary not in ("objective", "budget"):
        raise ValueError(f"primary must be 'objective' or 'budget', got {primary!r}")
    n = graph.num_nodes
    prim = np.full((n, n), np.inf, dtype=np.float64)
    sec = np.full((n, n), np.inf, dtype=np.float64)
    pred = np.full((n, n), NO_PREDECESSOR, dtype=np.int32)

    for edge in graph.iter_edges():
        p, s = (
            (edge.objective, edge.budget)
            if primary == "objective"
            else (edge.budget, edge.objective)
        )
        # Parallel edges are impossible (the builder rejects duplicates), but
        # keep the lexicographic min for safety with hand-built adjacency.
        if (p, s) < (prim[edge.u, edge.v], sec[edge.u, edge.v]):
            prim[edge.u, edge.v] = p
            sec[edge.u, edge.v] = s
            pred[edge.u, edge.v] = edge.u

    diag = np.arange(n)
    prim[diag, diag] = 0.0
    sec[diag, diag] = 0.0

    for k in range(n):
        # Candidate path i -> k -> j, vectorised over all (i, j).
        cand_prim = prim[:, k, None] + prim[None, k, :]
        cand_sec = sec[:, k, None] + sec[None, k, :]
        better = cand_prim < prim
        tie_better = (cand_prim == prim) & (cand_sec < sec)
        improve = better | tie_better
        if not improve.any():
            continue
        prim = np.where(improve, cand_prim, prim)
        sec = np.where(improve, cand_sec, sec)
        pred = np.where(improve, np.broadcast_to(pred[k, :], (n, n)), pred)

    # A path through k never improves i -> i (weights are positive), so the
    # diagonal stays (0, 0) with no predecessor.
    pred[diag, diag] = NO_PREDECESSOR
    return prim, sec, pred
