"""Synthetic workload substrate reproducing the paper's evaluation data."""

from repro.datasets.clustering import Location, cluster_photos
from repro.datasets.flickr import FlickrConfig, FlickrDataset, build_flickr_graph
from repro.datasets.photos import (
    Hotspot,
    Photo,
    PhotoStreamConfig,
    generate_photo_stream,
)
from repro.datasets.queries import QuerySetConfig, generate_query_set, generate_query_sets
from repro.datasets.road import RoadConfig, build_road_graph
from repro.datasets.tags import POI_WORDS, TagVocabulary

__all__ = [
    "FlickrConfig",
    "FlickrDataset",
    "Hotspot",
    "Location",
    "POI_WORDS",
    "Photo",
    "PhotoStreamConfig",
    "QuerySetConfig",
    "RoadConfig",
    "TagVocabulary",
    "build_flickr_graph",
    "build_road_graph",
    "cluster_photos",
    "generate_photo_stream",
    "generate_query_set",
    "generate_query_sets",
]
