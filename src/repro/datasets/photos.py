"""Synthetic geo-tagged photo streams.

The paper's raw input is 1.5M Flickr photos: ``(user, time, lat, lon,
tags)``.  We reproduce the *generative shape* of such data — that is what
the downstream pipeline (clustering, trip extraction, popularity) actually
depends on:

* photos concentrate around a few hundred attraction *hotspots*;
* each hotspot has a topical tag distribution (drawn from a Zipf
  vocabulary) plus idiosyncratic noise tags used by single users;
* each user's photos form temporal sessions: consecutive photos within a
  session are minutes-to-hours apart (producing trips), sessions are
  separated by more than the 1-day trip cutoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.tags import TagVocabulary
from repro.exceptions import DatasetError

__all__ = ["Photo", "Hotspot", "PhotoStreamConfig", "generate_photo_stream"]

#: Seconds in one day — the paper's trip cutoff between consecutive photos.
DAY_SECONDS = 86_400.0


@dataclass(frozen=True)
class Photo:
    """One geo-tagged photo."""

    user_id: int
    timestamp: float
    x: float
    y: float
    tags: frozenset[str]


@dataclass(frozen=True)
class Hotspot:
    """An attraction around which photos cluster."""

    x: float
    y: float
    popularity: float
    topic_tags: tuple[str, ...]


@dataclass
class PhotoStreamConfig:
    """Knobs of the photo-stream generator (defaults give a small city)."""

    num_users: int = 500
    num_hotspots: int = 160
    photos_per_user: tuple[int, int] = (15, 70)
    #: City extent in kilometres; budgets are Euclidean km as in the paper.
    #: The default city is spatially *compressed* relative to NYC so that
    #: ~400-600 locations reach the paper's keyword density (5,199 NYC
    #: locations); this keeps the paper's Delta = 3..15 km sweep in the
    #: same feasibility regime (see EXPERIMENTS.md).
    extent_km: tuple[float, float] = (4.0, 4.0)
    #: Photo scatter around a hotspot centre (km).
    hotspot_sigma_km: float = 0.08
    topic_tags_per_hotspot: tuple[int, int] = (4, 12)
    tags_per_photo: tuple[int, int] = (1, 4)
    #: Probability a photo adds one noise tag (later removed by cleaning).
    noise_tag_probability: float = 0.08
    #: Probability that consecutive photos of a user start a new session
    #: (gap > 1 day, breaking the trip chain).
    session_break_probability: float = 0.15
    #: Zipf exponent for hotspot popularity (visit skew).
    popularity_exponent: float = 0.8
    seed: int = 0
    vocabulary: TagVocabulary | None = field(default=None, repr=False)


def generate_photo_stream(
    config: PhotoStreamConfig,
) -> tuple[list[Photo], list[Hotspot], TagVocabulary]:
    """Generate photos, the hotspots behind them, and the tag vocabulary."""
    if config.num_users < 1 or config.num_hotspots < 2:
        raise DatasetError("need at least one user and two hotspots")
    rng = np.random.default_rng(config.seed)
    vocabulary = (
        config.vocabulary
        if config.vocabulary is not None
        else TagVocabulary(seed=config.seed)
    )

    hotspots = _make_hotspots(config, rng, vocabulary)
    popularity = np.asarray([h.popularity for h in hotspots])
    popularity = popularity / popularity.sum()
    centers = np.asarray([[h.x, h.y] for h in hotspots])

    photos: list[Photo] = []
    lo, hi = config.photos_per_user
    for user in range(config.num_users):
        count = int(rng.integers(lo, hi + 1))
        timestamp = float(rng.uniform(0, 30 * DAY_SECONDS))
        # Users hop between hotspots with popularity-weighted preference,
        # biased towards nearby ones (distance decay), like real tourists.
        current = int(rng.choice(len(hotspots), p=popularity))
        for _ in range(count):
            hotspot = hotspots[current]
            x = float(hotspot.x + rng.normal(0, config.hotspot_sigma_km))
            y = float(hotspot.y + rng.normal(0, config.hotspot_sigma_km))
            photos.append(
                Photo(
                    user_id=user,
                    timestamp=timestamp,
                    x=x,
                    y=y,
                    tags=_photo_tags(hotspot, config, rng, vocabulary, user),
                )
            )
            if rng.random() < config.session_break_probability:
                timestamp += float(rng.uniform(1.5, 5.0)) * DAY_SECONDS
            else:
                timestamp += float(rng.uniform(600.0, 0.4 * DAY_SECONDS))
            current = _next_hotspot(current, centers, popularity, rng)
    photos.sort(key=lambda p: (p.user_id, p.timestamp))
    return photos, hotspots, vocabulary


def _make_hotspots(
    config: PhotoStreamConfig, rng: np.random.Generator, vocabulary: TagVocabulary
) -> list[Hotspot]:
    width, height = config.extent_km
    ranks = np.arange(1, config.num_hotspots + 1, dtype=np.float64)
    popularity = ranks**-config.popularity_exponent
    rng.shuffle(popularity)
    lo, hi = config.topic_tags_per_hotspot
    hotspots = []
    for i in range(config.num_hotspots):
        topic_size = int(rng.integers(lo, hi + 1))
        hotspots.append(
            Hotspot(
                x=float(rng.uniform(0, width)),
                y=float(rng.uniform(0, height)),
                popularity=float(popularity[i]),
                topic_tags=tuple(vocabulary.sample(topic_size, rng)),
            )
        )
    return hotspots


def _photo_tags(
    hotspot: Hotspot,
    config: PhotoStreamConfig,
    rng: np.random.Generator,
    vocabulary: TagVocabulary,
    user: int,
) -> frozenset[str]:
    lo, hi = config.tags_per_photo
    count = int(rng.integers(lo, hi + 1))
    count = min(count, len(hotspot.topic_tags))
    chosen = set(
        hotspot.topic_tags[int(i)]
        for i in rng.choice(len(hotspot.topic_tags), size=max(count, 1), replace=False)
    )
    if rng.random() < config.noise_tag_probability:
        # A private tag effectively unique to this user; the cleaning step
        # (single-contributor removal) should strip it from locations.
        chosen.add(f"noise-u{user}-{vocabulary.sample_one(rng)}")
    return frozenset(chosen)


def _next_hotspot(
    current: int,
    centers: np.ndarray,
    popularity: np.ndarray,
    rng: np.random.Generator,
) -> int:
    deltas = centers - centers[current]
    distance = np.sqrt((deltas**2).sum(axis=1))
    # Distance decay: hotspots ~2km away are an order of magnitude more
    # likely than ~20km away; popularity multiplies in.
    weights = popularity * np.exp(-distance / 1.5)
    weights[current] = 0.0
    total = weights.sum()
    if total <= 0:
        return int(rng.integers(len(centers)))
    return int(rng.choice(len(centers), p=weights / total))
