"""The Flickr-like evaluation graph (paper Section 4.1, first dataset).

Pipeline, exactly as the paper describes it:

1. collect geo-tagged photos (synthesised — see
   :mod:`repro.datasets.photos` and DESIGN.md's substitution table);
2. cluster photos into locations, aggregating tags and dropping tags
   contributed by a single user;
3. sort each user's photos by time; two consecutive photos at different
   locations less than one day apart are a *trip*, which adds (weight to)
   the directed edge between the locations;
4. edge popularity ``Pr_{i,j} = Num(v_i, v_j) / TotalTrips``; since the
   route popularity ``PS(R) = prod Pr`` must be *maximised*, the per-edge
   objective is ``o = log(1 / Pr)`` so minimising ``OS`` maximises ``PS``;
5. edge budget = Euclidean distance between the locations (km).

The builder finally restricts to the largest strongly connected component
so random benchmark queries are seldom trivially infeasible.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

from repro.datasets.clustering import Location, cluster_photos
from repro.datasets.photos import DAY_SECONDS, PhotoStreamConfig, generate_photo_stream
from repro.exceptions import DatasetError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import SpatialKeywordGraph
from repro.graph.validation import largest_scc

__all__ = ["FlickrConfig", "FlickrDataset", "build_flickr_graph"]


@dataclass
class FlickrConfig:
    """Configuration of the Flickr-like graph builder.

    The defaults produce roughly 600-900 locations — a scaled-down New
    York (the paper has 5,199); pass a larger ``photo_stream`` for
    paper-scale runs.
    """

    photo_stream: PhotoStreamConfig = field(default_factory=PhotoStreamConfig)
    cluster_cell_km: float = 0.15
    min_photos_per_location: int = 2
    min_tag_users: int = 2
    trip_cutoff_seconds: float = DAY_SECONDS
    restrict_to_largest_scc: bool = True


@dataclass
class FlickrDataset:
    """The built graph plus provenance statistics."""

    graph: SpatialKeywordGraph
    num_photos: int
    num_users: int
    num_locations: int
    num_tags: int
    total_trips: int

    def summary(self) -> str:
        """One-line description mirroring the paper's dataset table."""
        return (
            f"flickr-like: {self.num_photos} photos, {self.num_users} users -> "
            f"{self.num_locations} locations, {self.num_tags} tags, "
            f"{self.graph.num_edges} edges from {self.total_trips} trips"
        )


def build_flickr_graph(config: FlickrConfig | None = None) -> FlickrDataset:
    """Run the full photos -> locations -> trips -> graph pipeline."""
    config = config if config is not None else FlickrConfig()
    photos, _hotspots, _vocabulary = generate_photo_stream(config.photo_stream)

    locations, photo_to_location = cluster_photos(
        photos,
        cell_km=config.cluster_cell_km,
        min_photos=config.min_photos_per_location,
        min_tag_users=config.min_tag_users,
    )
    if len(locations) < 2:
        raise DatasetError(
            "clustering produced fewer than two locations; "
            "decrease cluster_cell_km or generate more photos"
        )

    trip_counts = _extract_trips(photos, photo_to_location, config.trip_cutoff_seconds)
    total_trips = sum(trip_counts.values())
    if total_trips == 0:
        raise DatasetError(
            "no trips extracted; increase photos per user or the session length"
        )

    graph = _build_graph(locations, trip_counts, total_trips)
    if config.restrict_to_largest_scc:
        graph, _mapping = largest_scc(graph)

    tags = set()
    for node in range(graph.num_nodes):
        tags |= graph.node_keywords(node)
    return FlickrDataset(
        graph=graph,
        num_photos=len(photos),
        num_users=config.photo_stream.num_users,
        num_locations=graph.num_nodes,
        num_tags=len(tags),
        total_trips=total_trips,
    )


def _extract_trips(
    photos: list,
    photo_to_location: dict[int, int],
    cutoff_seconds: float,
) -> dict[tuple[int, int], int]:
    """Count trips between consecutive photo locations per user.

    ``photos`` is sorted by (user, time) — the generator guarantees it.
    """
    counts: dict[tuple[int, int], int] = defaultdict(int)
    for idx in range(1, len(photos)):
        prev, curr = photos[idx - 1], photos[idx]
        if prev.user_id != curr.user_id:
            continue
        if curr.timestamp - prev.timestamp >= cutoff_seconds:
            continue
        loc_a = photo_to_location.get(idx - 1)
        loc_b = photo_to_location.get(idx)
        if loc_a is None or loc_b is None or loc_a == loc_b:
            continue
        counts[(loc_a, loc_b)] += 1
    return counts


def _build_graph(
    locations: list[Location],
    trip_counts: dict[tuple[int, int], int],
    total_trips: int,
) -> SpatialKeywordGraph:
    builder = GraphBuilder()
    for i, location in enumerate(locations):
        builder.add_node(
            keywords=sorted(location.tags),
            name=f"loc{i}",
            x=location.x,
            y=location.y,
        )
    for (u, v), count in sorted(trip_counts.items()):
        probability = count / total_trips
        objective = math.log(1.0 / probability)
        a, b = locations[u], locations[v]
        distance = math.hypot(a.x - b.x, a.y - b.y)
        # Same-cell pairs were dropped as trips, but centroids can still be
        # arbitrarily close; clamp to keep edge budgets strictly positive.
        budget = max(distance, 1e-3)
        builder.add_edge(u, v, objective=max(objective, 1e-9), budget=budget)
    return builder.build()
