"""Benchmark query-set generation (paper Section 4.1).

The paper generates 5 query sets per dataset with 2/4/6/8/10 keywords, 50
queries each, random start and end locations.  Keywords are sampled from
the dataset's own vocabulary weighted by document frequency (map-search
queries use common words far more often than rare ones); sources and
targets are optionally constrained so the cheapest connecting route fits
within a fraction of the budget — otherwise most random pairs on a large
map are trivially infeasible and benchmarks would measure the screening
code instead of the search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.query import KORQuery
from repro.exceptions import DatasetError
from repro.graph.digraph import SpatialKeywordGraph
from repro.index.inverted import InvertedIndex
from repro.prep.tables import CostTables

__all__ = ["QuerySetConfig", "generate_query_set", "generate_query_sets"]


@dataclass
class QuerySetConfig:
    """Knobs of the query generator."""

    num_queries: int = 50
    num_keywords: int = 6
    budget_limit: float = 6.0
    #: Require BS(sigma_{s,t}) <= fraction * Delta when tables are given;
    #: None disables the filter (paper-style fully random endpoints).
    max_sigma_fraction: float | None = 0.7
    #: Bias keyword sampling by document frequency (True mirrors query logs).
    frequency_weighted: bool = True
    #: Ignore keywords on fewer than this many nodes (df=1 singletons are
    #: clustering noise and make nearly every query infeasible).
    min_document_frequency: int = 2
    #: Require, for every query keyword, some node ``l`` carrying it with
    #: ``BS(sigma_{s,l}) + BS(sigma_{l,t}) <= Delta`` (a cheap *necessary*
    #: condition for feasibility; the joint tour may still overrun).  Needs
    #: tables; keeps benchmark queries from being dominated by trivially
    #: infeasible draws.
    screen_keyword_detour: bool = True
    seed: int = 0
    #: Give up after this many endpoint rejections per query.
    max_attempts: int = 500


def generate_query_set(
    graph: SpatialKeywordGraph,
    index: InvertedIndex,
    config: QuerySetConfig,
    tables: CostTables | None = None,
) -> list[KORQuery]:
    """Generate one query set per *config*.

    ``tables`` enables the endpoint feasibility filter
    (``max_sigma_fraction``); without them endpoints are fully random.
    """
    rng = np.random.default_rng(config.seed)
    n = graph.num_nodes
    if n < 2:
        raise DatasetError("query generation needs at least two nodes")

    keyword_ids = sorted(
        kid
        for kid in range(len(graph.keyword_table))
        if index.document_frequency(kid) >= config.min_document_frequency
    )
    if len(keyword_ids) < config.num_keywords:
        raise DatasetError(
            f"graph vocabulary has only {len(keyword_ids)} used keywords, "
            f"cannot sample {config.num_keywords}"
        )
    if config.frequency_weighted:
        weights = np.asarray(
            [index.document_frequency(kid) for kid in keyword_ids], dtype=np.float64
        )
        probabilities = weights / weights.sum()
    else:
        probabilities = None

    table = graph.keyword_table
    screen = config.screen_keyword_detour and tables is not None
    queries: list[KORQuery] = []
    for _ in range(config.num_queries):
        for _attempt in range(config.max_attempts):
            chosen = rng.choice(
                len(keyword_ids),
                size=config.num_keywords,
                replace=False,
                p=probabilities,
            )
            kids = [keyword_ids[int(i)] for i in chosen]
            source, target = _pick_endpoints(rng, n, config, tables)
            if not screen or _detour_screen_passes(
                index, tables, kids, source, target, config.budget_limit
            ):
                break
        else:
            raise DatasetError(
                f"could not draw a keyword-reachable query after "
                f"{config.max_attempts} attempts; raise the budget or relax the screen"
            )
        words = tuple(table.word_of(kid) for kid in kids)
        queries.append(KORQuery(source, target, words, config.budget_limit))
    return queries


def _detour_screen_passes(
    index: InvertedIndex,
    tables: CostTables,
    keyword_ids: list[int],
    source: int,
    target: int,
    budget_limit: float,
) -> bool:
    """Every keyword has a node whose cheapest detour fits the budget."""
    # Protocol access (row/column views) so partitioned tables work too.
    to_keyword = tables.bs_sigma_row(source)
    from_keyword = tables.bs_sigma_col(target)
    for kid in keyword_ids:
        nodes = index.postings(kid)
        if not ((to_keyword[nodes] + from_keyword[nodes]) <= budget_limit).any():
            return False
    return True


def generate_query_sets(
    graph: SpatialKeywordGraph,
    index: InvertedIndex,
    keyword_counts: tuple[int, ...] = (2, 4, 6, 8, 10),
    budget_limit: float = 6.0,
    num_queries: int = 50,
    seed: int = 0,
    tables: CostTables | None = None,
    max_sigma_fraction: float | None = 0.7,
) -> dict[int, list[KORQuery]]:
    """The paper's battery: one set per keyword count."""
    sets: dict[int, list[KORQuery]] = {}
    for offset, count in enumerate(keyword_counts):
        config = QuerySetConfig(
            num_queries=num_queries,
            num_keywords=count,
            budget_limit=budget_limit,
            seed=seed + offset,
            max_sigma_fraction=max_sigma_fraction,
        )
        sets[count] = generate_query_set(graph, index, config, tables=tables)
    return sets


def _pick_endpoints(
    rng: np.random.Generator,
    n: int,
    config: QuerySetConfig,
    tables: CostTables | None,
) -> tuple[int, int]:
    if tables is None or config.max_sigma_fraction is None:
        source = int(rng.integers(n))
        target = int(rng.integers(n))
        while target == source and n > 1:
            target = int(rng.integers(n))
        return source, target
    ceiling = config.max_sigma_fraction * config.budget_limit
    for _ in range(config.max_attempts):
        source = int(rng.integers(n))
        target = int(rng.integers(n))
        if source == target:
            continue
        if tables.bs_sigma_row(source)[target] <= ceiling:
            return source, target
    raise DatasetError(
        f"could not find endpoints with BS(sigma) <= {ceiling:.3g} "
        f"after {config.max_attempts} attempts; raise the budget or the fraction"
    )


__all__ = ["QuerySetConfig", "generate_query_set", "generate_query_sets"]
