"""Grid clustering of photos into locations (paper Section 4.1).

Following the paper (which follows Kurashima et al. [15]), photos are
grouped into locations by spatial clustering; each location aggregates
the tags of its photos *after removing noisy tags* — tags contributed by
only one user.  We use square grid cells, which is deterministic, fast
and faithful to the "cluster then aggregate" recipe.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.datasets.photos import Photo
from repro.exceptions import DatasetError

__all__ = ["Location", "cluster_photos"]


@dataclass(frozen=True)
class Location:
    """One clustered location: centroid, cleaned tags, supporting photos."""

    x: float
    y: float
    tags: frozenset[str]
    photo_count: int
    cell: tuple[int, int]


def cluster_photos(
    photos: list[Photo],
    cell_km: float = 0.5,
    min_photos: int = 2,
    min_tag_users: int = 2,
) -> tuple[list[Location], dict[int, int]]:
    """Cluster *photos* on a ``cell_km`` grid.

    Returns the locations plus a map ``photo index -> location index``
    (photos in dropped cells are absent).  A tag survives aggregation only
    when at least *min_tag_users* distinct users contributed it — the
    paper's noisy-tag removal.
    """
    if cell_km <= 0:
        raise DatasetError(f"cell_km must be > 0, got {cell_km}")
    if min_photos < 1:
        raise DatasetError(f"min_photos must be >= 1, got {min_photos}")

    cells: dict[tuple[int, int], list[int]] = defaultdict(list)
    for idx, photo in enumerate(photos):
        cell = (int(photo.x // cell_km), int(photo.y // cell_km))
        cells[cell].append(idx)

    locations: list[Location] = []
    photo_to_location: dict[int, int] = {}
    for cell in sorted(cells):
        members = cells[cell]
        if len(members) < min_photos:
            continue
        tag_users: dict[str, set[int]] = defaultdict(set)
        sum_x = sum_y = 0.0
        for idx in members:
            photo = photos[idx]
            sum_x += photo.x
            sum_y += photo.y
            for tag in photo.tags:
                tag_users[tag].add(photo.user_id)
        tags = frozenset(
            tag for tag, users in tag_users.items() if len(users) >= min_tag_users
        )
        location_index = len(locations)
        locations.append(
            Location(
                x=sum_x / len(members),
                y=sum_y / len(members),
                tags=tags,
                photo_count=len(members),
                cell=cell,
            )
        )
        for idx in members:
            photo_to_location[idx] = location_index
    return locations, photo_to_location
