"""Road-network graphs (paper Section 4.1, datasets 2-5).

The paper extracts New York road-network subgraphs of 5k/10k/15k/20k
nodes (DIMACS challenge data), attaches random Flickr tags to nodes, uses
travel distance as the budget and a uniform(0,1) random objective per
edge.  Offline, we synthesise road networks with the same structural
regime: a perturbed grid (planar, degree <= ~4-6) with optional diagonal
shortcuts, which matches urban road graphs' degree distribution and
diameter scaling; everything else follows the paper exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.tags import TagVocabulary
from repro.exceptions import DatasetError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import SpatialKeywordGraph

__all__ = ["RoadConfig", "build_road_graph"]


@dataclass
class RoadConfig:
    """Configuration of the synthetic road-network generator."""

    num_nodes: int = 5000
    #: Average spacing between adjacent intersections (km).
    block_km: float = 0.25
    #: Relative jitter of node coordinates (fraction of block size).
    jitter: float = 0.3
    #: Probability of adding a diagonal shortcut at a grid cell.
    diagonal_probability: float = 0.08
    #: Tags drawn per node (uniform in the inclusive range).
    tags_per_node: tuple[int, int] = (1, 3)
    seed: int = 0
    vocabulary: TagVocabulary | None = field(default=None, repr=False)


def build_road_graph(config: RoadConfig | None = None) -> SpatialKeywordGraph:
    """Build a strongly connected road network per *config*.

    The grid skeleton (bidirectional edges) guarantees strong
    connectivity by construction; budgets are Euclidean distances over
    the jittered coordinates and objectives are uniform(0,1) as in the
    paper's synthetic datasets.
    """
    config = config if config is not None else RoadConfig()
    if config.num_nodes < 4:
        raise DatasetError(f"need at least 4 nodes, got {config.num_nodes}")
    rng = np.random.default_rng(config.seed)
    vocabulary = (
        config.vocabulary
        if config.vocabulary is not None
        else TagVocabulary(seed=config.seed)
    )

    cols = int(math.ceil(math.sqrt(config.num_nodes)))
    rows = int(math.ceil(config.num_nodes / cols))
    # The last row may be partial; node (r, c) exists iff its id < n.
    n = config.num_nodes

    def node_id(r: int, c: int) -> int | None:
        if 0 <= r < rows and 0 <= c < cols:
            nid = r * cols + c
            return nid if nid < n else None
        return None

    xs = np.empty(n)
    ys = np.empty(n)
    builder = GraphBuilder()
    lo, hi = config.tags_per_node
    for nid in range(n):
        r, c = divmod(nid, cols)
        x = (c + rng.uniform(-config.jitter, config.jitter)) * config.block_km
        y = (r + rng.uniform(-config.jitter, config.jitter)) * config.block_km
        xs[nid], ys[nid] = x, y
        count = int(rng.integers(lo, hi + 1))
        builder.add_node(keywords=vocabulary.sample(count, rng), name=f"n{nid}", x=x, y=y)

    def add_road(u: int, v: int) -> None:
        distance = math.hypot(xs[u] - xs[v], ys[u] - ys[v])
        budget = max(distance, 1e-4)
        # Directions get independent objectives, as in the paper's
        # per-edge uniform(0,1) assignment on a directed graph.
        builder.add_edge(u, v, objective=float(rng.uniform(0.01, 1.0)), budget=budget)
        builder.add_edge(v, u, objective=float(rng.uniform(0.01, 1.0)), budget=budget)

    for r in range(rows):
        for c in range(cols):
            u = node_id(r, c)
            if u is None:
                continue
            right = node_id(r, c + 1)
            down = node_id(r + 1, c)
            if right is not None:
                add_road(u, right)
            if down is not None:
                add_road(u, down)
            if (
                config.diagonal_probability > 0
                and rng.random() < config.diagonal_probability
            ):
                diag = node_id(r + 1, c + 1)
                if diag is not None:
                    add_road(u, diag)

    return builder.build()
