"""Synthetic tag vocabularies with Zipf-distributed popularity.

The paper's Flickr dataset carries 9,785 distinct tags whose usage is —
like all folksonomies — heavily skewed.  We synthesise a vocabulary of the
same flavour: a head of recognisable POI-style words (so examples read
like the paper's "jazz, imax, vegetation, Cappuccino" query) followed by
generated pseudo-words, with sampling weights following a Zipf law.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError

__all__ = ["TagVocabulary", "POI_WORDS"]

#: Head words mirroring the paper's example queries and motivating scenario.
POI_WORDS: tuple[str, ...] = (
    "restaurant", "pub", "shopping-mall", "jazz", "imax", "vegetarian",
    "cappuccino", "museum", "park", "theatre", "gallery", "bakery",
    "sushi", "pizza", "ramen", "steakhouse", "cocktails", "brewery",
    "bookstore", "arcade", "aquarium", "zoo", "opera", "cathedral",
    "skyline", "bridge", "harbour", "market", "foodtruck", "noodles",
    "karaoke", "spa", "rooftop", "speakeasy", "diner", "brunch",
    "espresso", "gelato", "donuts", "bbq",
)

_SYLLABLES = (
    "ka", "ri", "to", "mo", "se", "lu", "an", "pe", "vi", "zo",
    "ne", "ba", "ku", "sha", "el", "or", "mi", "ta", "fo", "gri",
)


class TagVocabulary:
    """A fixed list of tags plus Zipf sampling weights.

    ``exponent`` is the Zipf skew ``s`` in ``weight(rank) ~ rank^-s``;
    1.0 approximates folksonomy tag usage well.
    """

    def __init__(self, num_tags: int = 9785, exponent: float = 1.0, seed: int = 0) -> None:
        if num_tags < 1:
            raise DatasetError(f"num_tags must be >= 1, got {num_tags}")
        if exponent <= 0:
            raise DatasetError(f"Zipf exponent must be > 0, got {exponent}")
        self._words = _generate_words(num_tags)
        ranks = np.arange(1, num_tags + 1, dtype=np.float64)
        weights = ranks**-exponent
        self._probabilities = weights / weights.sum()
        self._rng = np.random.default_rng(seed)

    @property
    def words(self) -> tuple[str, ...]:
        """All tags, most popular first."""
        return self._words

    @property
    def probabilities(self) -> np.ndarray:
        """Zipf sampling probability of each tag (aligned with words)."""
        return self._probabilities

    def __len__(self) -> int:
        return len(self._words)

    def sample(self, count: int, rng: np.random.Generator | None = None) -> list[str]:
        """Draw *count* distinct tags, popularity-weighted."""
        rng = rng if rng is not None else self._rng
        count = min(count, len(self._words))
        chosen = rng.choice(
            len(self._words), size=count, replace=False, p=self._probabilities
        )
        return [self._words[int(i)] for i in chosen]

    def sample_one(self, rng: np.random.Generator | None = None) -> str:
        """Draw a single popularity-weighted tag."""
        rng = rng if rng is not None else self._rng
        return self._words[int(rng.choice(len(self._words), p=self._probabilities))]


def _generate_words(num_tags: int) -> tuple[str, ...]:
    """POI head words first, then deterministic pseudo-words."""
    words: list[str] = list(POI_WORDS[:num_tags])
    needed = num_tags - len(words)
    if needed <= 0:
        return tuple(words)
    syllables = _SYLLABLES
    base = len(syllables)
    for i in range(needed):
        # Mixed-radix expansion over syllables gives unique pronounceable
        # words: "kari", "kato", ... with a numeric suffix beyond 3 parts.
        n, parts = i, []
        for _ in range(3):
            parts.append(syllables[n % base])
            n //= base
        word = "".join(parts)
        if n:
            word = f"{word}{n}"
        words.append(word)
    return tuple(words)
