"""Minimal KOR HTTP clients — stdlib only, shared by tests and loadgen.

Two transports with one response shape:

* :func:`asgi_request` drives an ASGI app **in process** (no sockets):
  the fastest way to exercise every endpoint, and what the load
  generator's ``--transport asgi`` mode uses to measure the serving
  stack without kernel networking in the loop.
* :func:`http_request` is a tiny asyncio HTTP/1.1 client (one
  connection per request, ``Connection: close``) for talking to a real
  socket — the :class:`~repro.server.stdlib.StdlibServer`, or any other
  host of the app.  It understands ``Content-Length`` bodies and
  ``chunked`` transfer (the streaming top-k endpoint).

Neither replaces a real HTTP library; both exist so the repo's network
tier can be *driven and measured* with zero dependencies.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

__all__ = ["HTTPResponse", "asgi_request", "http_request"]


@dataclass
class HTTPResponse:
    """One response, whichever transport produced it."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """The body parsed as one JSON document."""
        return json.loads(self.body)

    def ndjson(self) -> list[object]:
        """The body parsed as newline-delimited JSON (streaming top-k)."""
        return [
            json.loads(line)
            for line in self.body.split(b"\n")
            if line.strip()
        ]


def _encode_body(payload: object | None) -> bytes:
    if payload is None:
        return b""
    return json.dumps(payload, allow_nan=False).encode()


async def asgi_request(
    app,
    method: str,
    path: str,
    payload: object | None = None,
) -> HTTPResponse:
    """Run one request through *app* without any network transport."""
    body = _encode_body(payload)
    query = ""
    if "?" in path:
        path, _, query = path.partition("?")
    scope = {
        "type": "http",
        "asgi": {"version": "3.0", "spec_version": "2.3"},
        "http_version": "1.1",
        "method": method.upper(),
        "scheme": "http",
        "path": path,
        "raw_path": path.encode("latin-1"),
        "query_string": query.encode("latin-1"),
        "root_path": "",
        "headers": [
            (b"content-type", b"application/json"),
            (b"content-length", str(len(body)).encode("latin-1")),
        ],
        "client": ("127.0.0.1", 0),
        "server": ("inproc", 0),
    }
    delivered = False

    async def receive() -> dict:
        nonlocal delivered
        if not delivered:
            delivered = True
            return {"type": "http.request", "body": body, "more_body": False}
        # Only reached by disconnect watchers; this client never hangs up.
        return await asyncio.get_running_loop().create_future()

    messages: list[dict] = []

    async def send(message: dict) -> None:
        messages.append(message)

    await app(scope, receive, send)
    if not messages or messages[0]["type"] != "http.response.start":
        raise RuntimeError("ASGI app did not start a response")
    return HTTPResponse(
        status=messages[0]["status"],
        headers={
            name.decode("latin-1"): value.decode("latin-1")
            for name, value in messages[0].get("headers", [])
        },
        body=b"".join(
            message.get("body", b"")
            for message in messages[1:]
            if message["type"] == "http.response.body"
        ),
    )


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: object | None = None,
    timeout: float = 30.0,
) -> HTTPResponse:
    """One HTTP/1.1 exchange over a fresh socket (``Connection: close``)."""
    return await asyncio.wait_for(
        _http_request(host, port, method, path, payload), timeout
    )


async def _http_request(
    host: str, port: int, method: str, path: str, payload: object | None
) -> HTTPResponse:
    body = _encode_body(payload)
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = (
            f"{method.upper()} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

        status_line = await reader.readline()
        parts = status_line.split(maxsplit=2)
        if len(parts) < 2 or not parts[0].startswith(b"HTTP/"):
            raise RuntimeError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

        if headers.get("transfer-encoding", "").lower() == "chunked":
            chunks: list[bytes] = []
            while True:
                size_line = await reader.readline()
                size = int(size_line.strip() or b"0", 16)
                if size == 0:
                    await reader.readline()  # trailer-terminating CRLF
                    break
                chunks.append(await reader.readexactly(size))
                await reader.readexactly(2)  # chunk-terminating CRLF
            data = b"".join(chunks)
        elif "content-length" in headers:
            data = await reader.readexactly(int(headers["content-length"]))
        else:
            data = await reader.read()
        return HTTPResponse(status=status, headers=headers, body=data)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
