"""Zero-dependency HTTP hosting for the ASGI app — stdlib only.

No ASGI server ships with CPython, so this module provides the missing
piece: :class:`StdlibServer` hosts **any** ASGI 3 callable (in practice
:class:`repro.server.app.KORApp`) on a stdlib
:class:`~http.server.ThreadingHTTPServer`.  The bridge is deliberately
tiny — a mini event-loop-in-a-thread ASGI host:

* one background thread runs a private asyncio event loop — the loop
  every application coroutine (and therefore every
  ``AsyncQueryService`` flight, timer and wave) lives on;
* each HTTP request is handled on one of ``ThreadingHTTPServer``'s
  per-connection threads, which builds the ASGI ``scope``, ships the
  app coroutine to the loop with ``run_coroutine_threadsafe``, and
  drains the app's ``send`` messages from a thread-safe queue;
* a response whose first body message carries ``more_body=True`` is
  relayed with chunked transfer encoding (this is how ``/topk/stream``
  streams NDJSON through a stdlib server); complete responses get a
  ``Content-Length``.

Because *all* requests funnel onto one loop, concurrent HTTP callers
coalesce and micro-batch exactly as concurrent in-process awaiters do —
the stdlib transport preserves the serving semantics, it does not fork
them.

Typical use (see ``examples/server_demo.py``)::

    front = AsyncQueryService(QueryService(engine), adaptive_target_batch=8)
    with StdlibServer(KORApp(front), frontend=front) as server:
        host, port = server.address
        ...  # curl http://host:port/query

``port=0`` (default) binds an ephemeral port — tests and the CI load
smoke run many servers without collisions.
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

__all__ = ["StdlibServer"]

#: How long one request handler waits for the app's next ASGI message
#: before giving up on the response (covers the slowest engine waves).
_MESSAGE_TIMEOUT = 60.0


class _BridgeHandler(BaseHTTPRequestHandler):
    """One HTTP exchange relayed through the ASGI app on the shared loop."""

    protocol_version = "HTTP/1.1"
    server: "_BridgeHTTPServer"

    # Silence the default stderr access log: tests and the load smoke
    # hammer the server and the log is pure noise there.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:
        self._relay()

    def do_POST(self) -> None:
        self._relay()

    def do_PUT(self) -> None:
        self._relay()

    def do_DELETE(self) -> None:
        self._relay()

    def _relay(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        split = urlsplit(self.path)
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": self.command,
            "scheme": "http",
            "path": split.path,
            "raw_path": self.path.encode("latin-1"),
            "query_string": split.query.encode("latin-1"),
            "root_path": "",
            "headers": [
                (name.lower().encode("latin-1"), value.encode("latin-1"))
                for name, value in self.headers.items()
            ],
            "client": self.client_address,
            "server": self.server.server_address,
        }
        messages: queue.Queue = queue.Queue()
        request_sent = threading.Event()

        async def receive() -> dict:
            if not request_sent.is_set():
                request_sent.set()
                return {"type": "http.request", "body": body, "more_body": False}
            # The app only calls receive again to watch for disconnects;
            # this handler never disconnects mid-response.
            return await asyncio.get_running_loop().create_future()

        async def send(message: dict) -> None:
            messages.put(message)

        future = asyncio.run_coroutine_threadsafe(
            self.server.app(scope, receive, send), self.server.loop
        )
        try:
            self._write_response(messages, future)
        finally:
            if not future.done():
                future.cancel()

    def _write_response(self, messages: queue.Queue, future) -> None:
        try:
            start = self._next_message(messages, future)
            if start["type"] != "http.response.start":
                raise RuntimeError(f"expected http.response.start, got {start['type']!r}")
            first = self._next_message(messages, future)
        except Exception as error:  # noqa: BLE001 - transport boundary
            self._send_bridge_error(error)
            return
        status = start["status"]
        headers = [
            (name.decode("latin-1"), value.decode("latin-1"))
            for name, value in start.get("headers", [])
        ]
        streaming = first.get("more_body", False)
        self.send_response(status)
        for name, value in headers:
            self.send_header(name, value)
        if streaming:
            self.send_header("Transfer-Encoding", "chunked")
        elif not any(name.lower() == "content-length" for name, _ in headers):
            self.send_header("Content-Length", str(len(first.get("body", b""))))
        self.end_headers()
        if not streaming:
            self.wfile.write(first.get("body", b""))
            self.wfile.flush()
            return
        message = first
        while True:
            chunk = message.get("body", b"")
            if chunk:
                self.wfile.write(f"{len(chunk):x}\r\n".encode("latin-1"))
                self.wfile.write(chunk)
                self.wfile.write(b"\r\n")
                self.wfile.flush()
            if not message.get("more_body", False):
                break
            message = self._next_message(messages, future)
        self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()

    def _next_message(self, messages: queue.Queue, future) -> dict:
        """The app's next ASGI message, surfacing app crashes as errors."""
        deadline = time.monotonic() + _MESSAGE_TIMEOUT
        while True:
            try:
                return messages.get(timeout=0.05)
            except queue.Empty:
                if future.done():
                    exception = future.exception()
                    if exception is not None:
                        raise exception
                    # Returned cleanly: every send() it made is already
                    # queued, so an empty queue means a broken app.
                    try:
                        return messages.get_nowait()
                    except queue.Empty:
                        raise RuntimeError(
                            "ASGI app returned without completing the response"
                        ) from None
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        "timed out waiting for the ASGI app's next message"
                    )

    def _send_bridge_error(self, error: BaseException) -> None:
        payload = json.dumps(
            {"error": {"type": type(error).__name__, "message": str(error)}}
        ).encode()
        try:
            self.send_response(500)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):
            pass


class _BridgeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # Ephemeral test servers come and go quickly; reuse addresses.
    allow_reuse_address = True

    def __init__(self, address, app, loop: asyncio.AbstractEventLoop) -> None:
        super().__init__(address, _BridgeHandler)
        self.app = app
        self.loop = loop


class StdlibServer:
    """Serve an ASGI app over ``http.server`` — no third-party deps.

    Parameters
    ----------
    app:
        Any ASGI 3 callable (normally a :class:`repro.server.app.KORApp`).
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read the real
        one from :attr:`address`).
    frontend:
        Optional :class:`~repro.service.frontend.AsyncQueryService` the
        server *owns*: :meth:`close` drains it on the server's event
        loop before stopping (the loop its flights live on — closing it
        anywhere else would touch foreign-loop futures).
    drain_seconds:
        Graceful-drain budget: before stopping, :meth:`close` flips an
        app exposing ``begin_drain()`` into refuse-new mode (503 +
        ``Retry-After``; ``/healthz`` says ``draining``) and waits up to
        this long for its ``pending`` count to hit zero, so admitted
        requests finish instead of dying with the socket.  ``0`` skips
        the wait (the drain flag still flips).
    """

    def __init__(
        self,
        app,
        host: str = "127.0.0.1",
        port: int = 0,
        frontend=None,
        drain_seconds: float = 5.0,
    ) -> None:
        if drain_seconds < 0.0:
            raise ValueError(f"drain_seconds must be >= 0, got {drain_seconds}")
        self._frontend = frontend
        self._drain_seconds = drain_seconds
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="kor-server-loop", daemon=True
        )
        self._httpd = _BridgeHTTPServer((host, port), app, self._loop)
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="kor-server-http",
            daemon=True,
        )
        self._started = False
        self._closed = False

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "StdlibServer":
        """Bind, start serving, and return self (idempotent)."""
        if not self._started:
            self._started = True
            self._loop_thread.start()
            self._serve_thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The ``(host, port)`` actually bound."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        host, port = self.address
        return f"http://{host}:{port}"

    def drain(self, timeout: float | None = None) -> bool:
        """Refuse new work and wait for admitted requests to finish.

        Returns True when the app's pending count reached zero within
        *timeout* (default: the server's ``drain_seconds``).  A no-op
        True for apps without drain support.  Safe to call repeatedly;
        :meth:`close` calls it automatically.
        """
        app = self._httpd.app
        begin_drain = getattr(app, "begin_drain", None)
        if not callable(begin_drain):
            return True
        begin_drain()
        budget = self._drain_seconds if timeout is None else timeout
        deadline = time.monotonic() + budget
        while getattr(app, "pending", 0) > 0:
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.02)
        return True

    def close(self) -> None:
        """Drain the app, stop serving, drain the owned frontend, stop the loop."""
        if self._closed:
            return
        self._closed = True
        if self._started:
            self.drain()
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._started:
            if self._frontend is not None:
                asyncio.run_coroutine_threadsafe(
                    self._frontend.close(), self._loop
                ).result(timeout=_MESSAGE_TIMEOUT)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._serve_thread.join(timeout=5.0)
            self._loop_thread.join(timeout=5.0)
        if not self._loop.is_running() and not self._loop.is_closed():
            self._loop.close()

    def __enter__(self) -> "StdlibServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
