"""The KOR serving tier's ASGI application — framework-free.

:class:`KORApp` is a plain `ASGI 3 <https://asgi.readthedocs.io/>`_
callable over one :class:`~repro.service.frontend.AsyncQueryService`.
No web framework is imported: the protocol is three dict shapes
(``scope`` / ``receive`` / ``send``), and speaking it directly keeps the
serving tier dependency-free while remaining hostable by any ASGI server
— including this package's own stdlib bridge
(:class:`repro.server.stdlib.StdlibServer`), so the demo runs with zero
extra deps.

Endpoints (all JSON, schema-stamped per :mod:`repro.server.schema`):

====================  ======  =================================================
``GET  /healthz``     200     liveness + the endpoint directory
``GET  /stats``       200     ``kor.service_stats.v1``: front-end snapshot,
                              scheduling meta, wrapped-service snapshot
``POST /query``       200     one ``kor.route_query.v1`` in, one validated
                              ``kor.route_result.v1`` out
``POST /batch``       200     ``{"queries": [...]}`` in, ``kor.route_batch.v1``
                              out (per-slot results or error objects)
``POST /topk/stream`` 200     KkR top-k as streaming NDJSON: a
                              ``kor.route_topk.v1`` header line, then one
                              ranked route per line (chunked transfer)
``POST /tune``        200     feed an observed arrival rate into adaptive
                              micro-batching; echoes the window now in force
====================  ======  =================================================

Error mapping: malformed payloads and bad parameters (``WireError`` /
``QueryError``) are 400, per-awaiter timeouts are 504, unknown paths are
404, wrong methods are 405, anything else is a 500 carrying the
exception type.  **Every** ``kor.route_result.v1`` document is passed
through :func:`~repro.server.schema.validate_route_result` before it is
sent — the server refuses to emit a response it would itself reject.

Per-endpoint request/error counters land in the front-end's
:class:`~repro.service.stats.ServiceStats` (``snapshot().endpoints``),
so ``/stats`` reports the network tier's own traffic next to the query
metrics.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict
from typing import Awaitable, Callable

from repro.exceptions import QueryError
from repro.server.schema import (
    ROUTE_TOPK_SCHEMA,
    SERVICE_STATS_SCHEMA,
    WireError,
    encode_batch,
    encode_error,
    encode_route_result,
    parse_route_query,
    validate_route_result,
)
from repro.service.frontend import AsyncQueryService

__all__ = ["KORApp"]

_JSON_HEADERS = [(b"content-type", b"application/json")]
_NDJSON_HEADERS = [(b"content-type", b"application/x-ndjson")]


class KORApp:
    """ASGI 3 application serving KOR queries over HTTP.

    Parameters
    ----------
    frontend:
        The :class:`~repro.service.frontend.AsyncQueryService` every
        query endpoint submits into (micro-batching, coalescing and
        timeouts all apply to HTTP traffic exactly as to in-process
        callers — the app adds transport, never semantics).
    topk_engine:
        Engine answering ``/topk/stream`` (anything with the
        ``top_k(source, target, keywords, budget_limit, k, ...)``
        contract).  Defaults to the wrapped sync service's ``engine``
        when it has one; without an engine the endpoint answers 501.
    """

    def __init__(self, frontend: AsyncQueryService, topk_engine=None) -> None:
        self._front = frontend
        if topk_engine is None:
            topk_engine = getattr(getattr(frontend, "service", None), "engine", None)
        self._topk_engine = topk_engine
        self._routes: dict[str, tuple[str, Callable[[bytes], Awaitable[tuple[int, dict]]]]] = {
            "/healthz": ("GET", self._healthz),
            "/stats": ("GET", self._stats),
            "/query": ("POST", self._query),
            "/batch": ("POST", self._batch),
            "/tune": ("POST", self._tune),
        }

    @property
    def frontend(self) -> AsyncQueryService:
        """The wrapped async front-end."""
        return self._front

    # ------------------------------------------------------------------
    # ASGI entry point
    # ------------------------------------------------------------------
    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":
            raise RuntimeError(f"KORApp only speaks http/lifespan, got {scope['type']!r}")
        path = scope["path"]
        method = scope["method"].upper()
        if path == "/topk/stream":
            if method != "POST":
                await self._finish(
                    send, path, 405,
                    {"error": {"type": "MethodNotAllowed", "message": "use POST"}},
                )
                return
            await self._topk_stream(scope, receive, send)
            return
        route = self._routes.get(path)
        if route is None:
            await self._finish(
                send,
                "<unknown>",
                404,
                {"error": {"type": "NotFound", "message": f"no endpoint {path!r}"}},
            )
            return
        expected_method, handler = route
        if method != expected_method:
            await self._finish(
                send,
                path,
                405,
                {"error": {"type": "MethodNotAllowed", "message": f"use {expected_method}"}},
            )
            return
        body = await self._read_body(receive)
        try:
            status, payload = await handler(body)
        except (WireError, QueryError) as error:
            status, payload = 400, encode_error(error)
        except asyncio.TimeoutError as error:
            status, payload = 504, encode_error(error)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - boundary: map to 500
            status, payload = 500, encode_error(error)
        await self._finish(send, path, status, payload)

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    async def _healthz(self, body: bytes) -> tuple[int, dict]:
        return 200, {
            "status": "ok",
            "endpoints": sorted(self._routes) + ["/topk/stream"],
        }

    async def _stats(self, body: bytes) -> tuple[int, dict]:
        payload = {
            "schema": SERVICE_STATS_SCHEMA,
            "frontend": asdict(self._front.snapshot()),
            "scheduling": self._front.scheduling_stats(),
        }
        wrapped = getattr(self._front.service, "snapshot", None)
        if callable(wrapped):
            payload["service"] = asdict(wrapped())
        return 200, payload

    async def _query(self, body: bytes) -> tuple[int, dict]:
        spec = parse_route_query(_loads(body))
        result = await self._front.submit(
            spec["query"],
            algorithm=spec["algorithm"],
            timeout=spec["timeout"],
            **spec["params"],
        )
        return 200, validate_route_result(
            encode_route_result(result, explain=spec["explain"])
        )

    async def _batch(self, body: bytes) -> tuple[int, dict]:
        payload = _loads(body)
        if not isinstance(payload, dict) or not isinstance(payload.get("queries"), list):
            raise WireError("route_batch: body must carry a 'queries' list")
        defaults = {
            key: payload[key]
            for key in ("algorithm", "params", "explain", "timeout")
            if key in payload
        }
        specs = []
        for item in payload["queries"]:
            if not isinstance(item, dict):
                raise WireError("route_batch: each query must be a JSON object")
            # Batch-level defaults apply unless the slot overrides them.
            specs.append(parse_route_query({**defaults, **item}))
        outcomes = await asyncio.gather(
            *(
                self._front.submit(
                    spec["query"],
                    algorithm=spec["algorithm"],
                    timeout=spec["timeout"],
                    **spec["params"],
                )
                for spec in specs
            ),
            return_exceptions=True,
        )
        items = []
        for spec, outcome in zip(specs, outcomes):
            if isinstance(outcome, BaseException):
                items.append(encode_error(outcome))
            else:
                items.append(
                    validate_route_result(
                        encode_route_result(outcome, explain=spec["explain"])
                    )
                )
        return 200, encode_batch(items)

    async def _tune(self, body: bytes) -> tuple[int, dict]:
        payload = _loads(body)
        if not isinstance(payload, dict):
            raise WireError("tune: body must be a JSON object")
        rate = payload.get("arrival_qps")
        if isinstance(rate, bool) or not isinstance(rate, (int, float)):
            raise WireError("tune: 'arrival_qps' must be a number")
        window = self._front.tune(float(rate))
        return 200, {
            "window_seconds": window,
            "arrival_qps": self._front.arrival_qps,
            "adaptive": self._front.scheduling_stats()["adaptive"],
        }

    async def _topk_stream(self, scope, receive, send) -> None:
        """KkR top-k as chunked NDJSON (header line, then ranked routes).

        The whole search runs on a worker thread before the first byte
        is written — top-k has no incremental API — but the response is
        still streamed line by line so large answers never materialise
        as one document and clients can consume ranks as they arrive.
        """
        body = await self._read_body(receive)
        try:
            if self._topk_engine is None:
                raise LookupError("this deployment exposes no top-k engine")
            payload = _loads(body)
            spec = parse_route_query(payload)
            k = payload.get("k")
            if isinstance(k, bool) or not isinstance(k, int) or k < 1:
                raise WireError("route_topk: 'k' must be a positive integer")
            loop = asyncio.get_running_loop()
            answer = await loop.run_in_executor(
                None,
                lambda: self._topk_engine.top_k(
                    spec["query"].source,
                    spec["query"].target,
                    spec["query"].keywords,
                    spec["query"].budget_limit,
                    k,
                    algorithm=spec["algorithm"],
                    **spec["params"],
                ),
            )
        except (WireError, QueryError) as error:
            await self._finish(send, "/topk/stream", 400, encode_error(error))
            return
        except LookupError as error:
            await self._finish(send, "/topk/stream", 501, encode_error(error))
            return
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - boundary: map to 500
            await self._finish(send, "/topk/stream", 500, encode_error(error))
            return
        header = {
            "schema": ROUTE_TOPK_SCHEMA,
            "query": {
                "source": spec["query"].source,
                "target": spec["query"].target,
                "keywords": list(spec["query"].keywords),
                "budget_limit": spec["query"].budget_limit,
            },
            "algorithm": spec["algorithm"],
            "k": k,
            "count": len(answer.routes),
        }
        await send(
            {
                "type": "http.response.start",
                "status": 200,
                "headers": list(_NDJSON_HEADERS),
            }
        )
        await send(
            {"type": "http.response.body", "body": _line(header), "more_body": True}
        )
        for rank, route in enumerate(answer.routes, start=1):
            line = {
                "rank": rank,
                "nodes": [int(node) for node in route.nodes],
                "score": {
                    "objective": float(route.objective_score),
                    "budget": float(route.budget_score),
                },
            }
            await send(
                {"type": "http.response.body", "body": _line(line), "more_body": True}
            )
        await send({"type": "http.response.body", "body": b"", "more_body": False})
        self._front.stats.record_endpoint("/topk/stream")

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await send({"type": "lifespan.shutdown.complete"})
                return

    async def _read_body(self, receive) -> bytes:
        chunks: list[bytes] = []
        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                raise asyncio.CancelledError("client disconnected mid-request")
            chunks.append(message.get("body", b""))
            if not message.get("more_body", False):
                return b"".join(chunks)

    async def _finish(self, send, endpoint: str, status: int, payload: dict) -> None:
        """One complete JSON response + the endpoint counter tick."""
        body = json.dumps(payload, allow_nan=False).encode()
        await send(
            {
                "type": "http.response.start",
                "status": status,
                "headers": list(_JSON_HEADERS) + [
                    (b"content-length", str(len(body)).encode())
                ],
            }
        )
        await send({"type": "http.response.body", "body": body, "more_body": False})
        self._front.stats.record_endpoint(endpoint, error=status >= 400)


def _loads(body: bytes) -> object:
    try:
        return json.loads(body or b"null")
    except json.JSONDecodeError as error:
        raise WireError(f"request body is not valid JSON: {error}") from None


def _line(payload: dict) -> bytes:
    return json.dumps(payload, allow_nan=False).encode() + b"\n"
