"""The KOR serving tier's ASGI application — framework-free.

:class:`KORApp` is a plain `ASGI 3 <https://asgi.readthedocs.io/>`_
callable over one :class:`~repro.service.frontend.AsyncQueryService`.
No web framework is imported: the protocol is three dict shapes
(``scope`` / ``receive`` / ``send``), and speaking it directly keeps the
serving tier dependency-free while remaining hostable by any ASGI server
— including this package's own stdlib bridge
(:class:`repro.server.stdlib.StdlibServer`), so the demo runs with zero
extra deps.

Endpoints (all JSON, schema-stamped per :mod:`repro.server.schema`):

====================  ======  =================================================
``GET  /healthz``     200     liveness + the endpoint directory
``GET  /stats``       200     ``kor.service_stats.v1``: front-end snapshot,
                              scheduling meta, wrapped-service snapshot
``POST /query``       200     one ``kor.route_query.v1`` in, one validated
                              ``kor.route_result.v1`` out
``POST /batch``       200     ``{"queries": [...]}`` in, ``kor.route_batch.v1``
                              out (per-slot results or error objects)
``POST /topk/stream`` 200     KkR top-k as streaming NDJSON: a
                              ``kor.route_topk.v1`` header line, then one
                              ranked route per line (chunked transfer)
``POST /tune``        200     feed an observed arrival rate into adaptive
                              micro-batching; echoes the window now in force
``POST /admin/update``  200   one ``kor.graph_update.v1`` mutation batch in,
                              a ``kor.graph_update_ack.v1`` ack out carrying
                              the graph epoch now in force
====================  ======  =================================================

Error mapping: malformed payloads and bad parameters (``WireError`` /
``QueryError``) are 400, expired deadlines (``DeadlineExceeded``) and
per-awaiter timeouts are 504, a shut-down serving tier
(``ServiceClosed``) is 503, unknown paths are 404, wrong methods are
405, anything else is a 500 carrying the exception type.  **Every**
``kor.route_result.v1`` document is passed through
:func:`~repro.server.schema.validate_route_result` before it is sent —
the server refuses to emit a response it would itself reject.

Failure containment at the front door:

* **Admission control** — at most ``max_pending`` query-serving
  requests (``/query`` / ``/batch`` / ``/topk/stream``) are in flight;
  the next one is *shed* with a 503 + ``Retry-After`` before its body
  is even read.  Sheds are counted in ``snapshot().shed`` and surfaced
  by ``/healthz``.
* **Deadlines** — a request-scoped deadline arrives as the ``timeout``
  / ``timeout_ms`` body fields or the ``x-kor-timeout-ms`` header (body
  wins) and propagates down to the engine's search loop.
* **Graceful drain** — :meth:`KORApp.begin_drain` flips the app into a
  refuse-new/finish-old mode (503 + ``Retry-After`` for new work;
  ``/healthz`` reports ``draining``) so a host can empty the request
  population before closing the frontend.
* ``/healthz`` reports ``degraded`` when the execution backend has an
  open circuit-breaker lane (see
  ``repro.service.backends.ProcessBackend.breaker_stats``).

Per-endpoint request/error counters land in the front-end's
:class:`~repro.service.stats.ServiceStats` (``snapshot().endpoints``),
so ``/stats`` reports the network tier's own traffic next to the query
metrics.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict
from typing import Awaitable, Callable

from repro.exceptions import DeadlineExceeded, QueryError, ServiceClosed
from repro.graph.mutation import MutationError
from repro.server.schema import (
    ROUTE_TOPK_SCHEMA,
    SERVICE_STATS_SCHEMA,
    WireError,
    encode_batch,
    encode_error,
    encode_route_result,
    encode_update_ack,
    parse_graph_update,
    parse_route_query,
    validate_route_result,
)
from repro.service.frontend import AsyncQueryService

__all__ = ["KORApp"]

_JSON_HEADERS = [(b"content-type", b"application/json")]
_NDJSON_HEADERS = [(b"content-type", b"application/x-ndjson")]

#: Endpoints that cost engine work and therefore count against (and can
#: be refused by) the pending-request budget.
_WORK_ENDPOINTS = frozenset({"/query", "/batch", "/topk/stream"})

#: Default cap on concurrently admitted work requests.
DEFAULT_MAX_PENDING = 256

#: What a shed response tells the client to wait before retrying.
RETRY_AFTER_SECONDS = 1


class KORApp:
    """ASGI 3 application serving KOR queries over HTTP.

    Parameters
    ----------
    frontend:
        The :class:`~repro.service.frontend.AsyncQueryService` every
        query endpoint submits into (micro-batching, coalescing and
        timeouts all apply to HTTP traffic exactly as to in-process
        callers — the app adds transport, never semantics).
    topk_engine:
        Engine answering ``/topk/stream`` (anything with the
        ``top_k(source, target, keywords, budget_limit, k, ...)``
        contract).  Defaults to the wrapped sync service's ``engine``
        when it has one; without an engine the endpoint answers 501.
    max_pending:
        Admission-control budget: the most ``/query`` / ``/batch`` /
        ``/topk/stream`` requests allowed in flight at once; the next
        one is shed with a 503 + ``Retry-After``.  A ``/batch`` of 50
        counts as one admitted request (its queries still queue inside
        the front-end, which has its own accounting).
    """

    def __init__(
        self,
        frontend: AsyncQueryService,
        topk_engine=None,
        max_pending: int = DEFAULT_MAX_PENDING,
    ) -> None:
        if max_pending < 1:
            raise QueryError(f"max_pending must be >= 1, got {max_pending}")
        self._front = frontend
        if topk_engine is None:
            topk_engine = getattr(getattr(frontend, "service", None), "engine", None)
        self._topk_engine = topk_engine
        self._max_pending = max_pending
        # Everything runs on one event loop, so a plain int is exact.
        self._pending = 0
        self._draining = False
        self._routes: dict[str, tuple[str, Callable[[dict, bytes], Awaitable[tuple[int, dict]]]]] = {
            "/healthz": ("GET", self._healthz),
            "/stats": ("GET", self._stats),
            "/query": ("POST", self._query),
            "/batch": ("POST", self._batch),
            "/tune": ("POST", self._tune),
            # Deliberately NOT a work endpoint: operators must be able
            # to push graph updates while the app sheds or drains query
            # traffic, and updates never count against the pending budget.
            "/admin/update": ("POST", self._admin_update),
        }

    @property
    def frontend(self) -> AsyncQueryService:
        """The wrapped async front-end."""
        return self._front

    @property
    def pending(self) -> int:
        """Work requests currently admitted and not yet answered."""
        return self._pending

    @property
    def draining(self) -> bool:
        """Whether :meth:`begin_drain` has been called."""
        return self._draining

    def begin_drain(self) -> None:
        """Refuse new work while admitted requests run to completion.

        From now on every work endpoint answers 503 + ``Retry-After``
        and ``/healthz`` reports ``draining``; requests already admitted
        are unaffected.  The host polls :attr:`pending` down to zero
        before closing the front-end (see
        :class:`repro.server.stdlib.StdlibServer`).  Irreversible.
        """
        self._draining = True

    # ------------------------------------------------------------------
    # ASGI entry point
    # ------------------------------------------------------------------
    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":
            raise RuntimeError(f"KORApp only speaks http/lifespan, got {scope['type']!r}")
        path = scope["path"]
        method = scope["method"].upper()
        if path == "/topk/stream":
            if method != "POST":
                await self._finish(
                    send, path, 405,
                    {"error": {"type": "MethodNotAllowed", "message": "use POST"}},
                )
                return
            if await self._shed(send, path):
                return
            self._pending += 1
            try:
                await self._topk_stream(scope, receive, send)
            finally:
                self._pending -= 1
            return
        route = self._routes.get(path)
        if route is None:
            await self._finish(
                send,
                "<unknown>",
                404,
                {"error": {"type": "NotFound", "message": f"no endpoint {path!r}"}},
            )
            return
        expected_method, handler = route
        if method != expected_method:
            await self._finish(
                send,
                path,
                405,
                {"error": {"type": "MethodNotAllowed", "message": f"use {expected_method}"}},
            )
            return
        admitted = path in _WORK_ENDPOINTS
        if admitted:
            if await self._shed(send, path):
                return
            self._pending += 1
        try:
            body = await self._read_body(receive)
            try:
                status, payload = await handler(scope, body)
            except DeadlineExceeded as error:
                # Before the QueryError arm: an expired deadline is the
                # server running out of time, not the client's fault.
                status, payload = 504, encode_error(error)
            except ServiceClosed as error:
                status, payload = 503, encode_error(error)
            except (WireError, QueryError, MutationError) as error:
                status, payload = 400, encode_error(error)
            except asyncio.TimeoutError as error:
                status, payload = 504, encode_error(error)
            except asyncio.CancelledError:
                raise
            except Exception as error:  # noqa: BLE001 - boundary: map to 500
                status, payload = 500, encode_error(error)
            await self._finish(send, path, status, payload)
        finally:
            if admitted:
                self._pending -= 1

    async def _shed(self, send, path: str) -> bool:
        """Refuse *path* (503 + Retry-After) when draining or over budget."""
        if self._draining:
            refusal = {
                "error": {
                    "type": "Draining",
                    "message": "server is draining; retry against another instance",
                }
            }
        elif self._pending >= self._max_pending:
            refusal = {
                "error": {
                    "type": "Overloaded",
                    "message": (
                        f"pending budget exhausted ({self._max_pending} requests "
                        "in flight); retry after backoff"
                    ),
                }
            }
        else:
            return False
        self._front.stats.record_shed()
        await self._finish(
            send,
            path,
            503,
            refusal,
            extra_headers=[(b"retry-after", str(RETRY_AFTER_SECONDS).encode())],
        )
        return True

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    async def _healthz(self, scope, body: bytes) -> tuple[int, dict]:
        breakers = self._breaker_stats()
        if self._draining:
            status = "draining"
        elif breakers is not None and any(
            lane["state"] != "closed" for lane in breakers.get("lanes", ())
        ):
            status = "degraded"
        else:
            status = "ok"
        payload = {
            "status": status,
            "endpoints": sorted(self._routes) + ["/topk/stream"],
            "pending": self._pending,
            "max_pending": self._max_pending,
            "shed": self._front.snapshot().shed,
        }
        epoch = self._front.epoch
        if epoch is not None:
            payload["epoch"] = int(epoch)
        if breakers is not None:
            payload["breakers"] = breakers
        return 200, payload

    def _breaker_stats(self) -> dict | None:
        """Circuit-breaker readings of the wrapped service's backend."""
        backend = getattr(self._front.service, "backend", None)
        stats = getattr(backend, "breaker_stats", None)
        return stats() if callable(stats) else None

    async def _stats(self, scope, body: bytes) -> tuple[int, dict]:
        payload = {
            "schema": SERVICE_STATS_SCHEMA,
            "frontend": asdict(self._front.snapshot()),
            "scheduling": self._front.scheduling_stats(),
        }
        epoch = self._front.epoch
        if epoch is not None:
            payload["epoch"] = int(epoch)
        wrapped = getattr(self._front.service, "snapshot", None)
        if callable(wrapped):
            payload["service"] = asdict(wrapped())
        return 200, payload

    async def _query(self, scope, body: bytes) -> tuple[int, dict]:
        spec = parse_route_query(_loads(body))
        timeout = spec["timeout"]
        if timeout is None:
            timeout = _header_timeout(scope)
        result = await self._front.submit(
            spec["query"],
            algorithm=spec["algorithm"],
            timeout=timeout,
            **spec["params"],
        )
        return 200, validate_route_result(
            encode_route_result(
                result, explain=spec["explain"], epoch=self._front.epoch
            )
        )

    async def _batch(self, scope, body: bytes) -> tuple[int, dict]:
        payload = _loads(body)
        if not isinstance(payload, dict) or not isinstance(payload.get("queries"), list):
            raise WireError("route_batch: body must carry a 'queries' list")
        defaults = {
            key: payload[key]
            for key in ("algorithm", "params", "explain", "timeout")
            if key in payload
        }
        specs = []
        for item in payload["queries"]:
            if not isinstance(item, dict):
                raise WireError("route_batch: each query must be a JSON object")
            # Batch-level defaults apply unless the slot overrides them.
            specs.append(parse_route_query({**defaults, **item}))
        header_timeout = _header_timeout(scope)
        outcomes = await asyncio.gather(
            *(
                self._front.submit(
                    spec["query"],
                    algorithm=spec["algorithm"],
                    timeout=(
                        spec["timeout"] if spec["timeout"] is not None else header_timeout
                    ),
                    **spec["params"],
                )
                for spec in specs
            ),
            return_exceptions=True,
        )
        items = []
        epoch = self._front.epoch
        for spec, outcome in zip(specs, outcomes):
            if isinstance(outcome, BaseException):
                items.append(encode_error(outcome))
            else:
                items.append(
                    validate_route_result(
                        encode_route_result(
                            outcome, explain=spec["explain"], epoch=epoch
                        )
                    )
                )
        return 200, encode_batch(items)

    async def _tune(self, scope, body: bytes) -> tuple[int, dict]:
        payload = _loads(body)
        if not isinstance(payload, dict):
            raise WireError("tune: body must be a JSON object")
        rate = payload.get("arrival_qps")
        if isinstance(rate, bool) or not isinstance(rate, (int, float)):
            raise WireError("tune: 'arrival_qps' must be a number")
        window = self._front.tune(float(rate))
        scheduling = self._front.scheduling_stats()
        ack = {
            "window_seconds": window,
            "arrival_qps": self._front.arrival_qps,
            "adaptive": scheduling["adaptive"],
        }
        # Adaptive wave sizing rides the same rate signal; report the
        # size now in effect when the wrapped tier has a controller.
        if "wave_sizing" in scheduling:
            ack["wave_size"] = scheduling["wave_sizing"]["wave_size"]
        return 200, ack

    async def _admin_update(self, scope, body: bytes) -> tuple[int, dict]:
        """Apply a ``kor.graph_update.v1`` mutation batch to the world.

        The ack carries the graph epoch now in force, so an operator
        can correlate subsequent ``kor.route_result.v1`` documents
        (which are stamped with the epoch they were served under) with
        the update that produced that state.  Admission control does not
        apply: updates must land even while the app sheds or drains.
        """
        ops = parse_graph_update(_loads(body))
        epoch = await self._front.apply_update(ops)
        return 200, encode_update_ack(epoch, applied=len(ops))

    async def _topk_stream(self, scope, receive, send) -> None:
        """KkR top-k as chunked NDJSON (header line, then ranked routes).

        The whole search runs on a worker thread before the first byte
        is written — top-k has no incremental API — but the response is
        still streamed line by line so large answers never materialise
        as one document and clients can consume ranks as they arrive.
        """
        body = await self._read_body(receive)
        try:
            if self._topk_engine is None:
                raise LookupError("this deployment exposes no top-k engine")
            payload = _loads(body)
            spec = parse_route_query(payload)
            k = payload.get("k")
            if isinstance(k, bool) or not isinstance(k, int) or k < 1:
                raise WireError("route_topk: 'k' must be a positive integer")
            loop = asyncio.get_running_loop()
            answer = await loop.run_in_executor(
                None,
                lambda: self._topk_engine.top_k(
                    spec["query"].source,
                    spec["query"].target,
                    spec["query"].keywords,
                    spec["query"].budget_limit,
                    k,
                    algorithm=spec["algorithm"],
                    **spec["params"],
                ),
            )
        except (WireError, QueryError) as error:
            await self._finish(send, "/topk/stream", 400, encode_error(error))
            return
        except LookupError as error:
            await self._finish(send, "/topk/stream", 501, encode_error(error))
            return
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - boundary: map to 500
            await self._finish(send, "/topk/stream", 500, encode_error(error))
            return
        header = {
            "schema": ROUTE_TOPK_SCHEMA,
            "query": {
                "source": spec["query"].source,
                "target": spec["query"].target,
                "keywords": list(spec["query"].keywords),
                "budget_limit": spec["query"].budget_limit,
            },
            "algorithm": spec["algorithm"],
            "k": k,
            "count": len(answer.routes),
        }
        await send(
            {
                "type": "http.response.start",
                "status": 200,
                "headers": list(_NDJSON_HEADERS),
            }
        )
        await send(
            {"type": "http.response.body", "body": _line(header), "more_body": True}
        )
        for rank, route in enumerate(answer.routes, start=1):
            line = {
                "rank": rank,
                "nodes": [int(node) for node in route.nodes],
                "score": {
                    "objective": float(route.objective_score),
                    "budget": float(route.budget_score),
                },
            }
            await send(
                {"type": "http.response.body", "body": _line(line), "more_body": True}
            )
        await send({"type": "http.response.body", "body": b"", "more_body": False})
        self._front.stats.record_endpoint("/topk/stream")

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await send({"type": "lifespan.shutdown.complete"})
                return

    async def _read_body(self, receive) -> bytes:
        chunks: list[bytes] = []
        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                raise asyncio.CancelledError("client disconnected mid-request")
            chunks.append(message.get("body", b""))
            if not message.get("more_body", False):
                return b"".join(chunks)

    async def _finish(
        self,
        send,
        endpoint: str,
        status: int,
        payload: dict,
        extra_headers: list[tuple[bytes, bytes]] | None = None,
    ) -> None:
        """One complete JSON response + the endpoint counter tick."""
        body = json.dumps(payload, allow_nan=False).encode()
        headers = list(_JSON_HEADERS) + [
            (b"content-length", str(len(body)).encode())
        ]
        if extra_headers:
            headers.extend(extra_headers)
        await send(
            {
                "type": "http.response.start",
                "status": status,
                "headers": headers,
            }
        )
        await send({"type": "http.response.body", "body": body, "more_body": False})
        self._front.stats.record_endpoint(endpoint, error=status >= 400)


def _loads(body: bytes) -> object:
    try:
        return json.loads(body or b"null")
    except json.JSONDecodeError as error:
        raise WireError(f"request body is not valid JSON: {error}") from None


def _header_timeout(scope) -> float | None:
    """The ``x-kor-timeout-ms`` request header as seconds, if present.

    Body-level ``timeout`` / ``timeout_ms`` fields take precedence; the
    header is the transport-level default a proxy or client library can
    stamp on every request without touching payloads.
    """
    for name, value in scope.get("headers") or ():
        if bytes(name).lower() == b"x-kor-timeout-ms":
            text = bytes(value).decode("latin-1").strip()
            try:
                ms = float(text)
            except ValueError:
                raise WireError(
                    f"x-kor-timeout-ms header must be a number, got {text!r}"
                ) from None
            if ms <= 0:
                raise WireError("x-kor-timeout-ms header must be positive")
            return ms / 1000.0
    return None


def _line(payload: dict) -> bytes:
    return json.dumps(payload, allow_nan=False).encode() + b"\n"
