"""``kor.route_result.v1`` — the serving tier's versioned wire schema.

Everything that crosses the network boundary is a JSON document whose
``schema`` field names its exact shape and version, in the style of
schema-versioned routing outputs (required fields, a score breakdown,
an optional ``explain`` payload).  The contract is enforced **both
ways**: the server validates every response before it is sent
(:func:`validate_route_result`), and well-behaved clients — the load
generator, the differential tests — validate again on receipt, so a
drift in either direction fails loudly instead of silently changing
what "a route result" means mid-deployment.

Schemas defined here:

``kor.route_query.v1``
    A single query request (``/query`` body): required ``source`` /
    ``target`` / ``keywords`` / ``budget_limit``, optional ``algorithm``
    / ``params`` / ``explain`` / ``timeout``.
``kor.route_result.v1``
    One answered query: the echoed query, the algorithm, the four
    feasibility verdicts, a ``score`` breakdown (objective + budget, or
    nulls when no route exists), the route's node sequence and, when
    requested, an ``explain`` payload with the search counters.
``kor.route_batch.v1``
    A ``/batch`` response: per-slot ``kor.route_result.v1`` items or
    per-slot error objects, in submission order.
``kor.service_stats.v1``
    The ``/stats`` response: front-end snapshot, scheduling meta and
    the wrapped sync service's snapshot.  Additive optional fields:
    the snapshots carry a ``waves`` dict (wave-dispatch occupancy —
    ``formed`` / ``members`` / ``capacity`` / ``solo_fallbacks`` /
    ``mean_members`` / ``fill_rate``) when the service formed kernel
    waves, and scheduling meta carries ``wave_sizing`` (the adaptive
    wave-size controller's policy) when the wrapped tier has one.
``kor.route_topk.v1``
    The streaming top-k header line; each following NDJSON line is one
    ranked route.
``kor.graph_update.v1`` / ``kor.graph_update_ack.v1``
    A ``/admin/update`` request — an ordered list of graph mutation
    operations (edge re-costs, node closures/re-opens, keyword
    replacements) applied atomically as **one** epoch bump — and its
    acknowledgement carrying the resulting graph epoch.

Route results additionally carry an optional ``epoch`` field (the graph
epoch the answer was computed against) so clients can detect reads that
raced a live update; it is additive, so pre-epoch clients keep
validating.

Encoding never emits ``NaN``/``Infinity`` (scores of route-less results
are ``null``), so payloads stay valid strict JSON.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Mapping

from repro.core.engine import ALGORITHMS
from repro.core.query import KORQuery
from repro.core.results import KORResult, SearchStats
from repro.core.route import Route
from repro.exceptions import QueryError
from repro.graph.mutation import OP_NAMES

__all__ = [
    "ROUTE_QUERY_SCHEMA",
    "ROUTE_RESULT_SCHEMA",
    "ROUTE_BATCH_SCHEMA",
    "SERVICE_STATS_SCHEMA",
    "ROUTE_TOPK_SCHEMA",
    "GRAPH_UPDATE_SCHEMA",
    "GRAPH_UPDATE_ACK_SCHEMA",
    "WireError",
    "encode_route_result",
    "validate_route_result",
    "decode_route_result",
    "parse_route_query",
    "parse_graph_update",
    "encode_update_ack",
    "encode_batch",
    "encode_error",
]

ROUTE_QUERY_SCHEMA = "kor.route_query.v1"
ROUTE_RESULT_SCHEMA = "kor.route_result.v1"
ROUTE_BATCH_SCHEMA = "kor.route_batch.v1"
SERVICE_STATS_SCHEMA = "kor.service_stats.v1"
ROUTE_TOPK_SCHEMA = "kor.route_topk.v1"
GRAPH_UPDATE_SCHEMA = "kor.graph_update.v1"
GRAPH_UPDATE_ACK_SCHEMA = "kor.graph_update_ack.v1"

#: Required top-level fields of a ``kor.route_result.v1`` document and
#: the python types each must carry.  ``route`` and ``failure_reason``
#: are required *keys* whose values may be null.
_RESULT_REQUIRED: dict[str, tuple[type, ...]] = {
    "schema": (str,),
    "query": (dict,),
    "algorithm": (str,),
    "found": (bool,),
    "feasible": (bool,),
    "covers_keywords": (bool,),
    "within_budget": (bool,),
    "score": (dict,),
    "route": (list, type(None)),
    "failure_reason": (str, type(None)),
}

_QUERY_REQUIRED: dict[str, tuple[type, ...]] = {
    "source": (int,),
    "target": (int,),
    "keywords": (list,),
    "budget_limit": (int, float),
}


class WireError(QueryError):
    """A payload violated the wire schema (either direction)."""


def _require(payload: Mapping, spec: dict[str, tuple[type, ...]], where: str) -> None:
    if not isinstance(payload, Mapping):
        raise WireError(f"{where}: expected a JSON object, got {type(payload).__name__}")
    for field, types in spec.items():
        if field not in payload:
            raise WireError(f"{where}: required field {field!r} is missing")
        value = payload[field]
        if not isinstance(value, types) or (
            # bool is an int subclass; a numeric field must not accept it.
            isinstance(value, bool) and bool not in types
        ):
            expected = "/".join(t.__name__ for t in types)
            raise WireError(
                f"{where}: field {field!r} must be {expected}, "
                f"got {type(value).__name__}"
            )


# ----------------------------------------------------------------------
# requests
# ----------------------------------------------------------------------


def parse_route_query(payload: object) -> dict:
    """Validate and normalise one ``kor.route_query.v1`` request body.

    Returns ``{"query": KORQuery, "algorithm": str, "params": dict,
    "explain": bool, "timeout": float | None}``.  Raises
    :class:`WireError` on any malformed field — the server maps that to
    a 400, never a 500.

    The request deadline may be spelled ``timeout`` (seconds) or
    ``timeout_ms`` (milliseconds, the header-friendly form) — but not
    both.  ``params`` may not smuggle a ``deadline``: deadlines are
    transport-level and travel out-of-band.
    """
    _require(payload, _QUERY_REQUIRED, "route_query")
    schema = payload.get("schema", ROUTE_QUERY_SCHEMA)
    if schema != ROUTE_QUERY_SCHEMA:
        raise WireError(
            f"route_query: unsupported schema {schema!r}; expected {ROUTE_QUERY_SCHEMA!r}"
        )
    keywords = payload["keywords"]
    if not all(isinstance(word, str) for word in keywords):
        raise WireError("route_query: 'keywords' must be a list of strings")
    budget = float(payload["budget_limit"])
    algorithm = payload.get("algorithm", "bucketbound")
    if algorithm not in ALGORITHMS:
        raise WireError(
            f"route_query: unknown algorithm {algorithm!r}; "
            f"expected one of {', '.join(ALGORITHMS)}"
        )
    params = payload.get("params", {})
    if not isinstance(params, Mapping):
        raise WireError("route_query: 'params' must be a JSON object")
    if "deadline" in params:
        raise WireError(
            "route_query: 'deadline' is not a query parameter; use "
            "'timeout' / 'timeout_ms' (or the x-kor-timeout-ms header)"
        )
    explain = payload.get("explain", False)
    if not isinstance(explain, bool):
        raise WireError("route_query: 'explain' must be a boolean")
    timeout = payload.get("timeout")
    if timeout is not None and (
        isinstance(timeout, bool) or not isinstance(timeout, (int, float)) or timeout <= 0
    ):
        raise WireError("route_query: 'timeout' must be a positive number")
    timeout_ms = payload.get("timeout_ms")
    if timeout_ms is not None:
        if timeout is not None:
            raise WireError(
                "route_query: give 'timeout' or 'timeout_ms', not both"
            )
        if (
            isinstance(timeout_ms, bool)
            or not isinstance(timeout_ms, (int, float))
            or timeout_ms <= 0
        ):
            raise WireError("route_query: 'timeout_ms' must be a positive number")
        timeout = float(timeout_ms) / 1000.0
    return {
        "query": KORQuery(
            int(payload["source"]), int(payload["target"]), tuple(keywords), budget
        ),
        "algorithm": algorithm,
        "params": dict(params),
        "explain": explain,
        "timeout": float(timeout) if timeout is not None else None,
    }


def _node_id(op: Mapping, field: str, where: str) -> int:
    value = op.get(field)
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise WireError(f"{where}: {field!r} must be a non-negative integer node id")
    return value


def _positive_weight(op: Mapping, field: str, where: str) -> float | None:
    value = op.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
        raise WireError(f"{where}: {field!r} must be a positive number")
    return float(value)


def parse_graph_update(payload: object) -> list[dict]:
    """Validate one ``kor.graph_update.v1`` body into mutation ops.

    Returns the ordered op list in exactly the wire shape
    :meth:`repro.graph.mutation.GraphMutator.apply_op` consumes —
    shape-validated here (types, op names, required fields) so a
    malformed body maps to a 400; *semantic* validation (does the edge
    exist, is the node already closed) stays with the mutator, whose
    :class:`~repro.graph.mutation.MutationError` the server also maps
    to a 400.
    """
    if not isinstance(payload, Mapping):
        raise WireError(
            f"graph_update: expected a JSON object, got {type(payload).__name__}"
        )
    schema = payload.get("schema", GRAPH_UPDATE_SCHEMA)
    if schema != GRAPH_UPDATE_SCHEMA:
        raise WireError(
            f"graph_update: unsupported schema {schema!r}; "
            f"expected {GRAPH_UPDATE_SCHEMA!r}"
        )
    ops = payload.get("ops")
    if not isinstance(ops, list) or not ops:
        raise WireError("graph_update: 'ops' must be a non-empty list")
    parsed: list[dict] = []
    for position, op in enumerate(ops):
        where = f"graph_update.ops[{position}]"
        if not isinstance(op, Mapping):
            raise WireError(f"{where}: expected a JSON object")
        kind = op.get("op")
        if kind not in OP_NAMES:
            raise WireError(
                f"{where}: unknown op {kind!r}; expected one of {', '.join(OP_NAMES)}"
            )
        if kind == "update_edge_cost":
            entry = {
                "op": kind,
                "u": _node_id(op, "u", where),
                "v": _node_id(op, "v", where),
            }
            objective = _positive_weight(op, "objective", where)
            budget = _positive_weight(op, "budget", where)
            if objective is None and budget is None:
                raise WireError(f"{where}: needs 'objective', 'budget', or both")
            if objective is not None:
                entry["objective"] = objective
            if budget is not None:
                entry["budget"] = budget
        elif kind == "update_keywords":
            keywords = op.get("keywords")
            if not isinstance(keywords, list) or not all(
                isinstance(word, str) and word for word in keywords
            ):
                raise WireError(
                    f"{where}: 'keywords' must be a list of non-empty strings"
                )
            entry = {
                "op": kind,
                "node": _node_id(op, "node", where),
                "keywords": list(keywords),
            }
        else:  # close_node / open_node
            entry = {"op": kind, "node": _node_id(op, "node", where)}
        parsed.append(entry)
    return parsed


def encode_update_ack(epoch: int, applied: int) -> dict:
    """A ``kor.graph_update_ack.v1`` document for an applied update."""
    return {
        "schema": GRAPH_UPDATE_ACK_SCHEMA,
        "epoch": int(epoch),
        "applied": int(applied),
    }


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------


def encode_route_result(
    result: KORResult, explain: bool = False, epoch: int | None = None
) -> dict:
    """One :class:`KORResult` as a ``kor.route_result.v1`` document.

    ``explain=True`` attaches the search counters (labels created /
    pruned, loops, runtime) — the per-query cost story, for tuning.
    ``epoch`` (when the serving tier tracks one) stamps the graph epoch
    the answer was computed against — additive, so documents from
    pre-epoch servers stay valid.
    """
    route = result.route
    payload = {
        "schema": ROUTE_RESULT_SCHEMA,
        "query": {
            "source": int(result.query.source),
            "target": int(result.query.target),
            "keywords": list(result.query.keywords),
            "budget_limit": float(result.query.budget_limit),
        },
        "algorithm": result.algorithm,
        "found": result.found,
        "feasible": result.feasible,
        "covers_keywords": result.covers_keywords,
        "within_budget": result.within_budget,
        "score": {
            "objective": float(route.objective_score) if route is not None else None,
            "budget": float(route.budget_score) if route is not None else None,
        },
        "route": [int(node) for node in route.nodes] if route is not None else None,
        "failure_reason": result.failure_reason,
    }
    if result.degraded:
        # v1-compatible extension: the key appears only on degraded
        # answers, so normal responses stay byte-identical to before.
        payload["degraded"] = True
    if epoch is not None:
        # Same additive pattern: only epoch-tracking servers emit it.
        payload["epoch"] = int(epoch)
    if explain:
        payload["explain"] = {"search": asdict(result.stats)}
    return payload


def validate_route_result(payload: object) -> dict:
    """Check *payload* against ``kor.route_result.v1``; return it.

    Beyond per-field types this enforces the cross-field invariants that
    make a document *coherent*: the schema constant, a well-formed
    echoed query, and the found/route/score consistency triangle
    (``found`` iff a route is present iff the score breakdown is
    non-null).  Raises :class:`WireError` with a pinpointed message.
    """
    _require(payload, _RESULT_REQUIRED, "route_result")
    if payload["schema"] != ROUTE_RESULT_SCHEMA:
        raise WireError(
            f"route_result: schema must be {ROUTE_RESULT_SCHEMA!r}, "
            f"got {payload['schema']!r}"
        )
    _require(payload["query"], _QUERY_REQUIRED, "route_result.query")
    if not all(isinstance(word, str) for word in payload["query"]["keywords"]):
        raise WireError("route_result.query: 'keywords' must be a list of strings")
    # Result labels are *descriptive* (``greedy-1``, ``exact``…), not
    # the request-side names — only emptiness is a wire violation here.
    if not payload["algorithm"]:
        raise WireError("route_result: 'algorithm' must be a non-empty string")
    score = payload["score"]
    for part in ("objective", "budget"):
        if part not in score:
            raise WireError(f"route_result.score: required field {part!r} is missing")
        value = score[part]
        if value is not None and (
            isinstance(value, bool) or not isinstance(value, (int, float))
        ):
            raise WireError(f"route_result.score: {part!r} must be a number or null")
    route = payload["route"]
    if route is not None and not all(
        isinstance(node, int) and not isinstance(node, bool) for node in route
    ):
        raise WireError("route_result: 'route' must be a list of integer node ids")
    has_route = route is not None
    if payload["found"] != has_route:
        raise WireError("route_result: 'found' must mirror the presence of 'route'")
    if (score["objective"] is None) == has_route or (score["budget"] is None) == has_route:
        raise WireError(
            "route_result: score breakdown must be non-null exactly when a route exists"
        )
    if payload["feasible"] != (
        has_route and payload["covers_keywords"] and payload["within_budget"]
    ):
        raise WireError(
            "route_result: 'feasible' must equal found and covers_keywords "
            "and within_budget"
        )
    if "degraded" in payload and not isinstance(payload["degraded"], bool):
        raise WireError("route_result: 'degraded' must be a boolean when present")
    if "epoch" in payload and (
        isinstance(payload["epoch"], bool)
        or not isinstance(payload["epoch"], int)
        or payload["epoch"] < 0
    ):
        raise WireError(
            "route_result: 'epoch' must be a non-negative integer when present"
        )
    if "explain" in payload and not isinstance(payload["explain"], Mapping):
        raise WireError("route_result: 'explain' must be a JSON object when present")
    return dict(payload)


def decode_route_result(payload: Mapping) -> KORResult:
    """Reassemble a :class:`KORResult` from a validated wire document.

    The round-trip preserves everything the differential fingerprint
    observes (feasibility verdicts, route nodes, scores, failure
    reason); search counters come back only when the document carried
    an ``explain`` payload.
    """
    payload = validate_route_result(payload)
    query = KORQuery(
        payload["query"]["source"],
        payload["query"]["target"],
        tuple(payload["query"]["keywords"]),
        float(payload["query"]["budget_limit"]),
    )
    route = None
    if payload["route"] is not None:
        route = Route(
            nodes=tuple(payload["route"]),
            objective_score=float(payload["score"]["objective"]),
            budget_score=float(payload["score"]["budget"]),
        )
    stats = SearchStats()
    explain = payload.get("explain")
    if explain and isinstance(explain.get("search"), Mapping):
        known = {field for field in SearchStats.__dataclass_fields__}
        stats = SearchStats(
            **{k: v for k, v in explain["search"].items() if k in known}
        )
    return KORResult(
        query=query,
        algorithm=payload["algorithm"],
        route=route,
        covers_keywords=payload["covers_keywords"],
        within_budget=payload["within_budget"],
        stats=stats,
        failure_reason=payload["failure_reason"],
        degraded=payload.get("degraded", False),
    )


# ----------------------------------------------------------------------
# envelopes
# ----------------------------------------------------------------------


def encode_error(error: BaseException) -> dict:
    """A per-slot (or top-level) error object."""
    return {"error": {"type": type(error).__name__, "message": str(error)}}


def encode_batch(items: list[dict]) -> dict:
    """Wrap per-slot documents into a ``kor.route_batch.v1`` envelope."""
    return {"schema": ROUTE_BATCH_SCHEMA, "count": len(items), "results": items}
