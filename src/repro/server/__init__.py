"""``repro.server`` — the network front door over the serving tier.

Layers (bottom up):

* :mod:`repro.server.schema` — the versioned wire contract
  (``kor.route_result.v1`` and friends), enforced in both directions;
* :mod:`repro.server.app` — :class:`KORApp`, a framework-free ASGI 3
  application over :class:`~repro.service.frontend.AsyncQueryService`;
* :mod:`repro.server.stdlib` — :class:`StdlibServer`, a zero-dependency
  ``http.server`` host for any ASGI app;
* :mod:`repro.server.client` — tiny in-process and socket clients the
  tests and the load generator share.

:func:`serve` wires the whole stack in one call::

    from repro.server import serve
    server = serve(QueryService(engine), adaptive_target_batch=8)
    print(server.url)  # e.g. http://127.0.0.1:40123
"""

from __future__ import annotations

from repro.server.app import KORApp
from repro.server.client import HTTPResponse, asgi_request, http_request
from repro.server.schema import (
    ROUTE_BATCH_SCHEMA,
    ROUTE_QUERY_SCHEMA,
    ROUTE_RESULT_SCHEMA,
    ROUTE_TOPK_SCHEMA,
    SERVICE_STATS_SCHEMA,
    WireError,
    decode_route_result,
    encode_route_result,
    parse_route_query,
    validate_route_result,
)
from repro.server.stdlib import StdlibServer
from repro.service.frontend import AsyncQueryService

__all__ = [
    "KORApp",
    "StdlibServer",
    "serve",
    "HTTPResponse",
    "asgi_request",
    "http_request",
    "ROUTE_QUERY_SCHEMA",
    "ROUTE_RESULT_SCHEMA",
    "ROUTE_BATCH_SCHEMA",
    "SERVICE_STATS_SCHEMA",
    "ROUTE_TOPK_SCHEMA",
    "WireError",
    "encode_route_result",
    "validate_route_result",
    "decode_route_result",
    "parse_route_query",
]


def serve(
    service,
    host: str = "127.0.0.1",
    port: int = 0,
    topk_engine=None,
    max_pending: int | None = None,
    drain_seconds: float = 5.0,
    **frontend_kwargs,
) -> StdlibServer:
    """One-call stdlib deployment of a sync ``QueryService``-shaped service.

    Wraps *service* in an :class:`AsyncQueryService` (any
    ``frontend_kwargs`` — ``adaptive_target_batch``, ``slo_seconds``,
    ``max_batch``, … — pass through), mounts :class:`KORApp` on a
    :class:`StdlibServer` owning the front-end, starts it on an
    ephemeral port by default, and returns the running server.  Close
    (or use as a context manager) to drain and stop.

    ``max_pending`` caps concurrently admitted work requests (excess is
    shed with 503 + ``Retry-After``); ``drain_seconds`` bounds the
    graceful drain :meth:`StdlibServer.close` performs.
    """
    frontend = AsyncQueryService(service, **frontend_kwargs)
    app_kwargs = {} if max_pending is None else {"max_pending": max_pending}
    app = KORApp(frontend, topk_engine=topk_engine, **app_kwargs)
    return StdlibServer(
        app, host=host, port=port, frontend=frontend, drain_seconds=drain_seconds
    ).start()
