"""``MutableWorld`` — a dynamic graph plus incrementally repaired tables.

Every table in this reproduction is build-once (cell cost tables, border
tables, inverted indexes), but a production router sees traffic shifts
and closures.  This module wraps the whole pre-processed state — graph,
partition, per-cell :class:`~repro.prep.tables.CostTables` and indexes,
the partitioned border tier and the full-graph inverted index — behind
the mutation API of :class:`~repro.graph.mutation.GraphMutator` and
performs **incremental repair**: the partition is the unit of repair, so
a change confined to cell ``C`` recomputes only ``C``'s tables plus the
border tier, never the other cells.

What each operation actually invalidates:

=====================  ==========================================================
edge change in cell C  C's tables + the border tier (cell indexes untouched)
cross-cell edge        the border tier only (no cell contains the edge)
keyword change at v    v's cell's subgraph + index, and the full index —
                       **no** cost table anywhere (costs ignore keywords)
close/open node v      both of the above (edges and keywords change together)
=====================  ==========================================================

The border tier is recomputed *wholesale* on any structural change: its
legs are full-graph shortest paths, so a single re-costed edge can
reroute any border-to-border leg — there is no sound border-local
repair.  That is still the win the partition buys: ``k`` Dijkstras plus
one cell's tables instead of every cell's tables plus partitioning from
scratch (see ``benchmarks/bench_update_latency.py`` for the measured
gap).

The **frozen-partition invariant** makes all of this sound: mutations
never add nodes or novel edges (closures drop base edges, re-opens
restore them), so the node-to-cell assignment, the cell node sets, the
local/global id mappings and the border-node inventory computed over the
base graph stay valid for the life of the world.

Epochs count applied updates, starting at 0 for the freshly built world.
The serving layer maps world epochs onto cache invalidation — see
:meth:`repro.service.sharding.ShardedQueryService.apply_ops`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.graph.digraph import SpatialKeywordGraph
from repro.graph.mutation import GraphDelta, GraphMutator, resolve_ops
from repro.index.inverted import InvertedIndex
from repro.prep.partition import (
    GraphPartition,
    PartitionedCostTables,
    partition_graph,
)
from repro.prep.tables import CostTables

__all__ = ["CellState", "MutableWorld", "WorldUpdate", "default_num_cells"]


def default_num_cells(num_nodes: int) -> int:
    """Default granularity: ``~sqrt(n)/2`` cells of ``~2*sqrt(n)`` nodes."""
    return max(1, min(num_nodes, max(2, int(math.sqrt(num_nodes) / 2))))


@dataclass(frozen=True)
class CellState:
    """One cell's pre-processed serving state.

    ``to_global[local_id] == global_id``; ``to_local`` is the inverse.
    ``subgraph``/``tables``/``index`` are rebuilt (only) when a repair
    touches this cell — compare object identities across updates to see
    what a repair actually recomputed.
    """

    cell: int
    subgraph: SpatialKeywordGraph
    to_local: dict[int, int]
    to_global: np.ndarray
    tables: CostTables
    index: InvertedIndex


@dataclass(frozen=True)
class WorldUpdate:
    """What one applied delta changed (the repair receipt).

    ``repaired_cells`` lists cells whose *cost tables* were rebuilt;
    ``refreshed_cells`` lists cells whose subgraph (and possibly index)
    was refreshed for any reason — always a superset of
    ``repaired_cells``.  ``border_rebuilt`` / ``index_rebuilt`` flag the
    border tier and the full-graph inverted index.  The serving layer
    turns this receipt into minimal per-shard patches for its execution
    backend.
    """

    epoch: int
    delta: GraphDelta
    repaired_cells: tuple[int, ...]
    refreshed_cells: tuple[int, ...]
    border_rebuilt: bool
    index_rebuilt: bool


class MutableWorld:
    """Graph + partitioned tables + indexes with incremental repair.

    Parameters
    ----------
    graph:
        The base spatial-keyword graph.
    num_cells:
        Partition granularity (default :func:`default_num_cells`);
        ignored when ``partition`` is given.
    seed:
        Partition seed (farthest-point sampling is randomised).
    partition:
        A pre-computed partition to adopt — the full-rebuild oracle uses
        this to rebuild a mutated world over the *same* cells (see
        :meth:`rebuilt`).
    """

    def __init__(
        self,
        graph: SpatialKeywordGraph,
        num_cells: int | None = None,
        seed: int = 0,
        partition: GraphPartition | None = None,
    ) -> None:
        if partition is None:
            if num_cells is None:
                num_cells = default_num_cells(graph.num_nodes)
            partition = partition_graph(graph, num_cells, seed=seed)
        self._partition = partition
        self._mutator = GraphMutator(graph)
        self._epoch = 0
        self._cells = tuple(
            self._build_cell(cell, nodes) for cell, nodes in enumerate(partition.cells)
        )
        self._tables = PartitionedCostTables.from_graph(
            graph,
            partition=partition,
            cell_tables=tuple(state.tables for state in self._cells),
            predecessors=True,
        )
        # With one cell the subgraph is the whole graph: its index
        # already covers everything, so the full index is shared rather
        # than built twice (mirroring the sharded service's historical
        # single-cell behaviour).
        self._index = (
            self._cells[0].index
            if len(self._cells) == 1
            else InvertedIndex.from_graph(graph)
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> SpatialKeywordGraph:
        """The current (latest-update-applied) graph."""
        return self._mutator.graph

    @property
    def partition(self) -> GraphPartition:
        """The frozen node-to-cell assignment (the unit of repair)."""
        return self._partition

    @property
    def cells(self) -> tuple[CellState, ...]:
        """Per-cell serving state, in cell order."""
        return self._cells

    @property
    def num_cells(self) -> int:
        """Number of partition cells."""
        return len(self._cells)

    @property
    def tables(self) -> PartitionedCostTables:
        """The cross-cell tier: cell tables + border-to-border tables."""
        return self._tables

    @property
    def index(self) -> InvertedIndex:
        """The full-graph inverted index."""
        return self._index

    @property
    def epoch(self) -> int:
        """Number of updates applied since construction."""
        return self._epoch

    @property
    def closed_nodes(self) -> frozenset[int]:
        """Nodes currently closed."""
        return self._mutator.closed_nodes

    def rebuilt(self) -> "MutableWorld":
        """A from-scratch world over the current graph and same partition.

        This is the differential oracle's baseline: every table and
        index rebuilt with zero reuse, over exactly the topology the
        incremental repairs produced.  (Closure history is not carried
        over — the rebuilt world sees closed nodes as plain isolated
        nodes, which is all the tables ever see either.)
        """
        return MutableWorld(self.graph, partition=self._partition)

    # ------------------------------------------------------------------
    # mutation API
    # ------------------------------------------------------------------
    def update_edge_cost(
        self,
        u: int,
        v: int,
        objective: float | None = None,
        budget: float | None = None,
    ) -> WorldUpdate:
        """Re-cost edge ``(u, v)`` and repair the affected tables."""
        return self._apply(
            self._mutator.update_edge_cost(u, v, objective=objective, budget=budget)
        )

    def close_node(self, node: int) -> WorldUpdate:
        """Take *node* out of service (edges and keywords stripped)."""
        return self._apply(self._mutator.close_node(node))

    def open_node(self, node: int) -> WorldUpdate:
        """Restore a closed node's latest edges and keywords."""
        return self._apply(self._mutator.open_node(node))

    def update_keywords(self, node: int, keywords: Iterable[str]) -> WorldUpdate:
        """Replace *node*'s keyword set and refresh the indexes."""
        return self._apply(self._mutator.update_keywords(node, keywords))

    def apply_ops(self, ops: Sequence[Mapping[str, object]]) -> WorldUpdate:
        """Apply a batch of wire-shaped operations as **one** update.

        The ops resolve sequentially (each validated against its
        predecessors' effects) but repair runs once over the merged
        delta — one epoch bump, one border-tier recompute, however many
        ops arrived.
        """
        return self._apply(resolve_ops(self._mutator, ops))

    # ------------------------------------------------------------------
    # repair
    # ------------------------------------------------------------------
    def _build_cell(self, cell: int, nodes: np.ndarray) -> CellState:
        graph = self.graph
        subgraph, to_local = graph.induced_subgraph([int(v) for v in nodes])
        return CellState(
            cell=cell,
            subgraph=subgraph,
            to_local=to_local,
            to_global=np.array(sorted(to_local), dtype=np.int64),
            tables=CostTables.from_graph(subgraph, predecessors=True),
            index=InvertedIndex.from_graph(subgraph),
        )

    def _apply(self, delta: GraphDelta) -> WorldUpdate:
        # The mutator already advanced self.graph; classify the damage.
        cell_of = self._partition.cell_of
        repair: set[int] = set()  # cells whose cost tables are stale
        refresh: set[int] = set()  # cells whose subgraph/index are stale
        for u, v, _obj, _bud in delta.set_edges:
            if int(cell_of[u]) == int(cell_of[v]):
                repair.add(int(cell_of[u]))
        for u, v in delta.drop_edges:
            if int(cell_of[u]) == int(cell_of[v]):
                repair.add(int(cell_of[u]))
        for node, _words in delta.set_keywords:
            refresh.add(int(cell_of[node]))
        refresh |= repair

        graph = self.graph
        cells = list(self._cells)
        for cell in sorted(refresh):
            old = cells[cell]
            subgraph, _to_local = graph.induced_subgraph(
                [int(v) for v in old.to_global]
            )
            cells[cell] = CellState(
                cell=cell,
                subgraph=subgraph,
                to_local=old.to_local,
                to_global=old.to_global,
                # Edges unchanged -> the old tables still describe the new
                # subgraph (same nodes, same edges); keywords unchanged ->
                # the old postings still describe it.
                tables=(
                    CostTables.from_graph(subgraph, predecessors=True)
                    if cell in repair
                    else old.tables
                ),
                index=(
                    InvertedIndex.from_graph(subgraph)
                    if any(int(cell_of[node]) == cell for node, _ in delta.set_keywords)
                    else old.index
                ),
            )
        self._cells = tuple(cells)

        border_rebuilt = delta.structural
        if border_rebuilt:
            # Any edge change can reroute any border-to-border leg (the
            # legs are full-graph shortest paths), so the whole tier
            # recomputes — but over *reused* cell tables for every cell
            # outside the repair set.
            self._tables = PartitionedCostTables.from_graph(
                graph,
                partition=self._partition,
                cell_tables=tuple(state.tables for state in self._cells),
                predecessors=True,
            )

        index_rebuilt = bool(delta.set_keywords)
        if index_rebuilt:
            self._index = (
                self._cells[0].index
                if len(self._cells) == 1
                else InvertedIndex.from_graph(graph)
            )

        self._epoch += 1
        return WorldUpdate(
            epoch=self._epoch,
            delta=delta,
            repaired_cells=tuple(sorted(repair)),
            refreshed_cells=tuple(sorted(refresh)),
            border_rebuilt=border_rebuilt,
            index_rebuilt=index_rebuilt,
        )
