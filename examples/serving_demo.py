#!/usr/bin/env python
"""Serving demo: batched, cached, concurrent KOR over a Flickr-like city.

Simulates the workload the paper's query logs motivate — a stream of
trip-planning queries with heavy keyword and whole-query repetition —
and serves it three ways:

1. the baseline: one ``KOREngine.run`` per query, no reuse;
2. a cold ``QueryService`` batch: in-batch dedup, one shared
   candidate-set pass over the inverted index, thread-pool fan-out;
3. the same stream again on the warm cache.

Run:  PYTHONPATH=src python examples/serving_demo.py
"""

import random
import time

from repro.core.engine import KOREngine
from repro.datasets.flickr import FlickrConfig, build_flickr_graph
from repro.datasets.photos import PhotoStreamConfig
from repro.datasets.queries import QuerySetConfig, generate_query_set
from repro.service import QueryService


def build_stream(engine, repeats=8, seed=7):
    """A repeat-heavy query stream over the dataset's own vocabulary."""
    config = QuerySetConfig(num_queries=10, num_keywords=3, budget_limit=5.0, seed=seed)
    base = generate_query_set(
        engine.graph, engine.index, config, tables=engine.tables
    )
    stream = base * repeats
    random.Random(seed).shuffle(stream)
    return stream


def main():
    config = FlickrConfig(
        photo_stream=PhotoStreamConfig(num_users=150, num_hotspots=60, seed=3)
    )
    dataset = build_flickr_graph(config)
    graph = dataset.graph
    print(f"flickr-like city: {graph.num_nodes} locations, {graph.num_edges} arcs")

    engine = KOREngine(graph)
    stream = build_stream(engine)
    print(f"query stream: {len(stream)} queries ({len(set(stream))} distinct)\n")

    begin = time.perf_counter()
    for query in stream:
        engine.run(query, algorithm="bucketbound")
    sequential = time.perf_counter() - begin
    print(f"engine, sequential:  {sequential * 1000:8.1f} ms")

    service = QueryService(engine, cache_capacity=1024)
    begin = time.perf_counter()
    results = service.run_batch(stream, algorithm="bucketbound", workers=4)
    cold = time.perf_counter() - begin
    print(f"service, cold batch: {cold * 1000:8.1f} ms")

    begin = time.perf_counter()
    service.run_batch(stream, algorithm="bucketbound", workers=4)
    warm = time.perf_counter() - begin
    print(f"service, warm batch: {warm * 1000:8.1f} ms "
          f"({sequential / warm:.0f}x the sequential loop)\n")

    print("serving metrics:", service.snapshot().describe())

    feasible = [r for r in results if r.feasible]
    if feasible:
        best = min(feasible, key=lambda r: r.objective_score)
        print("\nsample answer (best objective in the batch):")
        print(" ", best.route.describe(graph))


if __name__ == "__main__":
    main()
