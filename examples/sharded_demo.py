#!/usr/bin/env python
"""Sharded serving demo: partition-routed KOR over a Flickr-like city.

Walks through the full ShardedQueryService story:

1. partition the city graph into cells and build one engine per cell,
   plus the cross-cell BorderEngine that assembles full-graph answers
   from the cells' own tables and a border-to-border tier — no flat
   global engine anywhere;
2. show the routing rule at work — which queries get a cell-local
   attempt, which go straight to the cross-cell assembly, and why;
3. run the same batch on all three execution backends (serial, thread
   pool, process pool) and compare wall clock;
4. read the per-shard task counters and scatter-merge wins off the
   service stats.

Run:  PYTHONPATH=src python examples/sharded_demo.py
"""

import time
from collections import Counter

from repro.datasets.flickr import FlickrConfig, build_flickr_graph
from repro.datasets.photos import PhotoStreamConfig
from repro.datasets.queries import QuerySetConfig, generate_query_set
from repro.prep.partition import PartitionedCostTables
from repro.service import (
    ProcessBackend,
    SerialBackend,
    ShardedQueryService,
    ThreadBackend,
)


def build_city():
    config = FlickrConfig(
        photo_stream=PhotoStreamConfig(num_users=150, num_hotspots=60, seed=3)
    )
    return build_flickr_graph(config).graph


def build_batch(service, count=30, seed=11):
    """Distinct queries drawn from the city's own vocabulary."""
    engine = service.border_engine  # full-graph view, partitioned tables
    config = QuerySetConfig(
        num_queries=count, num_keywords=3, budget_limit=5.0, seed=seed
    )
    return generate_query_set(engine.graph, engine.index, config, tables=engine.tables)


def main():
    graph = build_city()
    print(f"flickr-like city: {graph.num_nodes} locations, {graph.num_edges} arcs")

    service = ShardedQueryService(graph, backend=SerialBackend(), cache_capacity=0)
    sizes = [shard.num_nodes for shard in service.shards]
    flat_mb = PartitionedCostTables.flat_memory_bytes(graph.num_nodes) / 1e6
    borders = len(service.border_engine.partition.border_nodes)
    print(
        f"partitioned into {service.num_shards} cells of {min(sizes)}-{max(sizes)} "
        f"nodes + a {borders}-node border tier "
        f"({service.memory_bytes() / 1e6:.1f} MB resident tables; a flat "
        f"service's score tables alone would be {flat_mb:.1f} MB)\n"
    )

    batch = build_batch(service)
    plans = Counter(service.plan_of(query) for query in batch)
    print(f"routing {len(batch)} queries: ", dict(plans))
    print(
        "  'local' races the owning cell's engine against the cross-cell\n"
        "  BorderEngine in one wave and keeps the better objective score;\n"
        "  everything else runs on the BorderEngine alone.  Border-table\n"
        "  assembly is exact, so feasibility always matches a flat engine\n"
        "  for the complete algorithms.\n"
    )

    backends = (
        ("serial ", SerialBackend()),
        ("threads", ThreadBackend(workers=4)),
        ("procs  ", ProcessBackend(workers=4)),
    )
    for name, backend in backends:
        svc = ShardedQueryService(graph, backend=backend, cache_capacity=0)
        svc.run_batch(batch[:4], algorithm="bucketbound")  # warm pools/engines
        begin = time.perf_counter()
        results = svc.run_batch(batch, algorithm="bucketbound", workers=4)
        wall = time.perf_counter() - begin
        feasible = sum(result.feasible for result in results)
        print(
            f"{name} backend: {1000.0 * wall:7.1f} ms "
            f"({len(batch) / wall:6.0f} qps, {feasible}/{len(batch)} feasible)"
        )
        backend.close()
    print("\n(on a single-CPU box the pools cannot beat serial — the point of\n"
          " the process pool is multi-core batch fan-out past the GIL)\n")

    service.run_batch(batch, algorithm="bucketbound")
    snapshot = service.snapshot()
    print("per-shard task counters:")
    for shard, tasks in sorted(snapshot.shard_tasks.items()):
        print(f"  {shard:18s} {tasks:4d} tasks")
    if snapshot.merge_wins:
        wins = ", ".join(
            f"{winner}={count}" for winner, count in sorted(snapshot.merge_wins.items())
        )
        print(f"scatter-merge wins: {wins}")
    print("\nserving metrics:", snapshot.describe())

    best = min(
        (r for r in service.run_batch(batch, algorithm="bucketbound") if r.feasible),
        key=lambda r: r.objective_score,
        default=None,
    )
    if best is not None:
        print("\nsample answer (best objective in the batch):")
        print(" ", best.route.describe(graph))


if __name__ == "__main__":
    main()
