#!/usr/bin/env python
"""Quickstart: build a tiny city graph and answer one KOR query.

The scenario is the paper's introduction: "find the most popular route to
and from my hotel such that it passes by shopping mall, restaurant, and
pub, and the time spent on the road is within 4 hours."

Run:  python examples/quickstart.py
"""

from repro.core.engine import KOREngine
from repro.graph.builder import GraphBuilder


def build_city():
    """Eight locations; edge objective = unpopularity, budget = hours."""
    builder = GraphBuilder()
    hotel = builder.add_node(keywords=["hotel"], name="hotel")
    mall = builder.add_node(keywords=["shopping mall"], name="mall")
    diner = builder.add_node(keywords=["restaurant"], name="diner")
    pub = builder.add_node(keywords=["pub"], name="pub")
    park = builder.add_node(keywords=["park"], name="park")
    square = builder.add_node(keywords=[], name="square")

    # add_bidirectional_edge(u, v, objective, budget): objective is
    # log(1/popularity) — smaller is more popular; budget is hours.
    builder.add_bidirectional_edge(hotel, square, 0.5, 0.4)
    builder.add_bidirectional_edge(square, mall, 0.6, 0.5)
    builder.add_bidirectional_edge(square, diner, 1.2, 0.3)
    builder.add_bidirectional_edge(mall, diner, 0.8, 0.6)
    builder.add_bidirectional_edge(diner, pub, 0.7, 0.5)
    builder.add_bidirectional_edge(pub, park, 1.5, 0.7)
    builder.add_bidirectional_edge(park, hotel, 0.9, 0.8)
    builder.add_bidirectional_edge(pub, hotel, 2.5, 1.0)
    builder.add_bidirectional_edge(mall, park, 2.0, 1.2)
    return builder.build(), hotel


def main():
    graph, hotel = build_city()
    print(f"city graph: {graph.num_nodes} locations, {graph.num_edges} arcs")

    # Pre-processing (all-pairs tau/sigma tables + inverted index) happens
    # once per graph; afterwards queries are cheap.
    engine = KOREngine(graph)

    result = engine.query(
        source=hotel,
        target=hotel,
        keywords=["shopping mall", "restaurant", "pub"],
        budget_limit=4.0,  # hours
        algorithm="osscaling",
        epsilon=0.5,
    )

    if not result.feasible:
        print(f"no feasible route: {result.failure_reason}")
        return

    print("\nmost popular route covering mall, restaurant and pub within 4h:")
    print(" ", result.route.describe(graph))
    print(f"  covers: {sorted(result.route.covered_keyword_strings(graph))}")

    # Tighten the budget and watch the route change (cf. Figures 20-21).
    tighter = engine.query(hotel, hotel, ["shopping mall", "restaurant", "pub"], 2.5)
    if tighter.feasible:
        print("\nwith only 2.5h the best route becomes:")
        print(" ", tighter.route.describe(graph))
    else:
        print(f"\nwith only 2.5h: {tighter.failure_reason}")


if __name__ == "__main__":
    main()
