#!/usr/bin/env python
"""Compare all four KOR algorithms on one workload (a mini Figure 4/10).

Runs OSScaling, BucketBound, Greedy-1 and Greedy-2 over the same query
set on a synthetic city and prints the runtime / quality / failure table
the paper's evaluation revolves around.

Run:  python examples/compare_algorithms.py
"""

from repro.bench.harness import failure_percentage, relative_ratio, run_query_set
from repro.core.engine import KOREngine
from repro.datasets.flickr import FlickrConfig, build_flickr_graph
from repro.datasets.photos import PhotoStreamConfig
from repro.datasets.queries import QuerySetConfig, generate_query_set


def main():
    dataset = build_flickr_graph(
        FlickrConfig(photo_stream=PhotoStreamConfig(num_users=250, num_hotspots=100, seed=1))
    )
    graph = dataset.graph
    print(dataset.summary())
    engine = KOREngine(graph)

    config = QuerySetConfig(
        num_queries=10,
        num_keywords=4,
        budget_limit=6.0,
        min_document_frequency=max(2, graph.num_nodes // 50),
        seed=20,
    )
    queries = generate_query_set(graph, engine.index, config, tables=engine.tables)
    print(f"{len(queries)} queries, 4 keywords each, Delta = 6 km\n")

    # The accuracy base, as in the paper: OSScaling at eps = 0.1.
    base = run_query_set(engine, queries, "osscaling", epsilon=0.1)

    rows = []
    for label, algorithm, params in (
        ("OSScaling (eps=0.5)", "osscaling", {"epsilon": 0.5}),
        ("BucketBound (beta=1.2)", "bucketbound", {"epsilon": 0.5, "beta": 1.2}),
        ("Greedy-2", "greedy2", {"alpha": 0.5}),
        ("Greedy-1", "greedy", {"alpha": 0.5}),
    ):
        summary = run_query_set(engine, queries, algorithm, **params)
        rows.append(
            (
                label,
                summary.mean_runtime_ms,
                relative_ratio(summary, base),
                failure_percentage(summary, base),
            )
        )

    header = f"{'algorithm':<24} {'ms/query':>9} {'rel.ratio':>10} {'failure %':>10}"
    print(header)
    print("-" * len(header))
    for label, ms, ratio, failures in rows:
        ratio_text = f"{ratio:.3f}" if ratio == ratio else "-"
        print(f"{label:<24} {ms:>9.1f} {ratio_text:>10} {failures:>10.0f}")

    print(
        "\nexpected shape (paper Figs 4, 10, 13): OSScaling slowest/most accurate,\n"
        "BucketBound close in quality but faster, greedies fastest but less\n"
        "accurate and sometimes infeasible."
    )


if __name__ == "__main__":
    main()
