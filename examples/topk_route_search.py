#!/usr/bin/env python
"""KkR: keyword-aware top-k route search (paper Section 3.5).

A trip planner rarely wants a single take-it-or-leave-it answer; the KkR
extension returns the k best feasible routes so the user can choose.
This example asks for the top-5 routes on the Figure-1 graph and on a
synthetic city, with both extended algorithms.

Run:  python examples/topk_route_search.py
"""

from repro.core.engine import KOREngine
from repro.datasets.flickr import FlickrConfig, build_flickr_graph
from repro.datasets.photos import PhotoStreamConfig
from repro.graph.generators import figure_1_graph


def show(graph, result):
    if not result.routes:
        print("  no feasible route")
        return
    for rank, route in enumerate(result.routes, start=1):
        hops = " -> ".join(graph.name_of(v) for v in route.nodes)
        print(f"  #{rank}: OS={route.objective_score:.2f} BS={route.budget_score:.2f}  {hops}")


def main():
    print("=== Figure-1 graph, Q = <v0, v7, {t1, t2}, 10>, k = 5 ===")
    graph = figure_1_graph()
    engine = KOREngine(graph)
    for algorithm in ("osscaling", "bucketbound"):
        print(f"\n{algorithm} top-5:")
        result = engine.top_k(0, 7, ["t1", "t2"], 10.0, k=5, algorithm=algorithm)
        show(graph, result)

    print("\n=== synthetic city, 3 keywords, k = 3 ===")
    dataset = build_flickr_graph(
        FlickrConfig(photo_stream=PhotoStreamConfig(num_users=200, num_hotspots=80, seed=3))
    )
    city = dataset.graph
    print(" ", dataset.summary())
    city_engine = KOREngine(city)

    # Use three reasonably common tags so the query is satisfiable.
    vocabulary = city_engine.index.vocabulary
    by_frequency = sorted(
        (kid for kid in range(len(city.keyword_table))
         if vocabulary.document_frequency(kid) > 0),
        key=vocabulary.document_frequency,
        reverse=True,
    )
    keywords = [city.keyword_table.word_of(kid) for kid in by_frequency[2:5]]
    print(f"  keywords: {keywords}")

    result = city_engine.top_k(
        0, city.num_nodes // 2, keywords, 8.0, k=3, algorithm="bucketbound"
    )
    print("\nbucketbound top-3:")
    show(city, result)


if __name__ == "__main__":
    main()
