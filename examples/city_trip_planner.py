#!/usr/bin/env python
"""The paper's qualitative example (Figures 20-21) on a synthetic city.

Section 4.2.7 fixes a start (Dewitt Clinton Park) and a destination
(United Nations Headquarters), asks for {jazz, imax, vegetation,
cappuccino}, and shows how the returned most-popular route changes when
the distance budget drops from 9 km to 6 km.

This example rebuilds that experiment end to end on the synthetic
Flickr-like dataset: generate photos, cluster them into locations,
extract trips, pick four keywords and two far-apart locations, then
compare the Delta = 9 km and Delta = 6 km answers.

Run:  python examples/city_trip_planner.py
"""

import math

import numpy as np

from repro.core.engine import KOREngine
from repro.datasets.flickr import FlickrConfig, build_flickr_graph
from repro.datasets.photos import PhotoStreamConfig


def pick_endpoints(graph, tables, rng):
    """Two locations a realistic walk apart (1.5 - 3 km of cheapest route)."""
    n = graph.num_nodes
    for _ in range(500):
        source, target = int(rng.integers(n)), int(rng.integers(n))
        if source == target:
            continue
        direct = tables.bs_sigma[source, target]
        if 1.5 <= direct <= 3.0:
            return source, target
    raise SystemExit("could not find endpoints at a walkable distance")


def pick_keywords(graph, index, rng, count=4):
    """Popular-ish tags, like the paper's jazz/imax/vegetation/cappuccino."""
    table = graph.keyword_table
    candidates = [
        kid
        for kid in range(len(table))
        if 0.03 * graph.num_nodes <= index.document_frequency(kid) <= 0.3 * graph.num_nodes
    ]
    chosen = rng.choice(len(candidates), size=count, replace=False)
    return tuple(table.word_of(candidates[int(i)]) for i in chosen)


def describe(graph, route):
    hops = " -> ".join(graph.name_of(v) for v in route.nodes)
    popularity = math.exp(-route.objective_score)
    return (
        f"  {hops}\n"
        f"  length {route.budget_score:.2f} km over {route.num_edges} legs, "
        f"popularity score {popularity:.3g} (OS = {route.objective_score:.2f})"
    )


def main():
    rng = np.random.default_rng(2012)  # the paper's vintage
    print("building the synthetic city (photos -> locations -> trips)...")
    dataset = build_flickr_graph(
        FlickrConfig(photo_stream=PhotoStreamConfig(num_users=300, num_hotspots=120, seed=7))
    )
    graph = dataset.graph
    print(" ", dataset.summary())

    engine = KOREngine(graph)
    source, target = pick_endpoints(graph, engine.tables, rng)
    keywords = pick_keywords(graph, engine.index, rng)
    print(f"\ntrip: {graph.name_of(source)} -> {graph.name_of(target)}")
    print(f"must pass by: {', '.join(keywords)}")

    for delta in (9.0, 6.0):
        result = engine.query(
            source, target, keywords, delta, algorithm="osscaling", epsilon=0.5
        )
        print(f"\nDelta = {delta:.0f} km:")
        if result.feasible:
            print(describe(graph, result.route))
        else:
            print(f"  no feasible route ({result.failure_reason})")

    # The paper's observation: the 9 km winner is pruned at 6 km, and a
    # less popular but shorter route takes its place.


if __name__ == "__main__":
    main()
