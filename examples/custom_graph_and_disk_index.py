#!/usr/bin/env python
"""Bring your own graph: networkx import, persistence, disk index.

Shows the integration surface a downstream user cares about:

1. build a keyword-labelled digraph in networkx and convert it;
2. save/load the graph (JSON) and its pre-processed tables (NPZ);
3. swap the in-memory inverted file for the paper's disk-resident
   B+-tree index without touching query code.

Run:  python examples/custom_graph_and_disk_index.py
"""

import tempfile
from pathlib import Path

import networkx as nx

from repro.core.engine import KOREngine
from repro.graph.interop import from_networkx
from repro.graph.io import load_json, save_json
from repro.index.diskindex import DiskInvertedIndex
from repro.prep.tables import CostTables


def build_networkx_city() -> nx.DiGraph:
    city = nx.DiGraph()
    places = {
        "station": ["transit"],
        "old town": ["cafe", "gallery"],
        "market": ["food", "cafe"],
        "riverside": ["park"],
        "museum": ["gallery", "imax"],
        "brewery": ["pub", "food"],
    }
    for name, keywords in places.items():
        city.add_node(name, keywords=keywords)
    legs = [
        ("station", "old town", 0.8, 0.6),
        ("old town", "market", 0.5, 0.4),
        ("market", "riverside", 1.1, 0.7),
        ("riverside", "museum", 0.9, 0.8),
        ("museum", "brewery", 0.7, 0.5),
        ("brewery", "station", 1.4, 1.0),
        ("old town", "museum", 1.6, 1.1),
        ("market", "brewery", 1.0, 0.9),
    ]
    for u, v, objective, budget in legs:
        city.add_edge(u, v, objective=objective, budget=budget)
        city.add_edge(v, u, objective=objective, budget=budget)
    return city


def main():
    graph, mapping = from_networkx(build_networkx_city())
    print(f"imported: {graph.num_nodes} nodes, {graph.num_edges} arcs")

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)

        # Persist the graph and its pre-processing, as a deployment would.
        save_json(graph, tmp / "city.json")
        tables = CostTables.from_graph(graph)
        tables.save(tmp / "city-tables.npz")

        reloaded = load_json(tmp / "city.json")
        reloaded_tables = CostTables.load(tmp / "city-tables.npz")
        print("persisted and reloaded graph + tables")

        # The paper's disk-resident inverted file as the index backend.
        disk_index = DiskInvertedIndex.build(reloaded, tmp / "city-index.pages")
        engine = KOREngine(reloaded, tables=reloaded_tables, index=disk_index)

        source = reloaded.index_of("station")
        result = engine.query(
            source,
            source,
            ["cafe", "gallery", "pub"],
            budget_limit=5.0,
            algorithm="bucketbound",
        )
        if result.feasible:
            print("\nround trip from the station covering cafe, gallery, pub:")
            print(" ", result.route.describe(reloaded))
        else:
            print(f"\nno feasible route: {result.failure_reason}")

        stats = disk_index.buffer_pool.stats
        print(
            f"\ndisk index served {stats.hits + stats.misses} page requests "
            f"({100 * stats.hit_rate:.0f}% from the buffer pool)"
        )
        disk_index.close()


if __name__ == "__main__":
    main()
