#!/usr/bin/env python
"""Async serving demo: concurrent clients over the asyncio front-end.

The sync services are batch-shaped; a server faces many independent
clients, each holding one query.  ``AsyncQueryService`` bridges the two:

1. every client ``await``s its own query — no batching in client code;
2. duplicate in-flight queries coalesce into one flight (single-flight
   on the result cache's canonical key);
3. concurrent distinct queries aggregate into one micro-batched
   ``execute`` wave, which reuses the whole sync tier: result cache,
   in-batch dedup, shared candidate sets, backend fan-out;
4. per-request timeouts detach one impatient client without disturbing
   the flight everyone else is on.

Run:  PYTHONPATH=src python examples/async_demo.py
"""

import asyncio
import random
import time

from repro.core.engine import KOREngine
from repro.datasets.flickr import FlickrConfig, build_flickr_graph
from repro.datasets.photos import PhotoStreamConfig
from repro.datasets.queries import QuerySetConfig, generate_query_set
from repro.service import AsyncQueryService, QueryService, ShardedQueryService


def build_city():
    config = FlickrConfig(
        photo_stream=PhotoStreamConfig(num_users=80, num_hotspots=36, seed=3)
    )
    return build_flickr_graph(config).graph


def client_stream(engine, clients=40, seed=7):
    """One query per client, with heavy repetition (popular trips)."""
    config = QuerySetConfig(num_queries=8, num_keywords=3, budget_limit=5.0, seed=seed)
    base = generate_query_set(engine.graph, engine.index, config, tables=engine.tables)
    rng = random.Random(seed)
    return [rng.choice(base) for _ in range(clients)]


async def serve_concurrently(front, queries):
    """Every client awaits its own query at once (a request burst)."""

    async def one_client(query):
        return await front.submit(query, algorithm="bucketbound")

    return await asyncio.gather(*(one_client(query) for query in queries))


async def main_async():
    graph = build_city()
    print(f"flickr-like city: {graph.num_nodes} locations, {graph.num_edges} arcs")

    engine = KOREngine(graph)
    queries = client_stream(engine)
    print(f"request burst: {len(queries)} clients, {len(set(queries))} distinct trips\n")

    # -- flat service behind the async front-end -----------------------
    service = QueryService(engine, cache_capacity=1024)
    async with AsyncQueryService(service) as front:
        begin = time.perf_counter()
        results = await serve_concurrently(front, queries)
        wall = time.perf_counter() - begin
        scheduling = front.scheduling_stats()
        print(f"async front-end:     {wall * 1000:8.1f} ms for the whole burst")
        print(
            f"  collapse: {scheduling['requests']} requests -> "
            f"{scheduling['flights']} flights -> {scheduling['waves']} execute wave(s)"
        )
        print("  front-end metrics:", front.snapshot().describe())

    # -- the same burst, sequentially, for scale -----------------------
    sequential_service = QueryService(engine, cache_capacity=1024)
    begin = time.perf_counter()
    for query in queries:
        sequential_service.submit(query, algorithm="bucketbound")
    sequential = time.perf_counter() - begin
    print(f"sync, one-by-one:    {sequential * 1000:8.1f} ms\n")

    # -- per-request timeout: one impatient client ---------------------
    demo_query = next(
        (query for query, result in zip(queries, results) if result.feasible),
        queries[0],
    )
    impatient_service = QueryService(engine, cache_capacity=1024)
    async with AsyncQueryService(impatient_service, window_seconds=0.05) as front:
        patient = asyncio.ensure_future(
            front.submit(demo_query, algorithm="bucketbound")
        )
        try:
            await front.submit(demo_query, algorithm="bucketbound", timeout=1e-6)
        except asyncio.TimeoutError:
            print("impatient client timed out; the shared flight kept flying:")
        result = await patient
        print(f"  patient client got OS={result.objective_score:.2f} "
              f"(timeouts recorded: {front.snapshot().timeouts})\n")

    # -- sharded service: same front-end, partition-routed back end ----
    sharded = ShardedQueryService(graph, num_cells=4, cache_capacity=1024)
    async with AsyncQueryService(sharded, close_service=True) as front:
        sharded_results = await serve_concurrently(front, queries)
        plans = sharded.snapshot().merge_wins
        print(f"sharded async burst: {len(sharded_results)} answers; merge wins: {plans}")

    matching = sum(
        1
        for flat, routed in zip(results, sharded_results)
        if flat.feasible == routed.feasible
    )
    print(f"flat vs sharded feasibility agreement: {matching}/{len(results)}")

    feasible = [r for r in results if r.feasible]
    if feasible:
        best = min(feasible, key=lambda r: r.objective_score)
        print("\nsample answer (best objective in the burst):")
        print(" ", best.route.describe(graph))


def main():
    asyncio.run(main_async())


if __name__ == "__main__":
    main()
