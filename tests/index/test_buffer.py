"""Tests for the LRU buffer pool (repro.index.buffer)."""


from repro.index.buffer import BufferPool
from repro.index.pages import PageStore


def make_pool(capacity=2, page_size=128):
    store = PageStore(page_size=page_size)
    return BufferPool(store, capacity=capacity), store


class TestCaching:
    def test_read_through(self):
        pool, _store = make_pool()
        page = pool.allocate()
        pool.put(page, b"data")
        assert pool.get(page) == b"data"

    def test_repeated_get_hits_cache(self):
        pool, _store = make_pool()
        page = pool.allocate()
        pool.put(page, b"x")
        pool.get(page)
        before = pool.stats.hits
        pool.get(page)
        assert pool.stats.hits == before + 1

    def test_capacity_bound_evicts_lru(self):
        pool, _store = make_pool(capacity=2)
        pages = [pool.allocate() for _ in range(3)]
        for i, page in enumerate(pages):
            pool.put(page, bytes([i]))
        pool.flush()
        pool.get(pages[0])
        pool.get(pages[1])
        pool.get(pages[2])  # evicts pages[0]
        misses_before = pool.stats.misses
        pool.get(pages[0])  # must re-read from the store
        assert pool.stats.misses == misses_before + 1

    def test_hit_rate_statistics(self):
        pool, _store = make_pool()
        page = pool.allocate()
        pool.put(page, b"y")
        for _ in range(9):
            pool.get(page)
        assert 0.0 <= pool.stats.hit_rate <= 1.0


class TestWriteBack:
    def test_dirty_page_flushed_to_store(self):
        pool, store = make_pool()
        page = pool.allocate()
        pool.put(page, b"dirty")
        pool.flush()
        assert store.read_page(page) == b"dirty"

    def test_eviction_writes_back_dirty_pages(self):
        pool, store = make_pool(capacity=1)
        a = pool.allocate()
        b = pool.allocate()
        pool.put(a, b"first")
        pool.put(b, b"second")  # evicts a, which must be written back
        assert store.read_page(a) == b"first"

    def test_writebacks_counted(self):
        pool, _store = make_pool(capacity=1)
        a, b = pool.allocate(), pool.allocate()
        pool.put(a, b"one")
        pool.put(b, b"two")
        pool.flush()
        assert pool.stats.writebacks >= 1
