"""Tests for the paged B+-tree (repro.index.btree)."""


from repro.index.btree import BPlusTree
from repro.index.buffer import BufferPool
from repro.index.pages import PageStore


def make_tree(page_size=256, capacity=16) -> BPlusTree:
    return BPlusTree(BufferPool(PageStore(page_size=page_size), capacity=capacity))


class TestBasicOperations:
    def test_get_missing_key_returns_none(self):
        assert make_tree().get(b"nope") is None

    def test_insert_then_get(self):
        tree = make_tree()
        tree.insert(b"key", b"value")
        assert tree.get(b"key") == b"value"

    def test_insert_overwrites(self):
        tree = make_tree()
        tree.insert(b"k", b"v1")
        tree.insert(b"k", b"v2")
        assert tree.get(b"k") == b"v2"

    def test_contains(self):
        tree = make_tree()
        tree.insert(b"here", b"x")
        assert b"here" in tree
        assert b"gone" not in tree

    def test_delete_existing(self):
        tree = make_tree()
        tree.insert(b"k", b"v")
        assert tree.delete(b"k") is True
        assert tree.get(b"k") is None

    def test_delete_missing_returns_false(self):
        assert make_tree().delete(b"ghost") is False


class TestSplitsAndScale:
    def test_many_keys_force_splits(self):
        tree = make_tree(page_size=128)
        items = {f"key-{i:04d}".encode(): f"val-{i}".encode() for i in range(300)}
        for key, value in items.items():
            tree.insert(key, value)
        assert tree.depth() > 1
        for key, value in items.items():
            assert tree.get(key) == value

    def test_reverse_insertion_order(self):
        tree = make_tree(page_size=128)
        for i in reversed(range(200)):
            tree.insert(f"{i:05d}".encode(), str(i).encode())
        assert [int(k) for k, _v in tree.items()] == list(range(200))

    def test_items_sorted(self):
        tree = make_tree()
        for key in (b"m", b"a", b"z", b"c"):
            tree.insert(key, key)
        assert [k for k, _v in tree.items()] == [b"a", b"c", b"m", b"z"]


class TestRangeScan:
    def test_range_inclusive_start_exclusive_end(self):
        tree = make_tree()
        for i in range(10):
            tree.insert(bytes([i]), bytes([i]))
        keys = [k for k, _v in tree.range(bytes([3]), bytes([7]))]
        assert keys == [bytes([3]), bytes([4]), bytes([5]), bytes([6])]

    def test_open_ended_ranges(self):
        tree = make_tree()
        for key in (b"a", b"b", b"c"):
            tree.insert(key, key)
        assert [k for k, _v in tree.range(None, b"b")] == [b"a"]
        assert [k for k, _v in tree.range(b"b", None)] == [b"b", b"c"]

    def test_empty_tree_scans(self):
        assert list(make_tree().items()) == []


class TestPersistence:
    def test_flush_and_reopen(self, tmp_path):
        path = tmp_path / "tree.pages"
        store = PageStore(path, page_size=256)
        tree = BPlusTree(BufferPool(store, capacity=8))
        for i in range(50):
            tree.insert(f"{i:03d}".encode(), str(i * i).encode())
        tree.flush()
        store.close()

        reopened_store = PageStore.open(path, page_size=256)
        reopened = BPlusTree(BufferPool(reopened_store, capacity=8))
        for i in range(50):
            assert reopened.get(f"{i:03d}".encode()) == str(i * i).encode()
