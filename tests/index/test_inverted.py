"""Tests for the in-memory inverted index (repro.index.inverted)."""

import numpy as np
import pytest

from repro.graph.generators import figure_1_graph
from repro.index.inverted import InvertedIndex


@pytest.fixture(scope="module")
def index():
    return InvertedIndex.from_graph(figure_1_graph())


@pytest.fixture(scope="module")
def table():
    return figure_1_graph().keyword_table


class TestPostings:
    def test_posting_lists_are_sorted_node_ids(self, index, table):
        postings = index.postings(table.id_of("t2"))
        assert postings.tolist() == [2, 5, 7]

    def test_single_node_keyword(self, index, table):
        assert index.postings(table.id_of("t5")).tolist() == [1]

    def test_absent_keyword_has_empty_postings(self, index):
        postings = index.postings(12345)
        assert len(postings) == 0
        assert postings.dtype == np.int64

    def test_document_frequency_matches_posting_length(self, index, table):
        for word in ("t1", "t2", "t3", "t4", "t5"):
            kid = table.id_of(word)
            assert index.document_frequency(kid) == len(index.postings(kid))


class TestBooleanOps:
    def test_nodes_covering_any(self, index, table):
        nodes = index.nodes_covering_any([table.id_of("t1"), table.id_of("t4")])
        assert sorted(nodes.tolist()) == [3, 4, 6]

    def test_nodes_covering_all(self, index, table):
        # No single node carries both t1 and t2 in Figure 1.
        nodes = index.nodes_covering_all([table.id_of("t1"), table.id_of("t2")])
        assert nodes.tolist() == []

    def test_nodes_covering_all_single_keyword(self, index, table):
        nodes = index.nodes_covering_all([table.id_of("t2")])
        assert nodes.tolist() == [2, 5, 7]

    def test_vocabulary_attached(self, index, table):
        assert index.vocabulary.document_frequency(table.id_of("t2")) == 3
