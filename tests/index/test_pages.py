"""Tests for the fixed-size page store (repro.index.pages)."""

import pytest

from repro.exceptions import StorageError
from repro.index.pages import DEFAULT_PAGE_SIZE, PAGE_HEADER_SIZE, PageStore


class TestMemoryStore:
    def test_allocate_returns_sequential_ids(self):
        store = PageStore()
        assert store.allocate() == 0
        assert store.allocate() == 1
        assert store.num_pages == 2

    def test_write_read_round_trip(self):
        store = PageStore()
        page = store.allocate()
        store.write_page(page, b"hello world")
        assert store.read_page(page) == b"hello world"

    def test_overwrite_replaces_payload(self):
        store = PageStore()
        page = store.allocate()
        store.write_page(page, b"first")
        store.write_page(page, b"second")
        assert store.read_page(page) == b"second"

    def test_payload_capacity(self):
        store = PageStore(page_size=128)
        assert store.payload_capacity == 128 - PAGE_HEADER_SIZE

    def test_oversized_payload_rejected(self):
        store = PageStore(page_size=64)
        page = store.allocate()
        with pytest.raises(StorageError):
            store.write_page(page, b"x" * 100)

    def test_unknown_page_id_rejected(self):
        store = PageStore()
        with pytest.raises(StorageError):
            store.read_page(3)

    def test_tiny_page_size_rejected(self):
        with pytest.raises(StorageError, match="too small"):
            PageStore(page_size=8)


class TestDiskStore:
    def test_round_trip_on_disk(self, tmp_path):
        path = tmp_path / "store.pages"
        with PageStore(path) as store:
            page = store.allocate()
            store.write_page(page, b"persisted")
            assert store.read_page(page) == b"persisted"

    def test_reopen_existing_store(self, tmp_path):
        path = tmp_path / "store.pages"
        store = PageStore(path, page_size=256)
        page = store.allocate()
        store.write_page(page, b"survivor")
        store.flush()
        store.close()

        reopened = PageStore.open(path, page_size=256)
        assert reopened.read_page(page) == b"survivor"
        reopened.close()

    def test_open_missing_file_raises(self, tmp_path):
        with pytest.raises(StorageError, match="does not exist"):
            PageStore.open(tmp_path / "missing.pages")

    def test_closed_store_rejects_io(self, tmp_path):
        store = PageStore(tmp_path / "s.pages")
        store.close()
        with pytest.raises(StorageError):
            store.allocate()


class TestChecksums:
    """Failure injection: corrupted pages must be detected, not returned."""

    def test_corrupted_payload_detected(self):
        store = PageStore()
        page = store.allocate()
        store.write_page(page, b"important data")
        store.corrupt_page_for_testing(page, offset=10)
        with pytest.raises(StorageError, match="checksum"):
            store.read_page(page)

    def test_corrupted_disk_page_detected(self, tmp_path):
        store = PageStore(tmp_path / "c.pages")
        page = store.allocate()
        store.write_page(page, b"precious")
        store.corrupt_page_for_testing(page)
        with pytest.raises(StorageError, match="checksum"):
            store.read_page(page)

    def test_uncorrupted_neighbours_stay_readable(self):
        store = PageStore()
        a, b = store.allocate(), store.allocate()
        store.write_page(a, b"aaa")
        store.write_page(b, b"bbb")
        store.corrupt_page_for_testing(a)
        assert store.read_page(b) == b"bbb"

    def test_default_page_size_is_4k(self):
        assert DEFAULT_PAGE_SIZE == 4096
