"""Tests for the disk-resident inverted file (repro.index.diskindex)."""

import numpy as np
import pytest

from repro.graph.generators import figure_1_graph
from repro.index.diskindex import DiskInvertedIndex, decode_postings, encode_postings
from repro.index.inverted import InvertedIndex


class TestPostingCodec:
    def test_round_trip(self):
        ids = np.asarray([0, 1, 5, 130, 131, 100000], dtype=np.int64)
        assert decode_postings(encode_postings(ids), len(ids)).tolist() == ids.tolist()

    def test_empty_list(self):
        assert decode_postings(encode_postings(np.empty(0, dtype=np.int64)), 0).tolist() == []

    def test_unsorted_input_rejected(self):
        from repro.exceptions import StorageError

        with pytest.raises(StorageError, match="sorted"):
            encode_postings(np.asarray([5, 3], dtype=np.int64))

    def test_gap_encoding_is_compact(self):
        # 100 consecutive ids encode to about one byte each.
        ids = np.arange(1000, 1100, dtype=np.int64)
        blob = encode_postings(ids)
        assert len(blob) < 110


class TestDiskIndex:
    def test_equivalent_to_memory_index(self, tmp_path):
        """The paper's disk index and the fast in-memory one must agree."""
        graph = figure_1_graph()
        memory = InvertedIndex.from_graph(graph)
        disk = DiskInvertedIndex.build(graph, tmp_path / "idx.pages")
        try:
            for kid in range(len(graph.keyword_table)):
                assert disk.postings(kid).tolist() == memory.postings(kid).tolist()
                assert disk.document_frequency(kid) == memory.document_frequency(kid)
        finally:
            disk.close()

    def test_equivalent_on_realistic_dataset(self, tmp_path, small_flickr):
        graph = small_flickr.graph
        memory = InvertedIndex.from_graph(graph)
        disk = DiskInvertedIndex.build(graph, tmp_path / "flickr.pages")
        try:
            for kid in range(len(graph.keyword_table)):
                assert disk.postings(kid).tolist() == memory.postings(kid).tolist()
        finally:
            disk.close()

    def test_absent_keyword(self, tmp_path):
        disk = DiskInvertedIndex.build(figure_1_graph(), tmp_path / "i.pages")
        try:
            assert disk.postings(999).tolist() == []
            assert disk.document_frequency(999) == 0
        finally:
            disk.close()

    def test_boolean_ops(self, tmp_path):
        graph = figure_1_graph()
        table = graph.keyword_table
        disk = DiskInvertedIndex.build(graph, tmp_path / "b.pages")
        try:
            any_nodes = disk.nodes_covering_any([table.id_of("t1"), table.id_of("t4")])
            assert sorted(any_nodes.tolist()) == [3, 4, 6]
        finally:
            disk.close()

    def test_memory_backed_build(self):
        """path=None keeps the whole 'disk' index in memory (for tests)."""
        graph = figure_1_graph()
        disk = DiskInvertedIndex.build(graph, path=None)
        try:
            assert disk.postings(graph.keyword_table.id_of("t2")).tolist() == [2, 5, 7]
        finally:
            disk.close()

    def test_long_posting_lists_span_pages(self, tmp_path):
        """Posting chains longer than one page must reassemble correctly."""
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder()
        n = 3000
        for i in range(n):
            builder.add_node(keywords=["common"])
        for i in range(n - 1):
            builder.add_edge(i, i + 1, 1.0, 1.0)
        graph = builder.build()
        disk = DiskInvertedIndex.build(graph, tmp_path / "big.pages", page_size=256)
        try:
            assert disk.postings(graph.keyword_table.id_of("common")).tolist() == list(range(n))
        finally:
            disk.close()
