"""Tests for vocabulary statistics (repro.index.vocabulary)."""

import pytest

from repro.exceptions import QueryError
from repro.graph.builder import GraphBuilder
from repro.graph.generators import figure_1_graph
from repro.index.vocabulary import Vocabulary


@pytest.fixture()
def vocabulary():
    return Vocabulary(figure_1_graph())


class TestDocumentFrequency:
    def test_figure1_frequencies(self, vocabulary):
        graph = figure_1_graph()
        table = graph.keyword_table
        # t2 appears on v2, v5, v7; t1 on v3, v6.
        assert vocabulary.document_frequency(table.id_of("t2")) == 3
        assert vocabulary.document_frequency(table.id_of("t1")) == 2
        assert vocabulary.document_frequency(table.id_of("t4")) == 1

    def test_unknown_keyword_has_zero_df(self, vocabulary):
        assert vocabulary.document_frequency(999) == 0

    def test_relative_frequency(self, vocabulary):
        graph = figure_1_graph()
        kid = graph.keyword_table.id_of("t2")
        assert vocabulary.relative_frequency(kid) == pytest.approx(3 / 8)


class TestInfrequency:
    """Strategy 2's rare-word screen (paper: 'below a frequency threshold,
    such as appearing in less than 1% nodes')."""

    def test_threshold_semantics(self, vocabulary):
        graph = figure_1_graph()
        t4 = graph.keyword_table.id_of("t4")  # df = 1 of 8 nodes
        assert vocabulary.is_infrequent(t4, threshold=0.5)
        assert not vocabulary.is_infrequent(t4, threshold=0.01)

    def test_absent_keyword_is_not_infrequent(self, vocabulary):
        # df = 0 means "not in the graph", a different failure mode.
        assert not vocabulary.is_infrequent(999, threshold=0.5)

    def test_least_frequent(self, vocabulary):
        graph = figure_1_graph()
        table = graph.keyword_table
        ids = [table.id_of("t1"), table.id_of("t2"), table.id_of("t4")]
        assert vocabulary.least_frequent(ids) == table.id_of("t4")

    def test_least_frequent_requires_input(self, vocabulary):
        with pytest.raises(QueryError):
            vocabulary.least_frequent([])

    def test_multi_keyword_nodes_counted_once(self):
        builder = GraphBuilder()
        builder.add_node(keywords=["a", "b"])
        builder.add_node(keywords=["a"])
        builder.add_edge(0, 1, 1.0, 1.0)
        vocabulary = Vocabulary(builder.build())
        table = builder.keyword_table
        assert vocabulary.document_frequency(table.id_of("a")) == 2
        assert vocabulary.document_frequency(table.id_of("b")) == 1
