"""Tests for the CostTables container (paper §3.1 pre-processing)."""

import numpy as np
import pytest

from repro.exceptions import PrepError
from repro.graph.generators import figure_1_graph, grid_graph
from repro.prep.tables import CostTables


@pytest.fixture(scope="module")
def tables():
    return CostTables.from_graph(figure_1_graph(), method="floyd-warshall")


class TestConstruction:
    def test_methods_agree(self):
        graph = figure_1_graph()
        fw = CostTables.from_graph(graph, method="floyd-warshall")
        dj = CostTables.from_graph(graph, method="dijkstra")
        for name in ("os_tau", "bs_tau", "os_sigma", "bs_sigma"):
            np.testing.assert_allclose(getattr(dj, name), getattr(fw, name))

    def test_auto_picks_a_method(self):
        tables = CostTables.from_graph(figure_1_graph(), method="auto")
        assert tables.num_nodes == 8

    def test_unknown_method_raises(self):
        with pytest.raises(PrepError, match="unknown pre-processing"):
            CostTables.from_graph(figure_1_graph(), method="magic")

    def test_predecessors_optional(self):
        tables = CostTables.from_graph(figure_1_graph(), predecessors=False)
        assert not tables.has_paths
        with pytest.raises(PrepError, match="predecessors=False"):
            tables.tau_path(0, 7)

    def test_shape_mismatch_rejected(self, tables):
        with pytest.raises(PrepError, match="shape"):
            CostTables(
                os_tau=tables.os_tau,
                bs_tau=tables.bs_tau[:4, :4],
                os_sigma=tables.os_sigma,
                bs_sigma=tables.bs_sigma,
            )


class TestAccessProtocol:
    def test_columns_are_views_of_matrices(self, tables):
        np.testing.assert_array_equal(tables.os_tau_col(7), tables.os_tau[:, 7])
        np.testing.assert_array_equal(tables.bs_sigma_col(7), tables.bs_sigma[:, 7])

    def test_rows(self, tables):
        np.testing.assert_array_equal(tables.os_sigma_row(0), tables.os_sigma[0, :])
        np.testing.assert_array_equal(tables.bs_tau_row(0), tables.bs_tau[0, :])

    def test_reachable(self, tables):
        assert tables.reachable(0, 7)
        assert not tables.reachable(7, 0)  # v7 is a sink in Figure 1

    def test_paths_match_paper(self, tables):
        assert tables.tau_path(0, 7) == [0, 3, 4, 7]
        assert tables.sigma_path(0, 7) == [0, 3, 5, 7]


class TestValidate:
    def test_valid_tables_pass(self, tables):
        tables.validate()

    def test_tau_sigma_inversion_detected(self, tables):
        broken = CostTables(
            os_tau=tables.os_sigma.copy(),
            bs_tau=tables.bs_sigma.copy(),
            os_sigma=tables.os_tau.copy(),
            bs_sigma=tables.bs_tau.copy(),
        )
        with pytest.raises(PrepError):
            broken.validate()

    def test_nonzero_diagonal_detected(self, tables):
        corrupted = CostTables(
            os_tau=tables.os_tau.copy(),
            bs_tau=tables.bs_tau.copy(),
            os_sigma=tables.os_sigma.copy(),
            bs_sigma=tables.bs_sigma.copy(),
        )
        corrupted.os_tau[2, 2] = 5.0
        with pytest.raises(PrepError, match="diagonal"):
            corrupted.validate()


class TestPersistence:
    def test_round_trip_with_paths(self, tables, tmp_path):
        path = tmp_path / "tables.npz"
        tables.save(path)
        loaded = CostTables.load(path)
        for name in ("os_tau", "bs_tau", "os_sigma", "bs_sigma"):
            np.testing.assert_array_equal(getattr(loaded, name), getattr(tables, name))
        assert loaded.tau_path(0, 7) == tables.tau_path(0, 7)

    def test_round_trip_without_paths(self, tmp_path):
        tables = CostTables.from_graph(grid_graph(3, 3), predecessors=False)
        path = tmp_path / "tables.npz"
        tables.save(path)
        assert not CostTables.load(path).has_paths

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(PrepError, match="cannot read"):
            CostTables.load(tmp_path / "missing.npz")

    def test_incomplete_archive_raises(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, os_tau=np.zeros((2, 2)))
        with pytest.raises(PrepError, match="misses arrays"):
            CostTables.load(path)
