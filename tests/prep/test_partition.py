"""Tests for partition-based pre-processing (paper future work, §6)."""

import numpy as np
import pytest

from repro.exceptions import PrepError
from repro.graph.generators import figure_1_graph, grid_graph
from repro.prep.partition import GraphPartition, PartitionedCostTables, partition_graph
from repro.prep.tables import CostTables


@pytest.fixture(scope="module")
def grid():
    return grid_graph(7, 7)


@pytest.fixture(scope="module")
def partitioned(grid):
    return PartitionedCostTables.from_graph(grid, num_cells=4, seed=1)


@pytest.fixture(scope="module")
def flat(grid):
    return CostTables.from_graph(grid, predecessors=False)


class TestPartitioning:
    def test_every_node_assigned(self, grid):
        partition = partition_graph(grid, 4)
        assert sorted(v for cell in partition.cells for v in cell) == list(
            range(grid.num_nodes)
        )

    def test_cells_roughly_balanced(self, grid):
        partition = partition_graph(grid, 4)
        sizes = [len(cell) for cell in partition.cells]
        assert max(sizes) <= 3 * min(sizes)

    def test_border_nodes_have_crossing_edges(self, grid):
        partition = partition_graph(grid, 4)
        for node in partition.border_nodes:
            crossing = any(
                partition.cell_of[node] != partition.cell_of[v]
                for v, _o, _b in grid.out_edges(int(node))
            ) or any(
                partition.cell_of[e.u] != partition.cell_of[int(node)]
                for e in grid.iter_edges()
                if e.v == int(node)
            )
            assert crossing

    def test_is_border_consistent(self, grid):
        partition = partition_graph(grid, 4)
        for node in range(grid.num_nodes):
            assert partition.is_border(node) == (node in set(partition.border_nodes.tolist()))

    def test_single_cell_has_no_borders(self, grid):
        partition = partition_graph(grid, 1)
        assert partition.num_cells == 1
        assert len(partition.border_nodes) == 0

    def test_invalid_cell_count_raises(self, grid):
        with pytest.raises(PrepError):
            partition_graph(grid, 0)
        with pytest.raises(PrepError):
            partition_graph(grid, grid.num_nodes + 1)


class TestAssembledScores:
    """Partitioned scores are exact in-cell and upper bounds across cells."""

    @pytest.mark.parametrize("target", [0, 24, 48])
    def test_sigma_never_undercuts_flat(self, partitioned, flat, target):
        assembled = partitioned.bs_sigma_col(target)
        reference = flat.bs_sigma_col(target)
        finite = np.isfinite(reference)
        assert np.all(assembled[finite] >= reference[finite] - 1e-9)

    @pytest.mark.parametrize("target", [0, 24, 48])
    def test_tau_never_undercuts_flat(self, partitioned, flat, target):
        assembled = partitioned.os_tau_col(target)
        reference = flat.os_tau_col(target)
        finite = np.isfinite(reference)
        assert np.all(assembled[finite] >= reference[finite] - 1e-9)

    def test_exact_on_grid(self, partitioned, flat):
        """On a uniform grid every optimum can be assembled via borders."""
        assembled = partitioned.bs_sigma_col(24)
        reference = flat.bs_sigma_col(24)
        np.testing.assert_allclose(assembled, reference)

    def test_scalar_lookups_match_columns(self, partitioned):
        column = partitioned.os_tau_col(10)
        for node in (0, 5, 30):
            assert partitioned.os_tau(node, 10) == pytest.approx(column[node])

    def test_reachability_preserved(self):
        """Unreachable pairs stay inf under partitioning."""
        from repro.graph.generators import line_graph

        graph = line_graph(6)
        partitioned = PartitionedCostTables.from_graph(graph, num_cells=2, seed=0)
        assert np.isinf(partitioned.os_tau(5, 0))
        assert np.isfinite(partitioned.os_tau(0, 5))


class TestMemory:
    def test_partitioned_tables_are_smaller(self, partitioned, grid):
        flat_bytes = PartitionedCostTables.flat_memory_bytes(grid.num_nodes)
        assert partitioned.memory_bytes() < flat_bytes

    def test_figure1_partitioning_works(self):
        graph = figure_1_graph()
        partitioned = PartitionedCostTables.from_graph(graph, num_cells=2, seed=0)
        flat = CostTables.from_graph(graph, predecessors=False)
        assembled = partitioned.os_tau_col(7)
        reference = flat.os_tau_col(7)
        finite = np.isfinite(reference)
        assert np.all(assembled[finite] >= reference[finite] - 1e-9)
