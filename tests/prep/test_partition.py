"""Tests for partition-based pre-processing (paper future work, §6)."""

import numpy as np
import pytest

from repro.exceptions import PrepError
from repro.graph.generators import figure_1_graph, grid_graph
from repro.prep.partition import PartitionedCostTables, partition_graph
from repro.prep.tables import CostTables


@pytest.fixture(scope="module")
def grid():
    return grid_graph(7, 7)


@pytest.fixture(scope="module")
def partitioned(grid):
    return PartitionedCostTables.from_graph(grid, num_cells=4, seed=1)


@pytest.fixture(scope="module")
def flat(grid):
    return CostTables.from_graph(grid, predecessors=False)


class TestPartitioning:
    def test_every_node_assigned(self, grid):
        partition = partition_graph(grid, 4)
        assert sorted(v for cell in partition.cells for v in cell) == list(
            range(grid.num_nodes)
        )

    def test_cells_roughly_balanced(self, grid):
        partition = partition_graph(grid, 4)
        sizes = [len(cell) for cell in partition.cells]
        assert max(sizes) <= 3 * min(sizes)

    def test_border_nodes_have_crossing_edges(self, grid):
        partition = partition_graph(grid, 4)
        for node in partition.border_nodes:
            crossing = any(
                partition.cell_of[node] != partition.cell_of[v]
                for v, _o, _b in grid.out_edges(int(node))
            ) or any(
                partition.cell_of[e.u] != partition.cell_of[int(node)]
                for e in grid.iter_edges()
                if e.v == int(node)
            )
            assert crossing

    def test_is_border_consistent(self, grid):
        partition = partition_graph(grid, 4)
        for node in range(grid.num_nodes):
            assert partition.is_border(node) == (node in set(partition.border_nodes.tolist()))

    def test_single_cell_has_no_borders(self, grid):
        partition = partition_graph(grid, 1)
        assert partition.num_cells == 1
        assert len(partition.border_nodes) == 0

    def test_invalid_cell_count_raises(self, grid):
        with pytest.raises(PrepError):
            partition_graph(grid, 0)
        with pytest.raises(PrepError):
            partition_graph(grid, grid.num_nodes + 1)


class TestAssembledScores:
    """Partitioned scores are exact: any optimal path decomposes at its
    first/last border node, and the border leg is measured on the full
    graph (see the module docstring of repro.prep.partition)."""

    @pytest.mark.parametrize("target", [0, 24, 48])
    def test_sigma_never_undercuts_flat(self, partitioned, flat, target):
        assembled = partitioned.bs_sigma_col(target)
        reference = flat.bs_sigma_col(target)
        finite = np.isfinite(reference)
        assert np.all(assembled[finite] >= reference[finite] - 1e-9)

    @pytest.mark.parametrize("target", [0, 24, 48])
    def test_tau_never_undercuts_flat(self, partitioned, flat, target):
        assembled = partitioned.os_tau_col(target)
        reference = flat.os_tau_col(target)
        finite = np.isfinite(reference)
        assert np.all(assembled[finite] >= reference[finite] - 1e-9)

    @pytest.mark.parametrize("target", [0, 10, 24, 48])
    def test_exact_on_grid(self, partitioned, flat, target):
        """Primary scores equal the flat tables', not just bound them."""
        np.testing.assert_allclose(
            partitioned.bs_sigma_col(target), flat.bs_sigma_col(target)
        )
        np.testing.assert_allclose(
            partitioned.os_tau_col(target), flat.os_tau_col(target)
        )

    def test_exact_on_random_directed_graphs(self):
        """Exactness holds on directed non-uniform graphs too."""
        from tests.service.test_differential import random_instance

        for seed in (0, 1, 2, 3):
            engine, _queries = random_instance(seed)
            graph = engine.graph
            flat = CostTables.from_graph(graph, predecessors=False)
            for cells in (2, 3):
                partitioned = PartitionedCostTables.from_graph(
                    graph, num_cells=min(cells, graph.num_nodes), seed=seed
                )
                for t in range(graph.num_nodes):
                    np.testing.assert_allclose(
                        partitioned.os_tau_col(t), flat.os_tau_col(t)
                    )
                    np.testing.assert_allclose(
                        partitioned.bs_sigma_col(t), flat.bs_sigma_col(t)
                    )

    def test_rows_match_columns(self, partitioned):
        """Row and column assemblies describe the same table."""
        for i in (0, 7, 24):
            row = partitioned.os_tau_row(i)
            for j in (0, 13, 48):
                assert row[j] == pytest.approx(partitioned.os_tau_col(j)[i])
        for i in (3, 30):
            row = partitioned.bs_sigma_row(i)
            for j in (1, 25):
                assert row[j] == pytest.approx(partitioned.bs_sigma_col(j)[i])

    def test_scalar_lookups_match_columns(self, partitioned):
        column = partitioned.os_tau_col(10)
        for node in (0, 5, 30):
            assert partitioned.os_tau(node, 10) == pytest.approx(column[node])

    def test_multi_column_gather_matches_columns(self, partitioned):
        nodes = np.array([0, 24, 48])
        gathered = partitioned.os_tau_cols(nodes)
        for position, t in enumerate(nodes):
            np.testing.assert_array_equal(
                gathered[:, position], partitioned.os_tau_col(int(t))
            )

    def test_reachability_preserved(self):
        """Unreachable pairs stay inf under partitioning."""
        from repro.graph.generators import line_graph

        graph = line_graph(6)
        partitioned = PartitionedCostTables.from_graph(graph, num_cells=2, seed=0)
        assert np.isinf(partitioned.os_tau(5, 0))
        assert np.isfinite(partitioned.os_tau(0, 5))


class TestPathMaterialisation:
    """tau_path / sigma_path stitch real full-graph walks whose scores
    equal the assembled table entries."""

    @pytest.fixture(scope="class")
    def with_paths(self, grid):
        return PartitionedCostTables.from_graph(
            grid, num_cells=4, seed=1, predecessors=True
        )

    def test_paths_rescore_to_table_entries(self, grid, with_paths):
        from repro.core.route import Route

        for i, j in ((0, 48), (24, 3), (6, 42), (17, 17)):
            route = Route.from_nodes(grid, with_paths.tau_path(i, j))
            assert route.nodes[0] == i and route.nodes[-1] == j
            assert route.objective_score == pytest.approx(with_paths.os_tau(i, j))
            assert route.budget_score == pytest.approx(with_paths.bs_tau(i, j))
            route = Route.from_nodes(grid, with_paths.sigma_path(i, j))
            assert route.budget_score == pytest.approx(with_paths.bs_sigma(i, j))
            assert route.objective_score == pytest.approx(with_paths.os_sigma(i, j))

    def test_unreachable_pair_raises(self):
        from repro.graph.generators import line_graph

        graph = line_graph(6)
        tables = PartitionedCostTables.from_graph(
            graph, num_cells=2, seed=0, predecessors=True
        )
        with pytest.raises(PrepError):
            tables.tau_path(5, 0)

    def test_scoreless_tables_refuse_paths(self, partitioned):
        assert not partitioned.has_paths
        with pytest.raises(PrepError):
            partitioned.tau_path(0, 1)

    def test_row_column_caches_stay_bounded(self, grid):
        """The LRU caches can never regrow an O(n^2) footprint."""
        tables = PartitionedCostTables.from_graph(grid, num_cells=4, seed=1)
        for t in range(grid.num_nodes):
            tables.os_tau_col(t)
            tables.os_tau_row(t)
        capacity = tables._column_cache.capacity
        assert len(tables._column_cache) <= capacity
        assert len(tables._row_cache) <= capacity
        per_entry = 2 * 8 * grid.num_nodes
        assert tables.cache_bytes() <= 2 * capacity * per_entry
        # Hot entries survive (LRU, not clear-on-full): the last target
        # touched is still cached.
        last = grid.num_nodes - 1
        assert tables._column_cache.get((last, "tau")) is not None

    def test_lru_cache_evicts_oldest_first(self):
        from repro.prep.partition import _CACHE_BYTE_BUDGET, _LRUPairCache

        # A graph large enough that the byte budget forces the entry floor.
        cache = _LRUPairCache(num_nodes=_CACHE_BYTE_BUDGET)
        capacity = cache.capacity
        empty = (np.empty(0), np.empty(0))
        for key in range(capacity):
            cache.put(key, empty)
        assert cache.get(0) is not None  # refresh key 0
        cache.put(capacity, empty)  # evicts key 1 (oldest unrefreshed)
        assert len(cache) == capacity
        assert cache.get(1) is None
        assert cache.get(0) is not None
        assert cache.get(capacity) is not None

    def test_pickle_round_trip_drops_caches_keeps_answers(self, grid, with_paths):
        import pickle

        with_paths.os_tau_col(24)  # populate a cache entry
        clone = pickle.loads(pickle.dumps(with_paths))
        assert clone._column_cache == {}
        np.testing.assert_array_equal(clone.os_tau_col(24), with_paths.os_tau_col(24))
        assert clone.tau_path(0, 48) == with_paths.tau_path(0, 48)

    def test_shared_cell_tables_are_validated(self, grid):
        partition = partition_graph(grid, 2, seed=0)
        with pytest.raises(PrepError):
            PartitionedCostTables.from_graph(
                grid,
                partition=partition,
                cell_tables=(CostTables.from_graph(grid),),  # wrong count
            )


class TestMemory:
    def test_partitioned_tables_are_smaller(self, partitioned, grid):
        flat_bytes = PartitionedCostTables.flat_memory_bytes(grid.num_nodes)
        assert partitioned.memory_bytes() < flat_bytes

    def test_figure1_partitioning_works(self):
        graph = figure_1_graph()
        partitioned = PartitionedCostTables.from_graph(graph, num_cells=2, seed=0)
        flat = CostTables.from_graph(graph, predecessors=False)
        assembled = partitioned.os_tau_col(7)
        reference = flat.os_tau_col(7)
        finite = np.isfinite(reference)
        assert np.all(assembled[finite] >= reference[finite] - 1e-9)
