"""The Dijkstra backend must agree exactly with Floyd-Warshall."""

import numpy as np
import pytest

from repro.datasets.road import RoadConfig, build_road_graph
from repro.graph.generators import figure_1_graph, grid_graph
from repro.prep.dijkstra import (
    all_pairs_two_criteria,
    reconstruct_path,
    single_source_two_criteria,
)
from repro.prep.floyd_warshall import floyd_warshall_two_criteria


class TestBackendEquivalence:
    @pytest.mark.parametrize("which", ["objective", "budget"])
    def test_figure1_scores_match(self, which):
        graph = figure_1_graph()
        fw_primary, fw_secondary, _p1 = floyd_warshall_two_criteria(graph, which)
        dj_primary, dj_secondary, _p2 = all_pairs_two_criteria(graph, which)
        np.testing.assert_allclose(dj_primary, fw_primary)
        np.testing.assert_allclose(dj_secondary, fw_secondary)

    @pytest.mark.parametrize("which", ["objective", "budget"])
    def test_random_road_graph_scores_match(self, which):
        graph = build_road_graph(RoadConfig(num_nodes=120, seed=3))
        fw_primary, fw_secondary, _p1 = floyd_warshall_two_criteria(graph, which)
        dj_primary, dj_secondary, _p2 = all_pairs_two_criteria(graph, which)
        np.testing.assert_allclose(dj_primary, fw_primary, rtol=1e-9)
        np.testing.assert_allclose(dj_secondary, fw_secondary, rtol=1e-9)

    def test_blocked_computation_matches_unblocked(self):
        graph = grid_graph(5, 5)
        full = all_pairs_two_criteria(graph, "objective")
        blocked = all_pairs_two_criteria(graph, "objective", block_size=7)
        np.testing.assert_allclose(blocked[0], full[0])
        np.testing.assert_allclose(blocked[1], full[1])


class TestSingleSource:
    def test_matches_all_pairs_row(self):
        graph = figure_1_graph()
        primary, secondary, _pred = single_source_two_criteria(graph, 0, "objective")
        all_primary, all_secondary, _ = all_pairs_two_criteria(graph, "objective")
        np.testing.assert_allclose(primary, all_primary[0])
        np.testing.assert_allclose(secondary, all_secondary[0])


class TestPathReconstruction:
    def test_path_endpoints(self):
        graph = figure_1_graph()
        _primary, _secondary, pred = all_pairs_two_criteria(graph, "objective")
        path = reconstruct_path(pred[0], 0, 7)
        assert path[0] == 0 and path[-1] == 7

    def test_paper_tau_path(self):
        graph = figure_1_graph()
        _primary, _secondary, pred = all_pairs_two_criteria(graph, "objective")
        assert reconstruct_path(pred[0], 0, 7) == [0, 3, 4, 7]

    def test_source_equals_target(self):
        graph = figure_1_graph()
        _primary, _secondary, pred = all_pairs_two_criteria(graph, "objective")
        assert reconstruct_path(pred[0], 0, 0) == [0]

    def test_unreachable_target_raises(self):
        from repro.graph.generators import line_graph

        graph = line_graph(3)
        _primary, _secondary, pred = all_pairs_two_criteria(graph, "objective")
        with pytest.raises(ValueError):
            reconstruct_path(pred[2], 2, 0)
