"""Tests for the Floyd-Warshall pre-processing backend (paper §3.1)."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.generators import figure_1_graph, grid_graph, line_graph
from repro.graph.interop import to_networkx
from repro.prep.floyd_warshall import floyd_warshall_two_criteria


@pytest.fixture(scope="module")
def fig1():
    return figure_1_graph()


class TestPrimaryScores:
    def test_matches_networkx_on_objective(self, fig1):
        os_tau, _bs, _pred = floyd_warshall_two_criteria(fig1, "objective")
        oracle = dict(nx.all_pairs_dijkstra_path_length(to_networkx(fig1), weight="objective"))
        for i in range(fig1.num_nodes):
            for j in range(fig1.num_nodes):
                expected = oracle.get(i, {}).get(j, np.inf)
                assert os_tau[i, j] == pytest.approx(expected)

    def test_matches_networkx_on_budget(self, fig1):
        bs_sigma, _os, _pred = floyd_warshall_two_criteria(fig1, "budget")
        oracle = dict(nx.all_pairs_dijkstra_path_length(to_networkx(fig1), weight="budget"))
        for i in range(fig1.num_nodes):
            for j in range(fig1.num_nodes):
                expected = oracle.get(i, {}).get(j, np.inf)
                assert bs_sigma[i, j] == pytest.approx(expected)

    def test_diagonal_is_zero(self, fig1):
        os_tau, bs_tau, _ = floyd_warshall_two_criteria(fig1, "objective")
        assert np.all(np.diag(os_tau) == 0)
        assert np.all(np.diag(bs_tau) == 0)


class TestSecondaryScores:
    def test_secondary_scores_score_the_primary_path(self, fig1):
        """The secondary matrix must price the *primary-optimal* path."""
        from repro.core.route import Route
        from repro.prep.dijkstra import reconstruct_path

        os_tau, bs_tau, pred = floyd_warshall_two_criteria(fig1, "objective")
        for i in range(fig1.num_nodes):
            for j in range(fig1.num_nodes):
                if i == j or not np.isfinite(os_tau[i, j]):
                    continue
                path = reconstruct_path(pred[i], i, j)
                route = Route.from_nodes(fig1, path)
                assert route.objective_score == pytest.approx(os_tau[i, j])
                assert route.budget_score == pytest.approx(bs_tau[i, j])

    def test_paper_section31_values(self, fig1):
        os_tau, bs_tau, _ = floyd_warshall_two_criteria(fig1, "objective")
        bs_sigma, os_sigma, _ = floyd_warshall_two_criteria(fig1, "budget")
        assert (os_tau[0, 7], bs_tau[0, 7]) == (4.0, 7.0)
        assert (os_sigma[0, 7], bs_sigma[0, 7]) == (9.0, 5.0)


class TestTopologies:
    def test_line_graph_unreachable_pairs(self):
        graph = line_graph(4)
        os_tau, _bs, _pred = floyd_warshall_two_criteria(graph, "objective")
        assert np.isinf(os_tau[3, 0])
        assert os_tau[0, 3] == 3.0

    def test_grid_graph_symmetric_distances(self):
        graph = grid_graph(3, 3)
        os_tau, _bs, _pred = floyd_warshall_two_criteria(graph, "objective")
        assert np.allclose(os_tau, os_tau.T)
        assert os_tau[0, 8] == 4.0  # manhattan distance in hops
