"""Shared fixtures of the test suite.

Heavy artefacts (the Figure-1 engine, a small Flickr-like dataset) are
session-scoped: they are deterministic and read-only, so every test file
can share one copy.
"""

from __future__ import annotations

import pytest

from repro.core.engine import KOREngine
from repro.datasets.flickr import FlickrConfig, FlickrDataset, build_flickr_graph
from repro.datasets.photos import PhotoStreamConfig
from repro.graph.digraph import SpatialKeywordGraph
from repro.graph.generators import figure_1_graph
from repro.service import QueryService


def pytest_configure(config) -> None:
    # pytest-timeout registers this marker when installed (CI); declare
    # it here too so the chaos/deadline suites stay warning-free in
    # environments without the plugin (the marker is then a no-op).
    config.addinivalue_line(
        "markers", "timeout(seconds): per-test timeout, enforced by pytest-timeout"
    )


@pytest.fixture(scope="session")
def fig1_graph() -> SpatialKeywordGraph:
    """The paper's Figure-1 example graph."""
    return figure_1_graph()


@pytest.fixture(scope="session")
def fig1_engine(fig1_graph) -> KOREngine:
    """Figure-1 graph with pre-processed tables and index."""
    return KOREngine(fig1_graph)


@pytest.fixture(scope="session")
def fig1_service(fig1_engine) -> QueryService:
    """Serving layer over the Figure-1 engine (shared cache and stats —
    tests must not assume a cold cache; build a local service for that)."""
    return QueryService(fig1_engine, cache_capacity=256)


@pytest.fixture(scope="session")
def small_flickr() -> FlickrDataset:
    """A tiny but fully realistic Flickr-like dataset (~100 locations)."""
    config = FlickrConfig(
        photo_stream=PhotoStreamConfig(
            num_users=120,
            num_hotspots=50,
            photos_per_user=(10, 40),
            extent_km=(3.0, 3.0),
            seed=42,
        )
    )
    return build_flickr_graph(config)


@pytest.fixture(scope="session")
def small_flickr_engine(small_flickr) -> KOREngine:
    """Engine over the tiny Flickr-like dataset."""
    return KOREngine(small_flickr.graph)


@pytest.fixture(scope="session")
def small_flickr_service(small_flickr_engine) -> QueryService:
    """Serving layer over the tiny Flickr-like engine."""
    return QueryService(small_flickr_engine, cache_capacity=512)
