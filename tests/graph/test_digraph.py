"""Unit tests for the graph substrate (repro.graph.digraph)."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.generators import figure_1_graph, grid_graph


@pytest.fixture()
def triangle():
    builder = GraphBuilder()
    builder.add_node(keywords=["a"], x=0.0, y=0.0)
    builder.add_node(keywords=["b"], x=1.0, y=0.0)
    builder.add_node(keywords=["a", "c"], x=0.0, y=1.0)
    builder.add_edge(0, 1, 1.0, 2.0)
    builder.add_edge(1, 2, 3.0, 4.0)
    builder.add_edge(2, 0, 5.0, 6.0)
    return builder.build()


class TestAccessors:
    def test_counts(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_edges == 3

    def test_out_edges_and_degree(self, triangle):
        assert triangle.out_edges(0) == ((1, 1.0, 2.0),)
        assert triangle.out_degree(0) == 1

    def test_edge_lookup(self, triangle):
        assert triangle.edge(1, 2) == (3.0, 4.0)

    def test_missing_edge_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.edge(0, 2)

    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert not triangle.has_edge(1, 0)

    def test_node_keywords_and_strings(self, triangle):
        ids = triangle.node_keywords(2)
        assert triangle.keyword_table.words_of(ids) == frozenset({"a", "c"})
        assert triangle.node_keyword_strings(2) == frozenset({"a", "c"})

    def test_names_round_trip(self, triangle):
        assert triangle.index_of(triangle.name_of(1)) == 1

    def test_unknown_name_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.index_of("nope")

    def test_coordinates(self, triangle):
        assert triangle.coordinates(2) == (0.0, 1.0)
        assert triangle.has_coordinates

    def test_weight_extrema(self, triangle):
        assert triangle.min_objective == 1.0
        assert triangle.max_objective == 5.0
        assert triangle.min_budget == 2.0
        assert triangle.max_budget == 6.0


class TestIterationAndExport:
    def test_iter_edges_yields_every_edge_once(self, triangle):
        edges = {(e.u, e.v): (e.objective, e.budget) for e in triangle.iter_edges()}
        assert edges == {(0, 1): (1.0, 2.0), (1, 2): (3.0, 4.0), (2, 0): (5.0, 6.0)}

    def test_csr_export_shapes(self, triangle):
        indptr, indices, objectives, budgets = triangle.to_csr()
        assert len(indptr) == triangle.num_nodes + 1
        assert indptr[-1] == triangle.num_edges
        assert len(indices) == len(objectives) == len(budgets) == triangle.num_edges

    def test_csr_matches_adjacency(self, triangle):
        indptr, indices, objectives, budgets = triangle.to_csr()
        for u in range(triangle.num_nodes):
            span = slice(int(indptr[u]), int(indptr[u + 1]))
            rebuilt = list(zip(indices[span], objectives[span], budgets[span]))
            assert [(int(v), o, b) for v, o, b in rebuilt] == [
                (v, o, b) for v, o, b in triangle.out_edges(u)
            ]

    def test_coordinate_arrays(self, triangle):
        xs, ys = triangle.coordinate_arrays
        np.testing.assert_allclose(xs, [0.0, 1.0, 0.0])
        np.testing.assert_allclose(ys, [0.0, 0.0, 1.0])


class TestTransforms:
    def test_reverse_flips_every_edge(self, triangle):
        reverse = triangle.reverse()
        assert reverse.has_edge(1, 0)
        assert reverse.edge(1, 0) == (1.0, 2.0)
        assert reverse.num_edges == triangle.num_edges

    def test_reverse_preserves_keywords(self, triangle):
        reverse = triangle.reverse()
        assert reverse.node_keyword_strings(2) == frozenset({"a", "c"})

    def test_induced_subgraph_reindexes(self):
        graph = figure_1_graph()
        sub, mapping = graph.induced_subgraph([0, 2, 3, 6])
        assert sub.num_nodes == 4
        # Edge (2, 6) of the original graph survives under new ids.
        assert sub.has_edge(mapping[2], mapping[6])
        # Edge (0, 1) does not: node 1 was dropped.
        assert all(not sub.has_edge(mapping[0], j) for j in range(4) if j != mapping[3] and j != mapping[2])

    def test_induced_subgraph_keeps_weights(self):
        graph = figure_1_graph()
        sub, mapping = graph.induced_subgraph([0, 3, 5])
        assert sub.edge(mapping[0], mapping[3]) == graph.edge(0, 3)
        assert sub.edge(mapping[3], mapping[5]) == graph.edge(3, 5)

    def test_stats_summary(self):
        graph = grid_graph(3, 3)
        stats = graph.stats()
        assert stats.num_nodes == 9
        assert stats.num_edges == 24  # 12 undirected segments = 24 arcs
        assert stats.max_out_degree == 4
        assert stats.min_objective == 1.0
