"""Tests for networkx interop (repro.graph.interop)."""

import networkx as nx
import pytest

from repro.graph.generators import figure_1_graph
from repro.graph.interop import from_networkx, to_networkx


class TestToNetworkx:
    def test_structure_preserved(self):
        graph = figure_1_graph()
        nxg = to_networkx(graph)
        assert nxg.number_of_nodes() == graph.num_nodes
        assert nxg.number_of_edges() == graph.num_edges

    def test_edge_attributes(self):
        graph = figure_1_graph()
        nxg = to_networkx(graph)
        assert nxg[0][3]["objective"] == 2.0
        assert nxg[0][3]["budget"] == 2.0

    def test_shortest_path_agrees_with_tables(self):
        """networkx as an oracle for the tau table."""
        from repro.prep.tables import CostTables

        graph = figure_1_graph()
        tables = CostTables.from_graph(graph)
        nxg = to_networkx(graph)
        length = nx.shortest_path_length(nxg, 0, 7, weight="objective")
        assert length == tables.os_tau[0, 7]


class TestFromNetworkx:
    def test_round_trip(self):
        graph = figure_1_graph()
        back, mapping = from_networkx(to_networkx(graph))
        assert back.num_nodes == graph.num_nodes
        assert back.num_edges == graph.num_edges
        for u in range(graph.num_nodes):
            assert back.node_keyword_strings(mapping[u]) == graph.node_keyword_strings(u)
        for e in graph.iter_edges():
            assert back.edge(mapping[e.u], mapping[e.v]) == (e.objective, e.budget)

    def test_manual_digraph(self):
        nxg = nx.DiGraph()
        nxg.add_node("a", keywords=["pub"])
        nxg.add_node("b", keywords=["mall"])
        nxg.add_edge("a", "b", objective=1.0, budget=2.0)
        graph, mapping = from_networkx(nxg)
        assert graph.num_nodes == 2
        assert graph.num_edges == 1
        assert graph.node_keyword_strings(mapping["a"]) == frozenset({"pub"})

    def test_missing_weights_raise(self):
        nxg = nx.DiGraph()
        nxg.add_edge(0, 1)  # no weights
        with pytest.raises(Exception):
            from_networkx(nxg)
