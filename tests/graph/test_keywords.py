"""Unit tests for keyword interning (repro.graph.keywords)."""

import pytest

from repro.exceptions import GraphError
from repro.graph.keywords import KeywordTable


class TestIntern:
    def test_first_keyword_gets_id_zero(self):
        table = KeywordTable()
        assert table.intern("pub") == 0

    def test_ids_are_dense_and_first_seen_ordered(self):
        table = KeywordTable()
        assert [table.intern(w) for w in ("a", "b", "c")] == [0, 1, 2]

    def test_interning_twice_returns_same_id(self):
        table = KeywordTable()
        first = table.intern("pub")
        assert table.intern("pub") == first
        assert len(table) == 1

    def test_intern_many_returns_id_set(self):
        table = KeywordTable()
        ids = table.intern_many(["a", "b", "a"])
        assert ids == frozenset({0, 1})

    def test_empty_string_rejected(self):
        with pytest.raises(GraphError):
            KeywordTable().intern("")

    def test_non_string_rejected(self):
        with pytest.raises(GraphError):
            KeywordTable().intern(7)  # type: ignore[arg-type]


class TestLookup:
    def test_id_of_known_word(self):
        table = KeywordTable()
        table.intern("mall")
        assert table.id_of("mall") == 0

    def test_id_of_unknown_word_raises(self):
        with pytest.raises(GraphError, match="unknown keyword"):
            KeywordTable().id_of("ghost")

    def test_get_returns_none_for_unknown(self):
        assert KeywordTable().get("ghost") is None

    def test_word_of_round_trips(self):
        table = KeywordTable()
        for word in ("x", "y", "z"):
            table.intern(word)
        assert [table.word_of(i) for i in range(3)] == ["x", "y", "z"]

    def test_word_of_out_of_range_raises(self):
        table = KeywordTable()
        table.intern("a")
        with pytest.raises(GraphError):
            table.word_of(5)
        with pytest.raises(GraphError):
            table.word_of(-1)

    def test_words_of_maps_sets(self):
        table = KeywordTable()
        ids = table.intern_many(["p", "q"])
        assert table.words_of(ids) == frozenset({"p", "q"})


class TestProtocols:
    def test_len_contains_iter(self):
        table = KeywordTable()
        table.intern_many(["a", "b"])
        assert len(table) == 2
        assert "a" in table and "c" not in table
        assert list(table) == ["a", "b"]
        assert table.words == ("a", "b")

    def test_contains_rejects_non_strings(self):
        table = KeywordTable()
        table.intern("a")
        assert 0 not in table  # id is not a word
