"""Round-trip tests for graph serialisation (repro.graph.io)."""

import pytest

from repro.exceptions import GraphError
from repro.graph.generators import figure_1_graph, grid_graph
from repro.graph.io import load_json, load_npz, save_json, save_npz


def graphs_equal(a, b) -> bool:
    if a.num_nodes != b.num_nodes or a.num_edges != b.num_edges:
        return False
    for u in range(a.num_nodes):
        if a.node_keyword_strings(u) != b.node_keyword_strings(u):
            return False
        if a.name_of(u) != b.name_of(u):
            return False
        if a.coordinates(u) != b.coordinates(u):
            return False
        if a.out_edges(u) != b.out_edges(u):
            return False
    return True


class TestJsonRoundTrip:
    def test_figure1(self, tmp_path):
        graph = figure_1_graph()
        path = tmp_path / "g.json"
        save_json(graph, path)
        assert graphs_equal(graph, load_json(path))

    def test_with_coordinates(self, tmp_path):
        graph = grid_graph(3, 2)
        path = tmp_path / "g.json"
        save_json(graph, path)
        assert graphs_equal(graph, load_json(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(GraphError, match="cannot read"):
            load_json(tmp_path / "missing.json")

    def test_corrupt_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(GraphError):
            load_json(path)

    def test_wrong_format_marker_raises(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(GraphError, match="not a repro graph"):
            load_json(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "v99.json"
        path.write_text('{"format": "repro-graph", "version": 99, "nodes": [], "edges": []}')
        with pytest.raises(GraphError, match="version"):
            load_json(path)


class TestNpzRoundTrip:
    def test_figure1(self, tmp_path):
        graph = figure_1_graph()
        path = tmp_path / "g.npz"
        save_npz(graph, path)
        assert graphs_equal(graph, load_npz(path))

    def test_with_coordinates(self, tmp_path):
        graph = grid_graph(2, 4)
        path = tmp_path / "g.npz"
        save_npz(graph, path)
        assert graphs_equal(graph, load_npz(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(GraphError, match="cannot read"):
            load_npz(tmp_path / "missing.npz")

    def test_small_flickr_round_trip(self, tmp_path, small_flickr):
        path = tmp_path / "flickr.npz"
        save_npz(small_flickr.graph, path)
        assert graphs_equal(small_flickr.graph, load_npz(path))
